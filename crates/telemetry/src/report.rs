//! Machine-readable snapshots of the metrics registry.
//!
//! A [`Report`] is a plain-data copy of every counter, gauge and
//! histogram at the moment [`crate::snapshot`] was called. It is always
//! compiled (even in the no-op build, where it is simply empty) so code
//! that consumes reports does not need to be feature-gated. Serialisation
//! is hand-rolled — this crate is a zero-dependency leaf — and emits
//! deterministic output: entries are sorted by metric name and floats are
//! formatted with Rust's shortest round-trip representation.

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i`
/// (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a recorded value (log2 bucketing).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of a bucket (`0` for bucket 0, else `2^(i-1)`).
#[inline]
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total values recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 if empty).
    pub min: u64,
    /// Largest recorded value (0 if empty).
    pub max: u64,
    /// Non-empty buckets as `(inclusive lower bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of the whole metrics registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Counters as `(name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges as `(name, value)`, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Report {
    /// True when no metric of any kind is present — always the case in
    /// the no-op (feature-off) build.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Snapshot of a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serialises the report as deterministic, pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(&format!(": {value}"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(": ");
            push_json_f64(&mut out, *value);
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, &h.name);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                h.count, h.sum, h.min, h.max
            ));
            for (j, (lo, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{lo}, {n}]"));
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Serialises the report as CSV with a `kind,name,field,value` header.
    /// Histograms emit one row per summary field plus one per non-empty
    /// bucket (`bucket_<lower bound>`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("counter,{name},value,{value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("gauge,{name},value,{value}\n"));
        }
        for h in &self.histograms {
            let name = &h.name;
            out.push_str(&format!("histogram,{name},count,{}\n", h.count));
            out.push_str(&format!("histogram,{name},sum,{}\n", h.sum));
            out.push_str(&format!("histogram,{name},min,{}\n", h.min));
            out.push_str(&format!("histogram,{name},max,{}\n", h.max));
            for (lo, n) in &h.buckets {
                out.push_str(&format!("histogram,{name},bucket_{lo},{n}\n"));
            }
        }
        out
    }

    /// Writes the JSON serialisation to a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Appends `s` as a JSON string literal (quotes, backslashes and control
/// characters escaped; metric names are expected to be plain ASCII).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` as JSON (non-finite values become `null`, which JSON
/// cannot represent as a number).
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn empty_report_serialises() {
        let r = Report::default();
        assert!(r.is_empty());
        assert_eq!(
            r.to_json(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n"
        );
        assert_eq!(r.to_csv(), "kind,name,field,value\n");
    }

    #[test]
    fn json_escapes_names() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\u000ad\"");
    }

    #[test]
    fn non_finite_gauges_become_null() {
        let r = Report {
            gauges: vec![("bad".into(), f64::NAN)],
            ..Report::default()
        };
        assert!(r.to_json().contains("null"));
    }
}
