//! No-op implementation compiled when the `telemetry` feature is off.
//!
//! Every type is a zero-sized struct with `#[inline(always)]` empty
//! methods, so call sites like `telemetry::counter("x").add(n)` compile
//! to nothing: there is no registry, no atomics, no clock reads, and
//! [`crate::snapshot`] returns an empty [`Report`]. This is what keeps
//! the Fig 6 goldens and the cost model bit-identical in default builds.

use crate::report::Report;

/// No-op counter (zero-sized; feature `telemetry` is off).
#[derive(Debug, Clone, Copy, Default)]
pub struct Counter;

impl Counter {
    /// Does nothing.
    #[inline(always)]
    pub fn inc(&self) {}

    /// Does nothing.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Always 0.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op gauge (zero-sized; feature `telemetry` is off).
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauge;

impl Gauge {
    /// Does nothing.
    #[inline(always)]
    pub fn set(&self, _value: f64) {}

    /// Always 0.0.
    #[inline(always)]
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// No-op histogram (zero-sized; feature `telemetry` is off).
#[derive(Debug, Clone, Copy, Default)]
pub struct Histogram;

impl Histogram {
    /// Does nothing.
    #[inline(always)]
    pub fn record(&self, _value: u64) {}

    /// Always 0.
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }

    /// Always 0.
    #[inline(always)]
    pub fn sum(&self) -> u64 {
        0
    }
}

/// No-op cached counter (zero-sized; feature `telemetry` is off). The
/// live build resolves the registry slot once and then costs one atomic
/// load per use; here every method compiles to nothing.
#[derive(Debug, Clone, Copy)]
pub struct CachedCounter;

impl CachedCounter {
    /// Creates a no-op handle.
    #[inline(always)]
    pub const fn new(_name: &'static str) -> Self {
        Self
    }

    /// Does nothing.
    #[inline(always)]
    pub fn inc(&self) {}

    /// Does nothing.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Always 0.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op span (zero-sized, no `Drop` impl; feature `telemetry` is off).
#[must_use = "a span measures the scope it is bound to — bind it to a variable"]
#[derive(Debug, Clone, Copy, Default)]
pub struct Span;

impl Span {
    /// Ends the span explicitly (does nothing). Exists so call sites can
    /// close a span before the end of scope without `drop()`, which
    /// clippy rejects on this `Copy` zero-sized stand-in.
    #[inline(always)]
    pub fn end(self) {}
}

/// Returns a no-op counter.
#[inline(always)]
pub fn counter(_name: &str) -> Counter {
    Counter
}

/// Returns a no-op gauge.
#[inline(always)]
pub fn gauge(_name: &str) -> Gauge {
    Gauge
}

/// Returns a no-op histogram.
#[inline(always)]
pub fn histogram(_name: &str) -> Histogram {
    Histogram
}

/// Returns a no-op span.
#[inline(always)]
pub fn span(_label: &'static str) -> Span {
    Span
}

/// Always returns an empty [`Report`].
#[inline(always)]
pub fn snapshot() -> Report {
    Report::default()
}

/// Does nothing.
#[inline(always)]
pub fn reset() {}
