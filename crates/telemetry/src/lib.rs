//! Zero-dependency, feature-gated observability for the felim workspace.
//!
//! The crate provides three instrument kinds plus RAII timing spans:
//!
//! - [`counter`] — monotonically increasing event counts (Newton
//!   iterations, issued commands, injected faults, …)
//! - [`gauge`] — last-value-wins measurements (final residual norm,
//!   measured ops/s, …)
//! - [`histogram`] — log2-bucketed `u64` distributions (span durations
//!   in nanoseconds, per-call iteration counts, …)
//! - [`span`] — an RAII scope that records its wall-clock duration into
//!   a histogram named after the (per-thread, hierarchical) label path
//!
//! [`snapshot`] copies the whole registry into a plain-data
//! [`Report`] that serialises to deterministic JSON or CSV.
//!
//! # Feature gating
//!
//! Everything is gated behind the `telemetry` cargo feature. With the
//! feature **off** (the default) every function is an `#[inline(always)]`
//! no-op returning a zero-sized handle: no registry, no atomics, no
//! clock reads. This guarantees default builds — including the Fig 6
//! goldens and the cost-model regression tests — are bit-identical to an
//! uninstrumented tree. Use [`enabled`] to guard call sites that would
//! otherwise pay for argument construction (e.g. `format!`ed names):
//!
//! ```
//! use felim_telemetry as telemetry;
//!
//! telemetry::counter("demo.events").add(3);
//! if telemetry::enabled() {
//!     telemetry::counter(&format!("demo.kernel.{}", "CRC8")).inc();
//! }
//! let report = telemetry::snapshot();
//! if telemetry::enabled() {
//!     assert_eq!(report.counter("demo.events"), Some(3));
//! } else {
//!     assert!(report.is_empty());
//! }
//! ```
//!
//! # Spans
//!
//! ```
//! use felim_telemetry as telemetry;
//!
//! {
//!     let _outer = telemetry::span("phase");
//!     let _inner = telemetry::span("step"); // records as "span.phase.step.ns"
//! }
//! let json = telemetry::snapshot().to_json();
//! assert!(json.starts_with('{'));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

pub use report::{HistogramSnapshot, Report};

#[cfg(feature = "telemetry")]
mod metrics;
#[cfg(feature = "telemetry")]
pub use metrics::{
    counter, gauge, histogram, reset, snapshot, span, CachedCounter, Counter, Gauge, Histogram,
    Span,
};

#[cfg(not(feature = "telemetry"))]
mod noop;
#[cfg(not(feature = "telemetry"))]
pub use noop::{
    counter, gauge, histogram, reset, snapshot, span, CachedCounter, Counter, Gauge, Histogram,
    Span,
};

/// True when the crate was built with the `telemetry` feature, i.e. the
/// instruments are live. Use this to guard call sites whose *arguments*
/// are expensive to build (dynamic metric names, derived values); plain
/// static-name calls need no guard because the no-op build inlines them
/// away.
#[inline(always)]
pub const fn enabled() -> bool {
    cfg!(feature = "telemetry")
}
