//! Integration tests for the live telemetry implementation. This target
//! has `required-features = ["telemetry"]`, so it is skipped entirely in
//! default (no-op) builds.
//!
//! The registry is process-global, so every test uses its own metric
//! name prefix instead of relying on `reset()` ordering.

use felim_telemetry as telemetry;
use std::thread;

#[test]
fn counters_accumulate_across_threads() {
    let c = telemetry::counter("test.counter.threads");
    thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..1000 {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get(), 4000);
    assert_eq!(
        telemetry::snapshot().counter("test.counter.threads"),
        Some(4000)
    );
}

#[test]
fn registration_storm_under_concurrency_loses_nothing() {
    // The parallel engine's workers hit the registry from many threads at
    // once — including the registration path, not just the post-
    // registration atomics. Eight threads race first-use registration of
    // overlapping counter names, per-thread gauges and one shared
    // histogram, with snapshots taken mid-storm; afterwards every
    // instrument must hold exactly the writes aimed at it.
    thread::scope(|s| {
        for t in 0..8u64 {
            s.spawn(move || {
                for i in 0..160u64 {
                    telemetry::counter(&format!("test.storm.c{}", i % 16)).inc();
                    telemetry::gauge(&format!("test.storm.g{t}")).set(i as f64);
                    telemetry::histogram("test.storm.h").record(i);
                    if i % 40 == 0 {
                        // Concurrent reads must never deadlock or tear.
                        let _ = telemetry::snapshot();
                    }
                }
            });
        }
    });
    let snap = telemetry::snapshot();
    for i in 0..16 {
        // Each thread hits each of the 16 names 160/16 = 10 times.
        assert_eq!(snap.counter(&format!("test.storm.c{i}")), Some(80));
    }
    for t in 0..8 {
        assert_eq!(snap.gauge(&format!("test.storm.g{t}")), Some(159.0));
    }
    let h = snap.histogram("test.storm.h").expect("registered");
    assert_eq!(h.count, 8 * 160);
    assert_eq!(h.sum, 8 * (0..160).sum::<u64>());
}

#[test]
fn gauge_is_last_value_wins() {
    let g = telemetry::gauge("test.gauge.residual");
    g.set(1.5);
    g.set(-2.25);
    assert_eq!(g.get(), -2.25);
    assert_eq!(telemetry::snapshot().gauge("test.gauge.residual"), Some(-2.25));
}

#[test]
fn histogram_buckets_edge_cases() {
    let h = telemetry::histogram("test.hist.edges");
    // Bucket boundaries: 0 | 1 | 2..3 | 4..7 | ... | 2^63..u64::MAX.
    for v in [0, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
        h.record(v);
    }
    let snap = telemetry::snapshot();
    let hs = snap.histogram("test.hist.edges").expect("registered");
    assert_eq!(hs.count, 10);
    assert_eq!(hs.min, 0);
    assert_eq!(hs.max, u64::MAX);
    let bucket = |lo: u64| {
        hs.buckets
            .iter()
            .find(|(b, _)| *b == lo)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    };
    assert_eq!(bucket(0), 1); // 0
    assert_eq!(bucket(1), 1); // 1
    assert_eq!(bucket(2), 2); // 2, 3
    assert_eq!(bucket(4), 2); // 4, 7
    assert_eq!(bucket(8), 1); // 8
    assert_eq!(bucket(512), 1); // 1023
    assert_eq!(bucket(1024), 1); // 1024
    assert_eq!(bucket(1u64 << 63), 1); // u64::MAX
    // The sum accumulator wraps on overflow (fetch_add semantics).
    let expected_sum: u64 = [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024]
        .iter()
        .sum::<u64>()
        .wrapping_add(u64::MAX);
    assert_eq!(hs.sum, expected_sum);
}

#[test]
fn histogram_min_tracks_zero_samples() {
    let h = telemetry::histogram("test.hist.minzero");
    h.record(5);
    h.record(0);
    h.record(9);
    let snap = telemetry::snapshot();
    let hs = snap.histogram("test.hist.minzero").expect("registered");
    assert_eq!(hs.min, 0);
    assert_eq!(hs.max, 9);
    assert_eq!(hs.count, 3);
}

#[test]
fn spans_nest_hierarchically() {
    {
        let _outer = telemetry::span("test_outer");
        {
            let _inner = telemetry::span("test_inner");
        }
        {
            let _inner = telemetry::span("test_inner");
        }
    }
    let snap = telemetry::snapshot();
    let inner = snap
        .histogram("span.test_outer.test_inner.ns")
        .expect("nested span path");
    assert_eq!(inner.count, 2);
    let outer = snap.histogram("span.test_outer.ns").expect("outer span path");
    assert_eq!(outer.count, 1);
    // Outer covers both inners, so its total time is at least as large.
    assert!(outer.sum >= inner.sum);
}

#[test]
fn spans_are_per_thread() {
    let _outer = telemetry::span("test_main_thread");
    thread::spawn(|| {
        let _inner = telemetry::span("test_worker");
    })
    .join()
    .unwrap();
    drop(_outer);
    let snap = telemetry::snapshot();
    // The worker's span must NOT be nested under the main thread's span.
    assert!(snap.histogram("span.test_worker.ns").is_some());
    assert!(snap.histogram("span.test_main_thread.test_worker.ns").is_none());
}

#[test]
fn report_serialisation_golden() {
    telemetry::counter("test.golden.commands").add(42);
    telemetry::gauge("test.golden.ratio").set(2.5);
    let h = telemetry::histogram("test.golden.hist");
    h.record(1);
    h.record(6);
    let snap = telemetry::snapshot();

    let json = snap.to_json();
    assert!(json.contains("\"test.golden.commands\": 42"));
    assert!(json.contains("\"test.golden.ratio\": 2.5"));
    assert!(json.contains(
        "\"test.golden.hist\": {\"count\": 2, \"sum\": 7, \"min\": 1, \"max\": 6, \"buckets\": [[1, 1], [4, 1]]}"
    ));

    let csv = snap.to_csv();
    assert!(csv.starts_with("kind,name,field,value\n"));
    assert!(csv.contains("counter,test.golden.commands,value,42\n"));
    assert!(csv.contains("gauge,test.golden.ratio,value,2.5\n"));
    assert!(csv.contains("histogram,test.golden.hist,count,2\n"));
    assert!(csv.contains("histogram,test.golden.hist,bucket_4,1\n"));

    // Determinism: snapshots of the same state serialise identically.
    assert_eq!(json, telemetry::snapshot().to_json());
}

#[test]
fn snapshot_is_sorted_by_name() {
    telemetry::counter("test.sorted.b").inc();
    telemetry::counter("test.sorted.a").inc();
    let snap = telemetry::snapshot();
    let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
}

#[test]
fn enabled_reports_feature_state() {
    assert!(telemetry::enabled());
}
