//! # felim-thermal — steady-state 3-D thermal solver
//!
//! Section VII of the paper evaluates the thermal viability of the
//! vertically-stacked 2T-nC FeRAM on a compute die using HotSpot: an
//! (n+2)-layer memory stack on a 28 W edge-TPU-class die under natural
//! convection at 300 K ambient, modelled at subarray granularity. The
//! steady-state peak is 351.88 K.
//!
//! This crate is the HotSpot-class substitute: a finite-volume
//! discretisation of the layered stack (lateral + vertical conduction, a
//! lumped convective path from the top surface to ambient, adiabatic
//! sides/bottom), solved matrix-free with conjugate gradients. The
//! conduction/convection network is exactly HotSpot's steady-state grid
//! model; the lumped package resistance is a calibration constant, as it
//! is in HotSpot.
//!
//! ## Quickstart
//!
//! ```
//! use felim_thermal::{Stack, PowerMap, solve_steady_state};
//!
//! let stack = Stack::feram_on_compute_die(5);
//! let mut power = PowerMap::zeros(&stack, 16, 16);
//! power.add_uniform_layer(stack.compute_layer(), 28.0); // 28 W TPU
//! let field = solve_steady_state(&stack, &power, 300.0);
//! let peak = field.peak_kelvin();
//! assert!(peak > 340.0 && peak < 365.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
pub mod power;
pub mod solve;
pub mod stack;
pub mod transient;

pub use field::TemperatureField;
pub use power::PowerMap;
pub use solve::solve_steady_state;
pub use stack::{Layer, Stack};
pub use transient::{solve_transient, TransientResult};

/// Ambient temperature used throughout the paper's analysis, in K.
pub const AMBIENT_K: f64 = 300.0;
