//! Power maps: per-(layer, cell) heat injection.

use crate::stack::Stack;
use serde::{Deserialize, Serialize};

/// Heat injection per finite-volume cell, in W.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerMap {
    nx: usize,
    ny: usize,
    layers: usize,
    /// Power per cell, indexed `(layer * ny + iy) * nx + ix`.
    watts: Vec<f64>,
}

impl PowerMap {
    /// A zero power map over an `nx × ny` grid per layer.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate grid.
    pub fn zeros(stack: &Stack, nx: usize, ny: usize) -> Self {
        assert!(nx >= 2 && ny >= 2, "grid must be at least 2x2");
        Self {
            nx,
            ny,
            layers: stack.layer_count(),
            watts: vec![0.0; stack.layer_count() * nx * ny],
        }
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers
    }

    fn index(&self, layer: usize, iy: usize, ix: usize) -> usize {
        assert!(layer < self.layers && iy < self.ny && ix < self.nx);
        (layer * self.ny + iy) * self.nx + ix
    }

    /// Power of one cell, W.
    pub fn cell(&self, layer: usize, iy: usize, ix: usize) -> f64 {
        self.watts[self.index(layer, iy, ix)]
    }

    /// Adds power to one cell.
    pub fn add_cell(&mut self, layer: usize, iy: usize, ix: usize, watts: f64) {
        let i = self.index(layer, iy, ix);
        self.watts[i] += watts;
    }

    /// Spreads `watts` uniformly over a whole layer.
    pub fn add_uniform_layer(&mut self, layer: usize, watts: f64) {
        let per_cell = watts / (self.nx * self.ny) as f64;
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                self.add_cell(layer, iy, ix, per_cell);
            }
        }
    }

    /// Spreads `watts` over a rectangular block of cells (a subarray),
    /// clamped to the grid.
    pub fn add_block(
        &mut self,
        layer: usize,
        (x0, y0): (usize, usize),
        (w, h): (usize, usize),
        watts: f64,
    ) {
        let x1 = (x0 + w).min(self.nx);
        let y1 = (y0 + h).min(self.ny);
        let cells = ((x1 - x0) * (y1 - y0)).max(1) as f64;
        for iy in y0..y1 {
            for ix in x0..x1 {
                self.add_cell(layer, iy, ix, watts / cells);
            }
        }
    }

    /// Distributes a memory power budget across the stack's memory layers
    /// at subarray granularity: each memory layer receives an equal share,
    /// striped over `active_fraction` of its area (the activity footprint
    /// of the running workload).
    pub fn add_memory_activity(&mut self, stack: &Stack, total_watts: f64, active_fraction: f64) {
        let frac = active_fraction.clamp(0.0, 1.0);
        let mem = stack.memory_layers();
        let per_layer = total_watts / mem.len() as f64;
        for &layer in mem {
            let active_cols = ((self.nx as f64 * frac).ceil() as usize).max(1);
            self.add_block(layer, (0, 0), (active_cols, self.ny), per_layer);
        }
    }

    /// Total injected power, W.
    pub fn total_watts(&self) -> f64 {
        self.watts.iter().sum()
    }

    /// Raw per-cell power slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> Stack {
        Stack::feram_on_compute_die(5)
    }

    #[test]
    fn uniform_layer_conserves_power() {
        let s = stack();
        let mut p = PowerMap::zeros(&s, 8, 8);
        p.add_uniform_layer(s.compute_layer(), 28.0);
        assert!((p.total_watts() - 28.0).abs() < 1e-9);
        assert!((p.cell(0, 3, 3) - 28.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn block_injection_is_local_and_conserving() {
        let s = stack();
        let mut p = PowerMap::zeros(&s, 8, 8);
        p.add_block(2, (1, 1), (2, 2), 1.0);
        assert!((p.total_watts() - 1.0).abs() < 1e-12);
        assert_eq!(p.cell(2, 0, 0), 0.0);
        assert!((p.cell(2, 1, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn block_clamps_at_grid_edge() {
        let s = stack();
        let mut p = PowerMap::zeros(&s, 8, 8);
        p.add_block(0, (7, 7), (4, 4), 2.0);
        assert!((p.total_watts() - 2.0).abs() < 1e-12);
        assert!((p.cell(0, 7, 7) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn memory_activity_spreads_over_memory_layers() {
        let s = stack();
        let mut p = PowerMap::zeros(&s, 8, 8);
        p.add_memory_activity(&s, 1.0, 0.5);
        assert!((p.total_watts() - 1.0).abs() < 1e-9);
        // Only memory layers received power.
        assert_eq!(p.cell(s.compute_layer(), 0, 0), 0.0);
        let first_mem = s.memory_layers()[0];
        assert!(p.cell(first_mem, 0, 0) > 0.0);
        // Right half of the die is idle at 50 % activity.
        assert_eq!(p.cell(first_mem, 0, 7), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn rejects_degenerate_grid() {
        let _ = PowerMap::zeros(&stack(), 1, 8);
    }
}
