//! Transient thermal analysis (implicit-Euler time stepping).
//!
//! Extends the steady-state network with per-cell thermal capacitance:
//! `C·dT/dt = P − A·(T − T_amb)`, integrated with backward Euler (each
//! step solves the SPD system `(C/Δt + A)·x = C/Δt·x_prev + P` with
//! conjugate gradients). Used to answer the question the steady-state
//! solve cannot: *how fast* does the stack heat up when a workload
//! starts — the thermal time constant that governs burst-mode operation.

use crate::field::TemperatureField;
use crate::power::PowerMap;
use crate::solve::solve_steady_state;
use crate::stack::Stack;
use serde::{Deserialize, Serialize};

/// Volumetric heat capacity used for every layer, J/(m³·K)
/// (silicon-class; thin stacks are dominated by the die material).
pub const VOLUMETRIC_HEAT_CAPACITY: f64 = 1.63e6;

/// One recorded instant of a transient run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientPoint {
    /// Simulation time, s.
    pub time_s: f64,
    /// Peak temperature at this instant, K.
    pub peak_k: f64,
    /// Mean compute-layer temperature, K.
    pub compute_mean_k: f64,
}

/// Result of a transient thermal run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientResult {
    /// Recorded trajectory.
    pub trajectory: Vec<TransientPoint>,
    /// Final temperature field.
    pub final_field: TemperatureField,
    /// Time to reach 63.2 % of the steady-state peak rise, s
    /// (the dominant thermal time constant; `None` if never reached).
    pub tau_63_s: Option<f64>,
}

/// Runs a transient from a uniform ambient start with constant `power`,
/// stepping `dt_s` until `t_end_s` and recording every `record_every`
/// steps.
///
/// # Panics
///
/// Panics on non-positive step/duration or mismatched power map.
pub fn solve_transient(
    stack: &Stack,
    power: &PowerMap,
    ambient_k: f64,
    t_end_s: f64,
    dt_s: f64,
    record_every: usize,
) -> TransientResult {
    assert!(dt_s > 0.0 && t_end_s >= dt_s, "need 0 < dt <= t_end");
    assert_eq!(power.layer_count(), stack.layer_count());
    let (nx, ny) = power.grid();
    let n = nx * ny * stack.layer_count();

    // Per-cell heat capacity C = c_v · cell volume.
    let dx = stack.width_m / nx as f64;
    let dy = stack.depth_m / ny as f64;
    let cap: Vec<f64> = (0..stack.layer_count())
        .flat_map(|l| {
            let c = VOLUMETRIC_HEAT_CAPACITY * dx * dy * stack.layers[l].thickness_m;
            std::iter::repeat_n(c, nx * ny)
        })
        .collect();

    // Steady-state target for the time-constant measurement.
    let steady = solve_steady_state(stack, power, ambient_k);
    let steady_rise = steady.peak_kelvin() - ambient_k;

    let net = crate::solve::network_for(stack, nx, ny);
    let mut x = vec![0.0; n]; // temperature rise above ambient
    let b0 = power.as_slice();
    let mut trajectory = Vec::new();
    let mut tau_63 = None;

    let steps = (t_end_s / dt_s).round() as usize;
    let mut ax = vec![0.0; n];
    for step in 1..=steps {
        // Backward Euler: (C/dt + A)·x_new = C/dt·x + P. Solve by CG.
        let mut rhs = vec![0.0; n];
        for i in 0..n {
            rhs[i] = cap[i] / dt_s * x[i] + b0[i];
        }
        // CG on the shifted operator.
        let apply = |v: &[f64], out: &mut [f64]| {
            net.apply(v, out);
            for i in 0..n {
                out[i] += cap[i] / dt_s * v[i];
            }
        };
        let mut r = rhs.clone();
        apply(&x, &mut ax);
        for i in 0..n {
            r[i] -= ax[i];
        }
        let mut p = r.clone();
        let mut rs: f64 = r.iter().map(|v| v * v).sum();
        let tol = rs.sqrt().max(1e-30) * 1e-8;
        for _ in 0..n {
            if rs.sqrt() < tol {
                break;
            }
            apply(&p, &mut ax);
            let pap: f64 = p.iter().zip(&ax).map(|(a, b)| a * b).sum();
            let alpha = rs / pap;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ax[i];
            }
            let rs_new: f64 = r.iter().map(|v| v * v).sum();
            let beta = rs_new / rs;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
            rs = rs_new;
        }

        let t_now = step as f64 * dt_s;
        let peak_rise = x.iter().cloned().fold(f64::MIN, f64::max);
        if tau_63.is_none() && steady_rise > 0.0 && peak_rise >= 0.632 * steady_rise {
            tau_63 = Some(t_now);
        }
        if step % record_every.max(1) == 0 || step == steps {
            let compute_mean = {
                let l = stack.compute_layer();
                let sum: f64 = x[l * nx * ny..(l + 1) * nx * ny].iter().sum();
                ambient_k + sum / (nx * ny) as f64
            };
            trajectory.push(TransientPoint {
                time_s: t_now,
                peak_k: ambient_k + peak_rise,
                compute_mean_k: compute_mean,
            });
        }
    }

    let kelvin: Vec<f64> = x.iter().map(|dt| ambient_k + dt).collect();
    TransientResult {
        trajectory,
        final_field: TemperatureField::new(nx, ny, stack.layer_count(), kelvin, ambient_k),
        tau_63_s: tau_63,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Stack, PowerMap) {
        let stack = Stack::feram_on_compute_die(3);
        let mut power = PowerMap::zeros(&stack, 8, 8);
        power.add_uniform_layer(stack.compute_layer(), 28.0);
        (stack, power)
    }

    #[test]
    fn starts_at_ambient_and_heats_monotonically() {
        let (stack, power) = setup();
        let r = solve_transient(&stack, &power, 300.0, 0.2, 0.01, 2);
        let mut last = 300.0;
        for p in &r.trajectory {
            assert!(p.peak_k >= last - 1e-9, "must heat monotonically");
            last = p.peak_k;
        }
        assert!(r.trajectory[0].peak_k > 300.0);
    }

    #[test]
    fn converges_to_the_steady_state() {
        let (stack, power) = setup();
        let steady = solve_steady_state(&stack, &power, 300.0).peak_kelvin();
        // The stack's thermal time constant is sub-second (thin dies,
        // small capacitance); a few seconds is deep steady state.
        let r = solve_transient(&stack, &power, 300.0, 4.0, 0.02, 50);
        let final_peak = r.final_field.peak_kelvin();
        assert!(
            (final_peak - steady).abs() < 0.5,
            "transient end {final_peak} vs steady {steady}"
        );
    }

    #[test]
    fn reports_a_thermal_time_constant() {
        let (stack, power) = setup();
        let r = solve_transient(&stack, &power, 300.0, 4.0, 0.02, 50);
        let tau = r.tau_63_s.expect("must cross 63% of steady rise");
        assert!(tau > 0.0 && tau < 2.0, "tau = {tau} s");
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let stack = Stack::feram_on_compute_die(3);
        let power = PowerMap::zeros(&stack, 8, 8);
        let r = solve_transient(&stack, &power, 300.0, 0.1, 0.01, 1);
        assert!((r.final_field.peak_kelvin() - 300.0).abs() < 1e-9);
        assert!(r.tau_63_s.is_none());
    }

    #[test]
    #[should_panic(expected = "need 0 < dt")]
    fn rejects_bad_stepping() {
        let (stack, power) = setup();
        let _ = solve_transient(&stack, &power, 300.0, 0.1, 0.2, 1);
    }
}
