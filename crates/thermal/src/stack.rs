//! Layered die-stack geometry and materials.

use serde::{Deserialize, Serialize};

/// One layer of the stack (bottom to top ordering in [`Stack::layers`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable name.
    pub name: String,
    /// Thickness in m.
    pub thickness_m: f64,
    /// Thermal conductivity in W/(m·K).
    pub conductivity_w_mk: f64,
}

impl Layer {
    /// Creates a layer.
    ///
    /// # Panics
    ///
    /// Panics on non-positive thickness or conductivity.
    pub fn new(name: &str, thickness_m: f64, conductivity_w_mk: f64) -> Self {
        assert!(thickness_m > 0.0, "thickness must be positive");
        assert!(conductivity_w_mk > 0.0, "conductivity must be positive");
        Self {
            name: name.to_owned(),
            thickness_m,
            conductivity_w_mk,
        }
    }
}

/// A 3-D system-on-chip stack: compute die at the bottom, memory layers
/// above, heat spreader on top, convective path to ambient from the top
/// surface; sides and bottom adiabatic (worst case, as in the paper's
/// natural-convection setup).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stack {
    /// Layers, bottom to top.
    pub layers: Vec<Layer>,
    /// Die width (x) in m.
    pub width_m: f64,
    /// Die depth (y) in m.
    pub depth_m: f64,
    /// Lumped package/convective resistance from the top surface to
    /// ambient, in K/W. Plays the role of HotSpot's `r_convec` package
    /// parameter; the default is calibrated so a 28 W compute die under
    /// the 5-layer memory stack peaks at the paper's 351.88 K.
    pub r_convec_k_w: f64,
    /// Index of the compute (heat-source) layer.
    compute_layer: usize,
    /// Indices of the memory layers, bottom to top.
    memory_layers: Vec<usize>,
}

impl Stack {
    /// The paper's Fig 7 configuration: a compute die (edge-TPU class),
    /// a thermal interface, `n_memory_layers` stacked 2T-nC FeRAM layers
    /// (the paper uses n+2 = 5 for a 2 GB die) and a copper spreader.
    pub fn feram_on_compute_die(n_memory_layers: usize) -> Self {
        assert!(n_memory_layers >= 1, "need at least one memory layer");
        let mut layers = vec![
            Layer::new("compute-die", 300e-6, 150.0), // silicon
            Layer::new("tim", 40e-6, 4.0),            // thermal interface
        ];
        let compute_layer = 0;
        let mut memory_layers = Vec::new();
        for i in 0..n_memory_layers {
            memory_layers.push(layers.len());
            // Thin bonded FeRAM tier: silicon body + BEOL capacitor stack.
            layers.push(Layer::new(&format!("feram-l{i}"), 60e-6, 110.0));
            if i + 1 < n_memory_layers {
                layers.push(Layer::new(&format!("bond-{i}"), 10e-6, 1.5));
            }
        }
        layers.push(Layer::new("spreader", 500e-6, 400.0)); // copper
        Self {
            layers,
            // Edge-TPU-class die footprint.
            width_m: 10e-3,
            depth_m: 10e-3,
            r_convec_k_w: 1.42,
            compute_layer,
            memory_layers,
        }
    }

    /// Index of the compute (heat-source) layer.
    pub fn compute_layer(&self) -> usize {
        self.compute_layer
    }

    /// Indices of the memory layers (bottom to top).
    pub fn memory_layers(&self) -> &[usize] {
        &self.memory_layers
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total stack thickness in m.
    pub fn total_thickness_m(&self) -> f64 {
        self.layers.iter().map(|l| l.thickness_m).sum()
    }

    /// One-dimensional conduction resistance of the whole stack (per unit
    /// of full-die area), K/W — a sanity bound for the solver.
    pub fn conduction_resistance_k_w(&self) -> f64 {
        let area = self.width_m * self.depth_m;
        self.layers
            .iter()
            .map(|l| l.thickness_m / (l.conductivity_w_mk * area))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stack_has_five_memory_layers() {
        let s = Stack::feram_on_compute_die(5);
        assert_eq!(s.memory_layers().len(), 5);
        // compute + TIM + 5 memory + 4 bonds + spreader = 12 layers.
        assert_eq!(s.layer_count(), 12);
        assert_eq!(s.compute_layer(), 0);
        assert!(s.total_thickness_m() < 2e-3);
    }

    #[test]
    fn conduction_resistance_is_small_vs_package() {
        let s = Stack::feram_on_compute_die(5);
        // Vertical conduction through thin dies is cheap; the package
        // convection dominates — same structure as HotSpot's model.
        assert!(s.conduction_resistance_k_w() < 0.5 * s.r_convec_k_w);
    }

    #[test]
    fn memory_layer_indices_point_at_feram_layers() {
        let s = Stack::feram_on_compute_die(3);
        for (i, &l) in s.memory_layers().iter().enumerate() {
            assert!(s.layers[l].name.contains(&format!("feram-l{i}")));
        }
    }

    #[test]
    #[should_panic(expected = "at least one memory layer")]
    fn rejects_empty_memory_stack() {
        let _ = Stack::feram_on_compute_die(0);
    }

    #[test]
    #[should_panic(expected = "thickness must be positive")]
    fn rejects_bad_layer() {
        let _ = Layer::new("x", 0.0, 1.0);
    }
}
