//! Matrix-free conjugate-gradient steady-state solve.
//!
//! Unknowns are cell temperatures relative to ambient. The conduction +
//! convection operator is symmetric positive definite (a weighted graph
//! Laplacian plus the positive convective diagonal), so plain CG
//! converges; the grids used here (≤ 64×64×12) solve in milliseconds.

use crate::field::TemperatureField;
use crate::power::PowerMap;
use crate::stack::Stack;

/// Conductance network over the stack grid.
pub(crate) struct Network {
    nx: usize,
    ny: usize,
    layers: usize,
    /// Lateral conductance within layer l (x direction), W/K.
    g_lat_x: Vec<f64>,
    /// Lateral conductance within layer l (y direction), W/K.
    g_lat_y: Vec<f64>,
    /// Vertical conductance between layer l and l+1, W/K (per cell).
    g_vert: Vec<f64>,
    /// Convective conductance from each top-layer cell to ambient, W/K.
    g_conv: f64,
}

impl Network {
    fn build(stack: &Stack, nx: usize, ny: usize) -> Self {
        let dx = stack.width_m / nx as f64;
        let dy = stack.depth_m / ny as f64;
        let layers = stack.layer_count();
        let g_lat_x: Vec<f64> = stack
            .layers
            .iter()
            .map(|l| l.conductivity_w_mk * l.thickness_m * dy / dx)
            .collect();
        let g_lat_y: Vec<f64> = stack
            .layers
            .iter()
            .map(|l| l.conductivity_w_mk * l.thickness_m * dx / dy)
            .collect();
        let cell_area = dx * dy;
        let g_vert: Vec<f64> = stack
            .layers
            .windows(2)
            .map(|w| {
                let r = w[0].thickness_m / (2.0 * w[0].conductivity_w_mk * cell_area)
                    + w[1].thickness_m / (2.0 * w[1].conductivity_w_mk * cell_area);
                1.0 / r
            })
            .collect();
        let g_conv = 1.0 / (stack.r_convec_k_w * (nx * ny) as f64);
        Self {
            nx,
            ny,
            layers,
            g_lat_x,
            g_lat_y,
            g_vert,
            g_conv,
        }
    }

    fn idx(&self, l: usize, iy: usize, ix: usize) -> usize {
        (l * self.ny + iy) * self.nx + ix
    }

    /// y = A·x where A is the conduction/convection operator.
    pub(crate) fn apply(&self, x: &[f64], y: &mut [f64]) {
        y.fill(0.0);
        for l in 0..self.layers {
            for iy in 0..self.ny {
                for ix in 0..self.nx {
                    let i = self.idx(l, iy, ix);
                    let xi = x[i];
                    let mut acc = 0.0;
                    if ix + 1 < self.nx {
                        let j = self.idx(l, iy, ix + 1);
                        let g = self.g_lat_x[l];
                        acc += g * (xi - x[j]);
                        y[j] += g * (x[j] - xi);
                    }
                    if iy + 1 < self.ny {
                        let j = self.idx(l, iy + 1, ix);
                        let g = self.g_lat_y[l];
                        acc += g * (xi - x[j]);
                        y[j] += g * (x[j] - xi);
                    }
                    if l + 1 < self.layers {
                        let j = self.idx(l + 1, iy, ix);
                        let g = self.g_vert[l];
                        acc += g * (xi - x[j]);
                        y[j] += g * (x[j] - xi);
                    }
                    if l == self.layers - 1 {
                        // Convection to ambient (x is relative to ambient).
                        acc += self.g_conv * xi;
                    }
                    y[i] += acc;
                }
            }
        }
    }
}

/// Builds the conductance network for the transient solver.
pub(crate) fn network_for(stack: &Stack, nx: usize, ny: usize) -> Network {
    Network::build(stack, nx, ny)
}

/// Solves the steady-state temperature field for `power` on `stack` with
/// the given ambient temperature.
///
/// # Panics
///
/// Panics if the power map's layer count does not match the stack, or if
/// CG fails to converge (it cannot for this SPD system unless the inputs
/// are non-finite).
pub fn solve_steady_state(stack: &Stack, power: &PowerMap, ambient_k: f64) -> TemperatureField {
    assert_eq!(
        power.layer_count(),
        stack.layer_count(),
        "power map and stack disagree on layer count"
    );
    let (nx, ny) = power.grid();
    let net = Network::build(stack, nx, ny);
    let n = nx * ny * stack.layer_count();
    let b = power.as_slice();

    // Conjugate gradients on A·x = b.
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
    let b_norm: f64 = rs_old.sqrt().max(1e-30);

    for _ in 0..(4 * n) {
        if rs_old.sqrt() / b_norm < 1e-10 {
            break;
        }
        net.apply(&p, &mut ap);
        let p_ap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        assert!(
            p_ap.is_finite() && p_ap > 0.0,
            "CG lost positive-definiteness"
        );
        let alpha = rs_old / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }

    let kelvin: Vec<f64> = x.iter().map(|dt| ambient_k + dt).collect();
    TemperatureField::new(nx, ny, stack.layer_count(), kelvin, ambient_k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_power_is_ambient_everywhere() {
        let stack = Stack::feram_on_compute_die(5);
        let power = PowerMap::zeros(&stack, 8, 8);
        let field = solve_steady_state(&stack, &power, 300.0);
        assert!((field.peak_kelvin() - 300.0).abs() < 1e-6);
        assert!((field.min_kelvin() - 300.0).abs() < 1e-6);
    }

    #[test]
    fn uniform_power_matches_lumped_resistance() {
        // With uniform heating, the solution approaches the 1-D lumped
        // model: ΔT_top ≈ P · R_convec.
        let stack = Stack::feram_on_compute_die(5);
        let mut power = PowerMap::zeros(&stack, 8, 8);
        let p_total = 10.0;
        power.add_uniform_layer(stack.layer_count() - 1, p_total);
        let field = solve_steady_state(&stack, &power, 300.0);
        let expected = 300.0 + p_total * stack.r_convec_k_w;
        let top_mean = field.layer_mean_kelvin(stack.layer_count() - 1);
        assert!(
            (top_mean - expected).abs() < 0.5,
            "top mean {top_mean} vs lumped {expected}"
        );
    }

    #[test]
    fn heat_flows_up_through_the_stack() {
        let stack = Stack::feram_on_compute_die(5);
        let mut power = PowerMap::zeros(&stack, 8, 8);
        power.add_uniform_layer(stack.compute_layer(), 28.0);
        let field = solve_steady_state(&stack, &power, 300.0);
        // The bottom (source) layer is hottest; temperature decreases
        // monotonically toward the convectively cooled top.
        let mut last = f64::INFINITY;
        for l in 0..stack.layer_count() {
            let t = field.layer_mean_kelvin(l);
            assert!(t <= last + 1e-9, "layer {l} hotter than below");
            assert!(t > 300.0);
            last = t;
        }
    }

    #[test]
    fn hotspot_spreads_laterally() {
        let stack = Stack::feram_on_compute_die(5);
        let mut power = PowerMap::zeros(&stack, 16, 16);
        // Point-ish source in one corner of the compute die.
        power.add_block(stack.compute_layer(), (0, 0), (2, 2), 5.0);
        let field = solve_steady_state(&stack, &power, 300.0);
        let near = field.cell(stack.compute_layer(), 0, 0);
        let far = field.cell(stack.compute_layer(), 15, 15);
        assert!(near > far, "corner source must be hottest");
        assert!(far > 300.0, "heat still reaches the far corner");
    }

    #[test]
    fn energy_balance_total_heat_exits_through_convection() {
        let stack = Stack::feram_on_compute_die(5);
        let mut power = PowerMap::zeros(&stack, 8, 8);
        power.add_uniform_layer(stack.compute_layer(), 28.0);
        let field = solve_steady_state(&stack, &power, 300.0);
        // Mean top-layer rise × total convective conductance must equal
        // the injected 28 W (steady state: everything leaves via the top).
        let top = stack.layer_count() - 1;
        let q_out = (field.layer_mean_kelvin(top) - 300.0) / stack.r_convec_k_w;
        assert!((q_out - 28.0).abs() < 0.05, "q_out = {q_out}");
    }

    #[test]
    fn ambient_offset_shifts_solution_linearly() {
        let stack = Stack::feram_on_compute_die(3);
        let mut power = PowerMap::zeros(&stack, 8, 8);
        power.add_uniform_layer(stack.compute_layer(), 10.0);
        let cold = solve_steady_state(&stack, &power, 280.0);
        let warm = solve_steady_state(&stack, &power, 320.0);
        assert!(((warm.peak_kelvin() - cold.peak_kelvin()) - 40.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "disagree on layer count")]
    fn rejects_mismatched_power_map() {
        let stack5 = Stack::feram_on_compute_die(5);
        let stack3 = Stack::feram_on_compute_die(3);
        let power = PowerMap::zeros(&stack3, 8, 8);
        let _ = solve_steady_state(&stack5, &power, 300.0);
    }
}
