//! Solved temperature fields and their measurements.

use serde::{Deserialize, Serialize};

/// A steady-state temperature field over the stack grid, in K.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemperatureField {
    nx: usize,
    ny: usize,
    layers: usize,
    kelvin: Vec<f64>,
    ambient_k: f64,
}

impl TemperatureField {
    pub(crate) fn new(
        nx: usize,
        ny: usize,
        layers: usize,
        kelvin: Vec<f64>,
        ambient_k: f64,
    ) -> Self {
        assert_eq!(kelvin.len(), nx * ny * layers);
        Self {
            nx,
            ny,
            layers,
            kelvin,
            ambient_k,
        }
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers
    }

    /// Ambient temperature, K.
    pub fn ambient_k(&self) -> f64 {
        self.ambient_k
    }

    /// Temperature of one cell, K.
    pub fn cell(&self, layer: usize, iy: usize, ix: usize) -> f64 {
        assert!(layer < self.layers && iy < self.ny && ix < self.nx);
        self.kelvin[(layer * self.ny + iy) * self.nx + ix]
    }

    /// Peak temperature over the whole stack, K.
    pub fn peak_kelvin(&self) -> f64 {
        self.kelvin.iter().copied().fold(f64::MIN, f64::max)
    }

    /// Minimum temperature over the whole stack, K.
    pub fn min_kelvin(&self) -> f64 {
        self.kelvin.iter().copied().fold(f64::MAX, f64::min)
    }

    /// Peak temperature within one layer, K.
    pub fn layer_peak_kelvin(&self, layer: usize) -> f64 {
        (0..self.ny)
            .flat_map(|iy| (0..self.nx).map(move |ix| (iy, ix)))
            .map(|(iy, ix)| self.cell(layer, iy, ix))
            .fold(f64::MIN, f64::max)
    }

    /// Mean temperature within one layer, K.
    pub fn layer_mean_kelvin(&self, layer: usize) -> f64 {
        let sum: f64 = (0..self.ny)
            .flat_map(|iy| (0..self.nx).map(move |ix| (iy, ix)))
            .map(|(iy, ix)| self.cell(layer, iy, ix))
            .sum();
        sum / (self.nx * self.ny) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> TemperatureField {
        // 2 layers of 2x2: layer 0 warm, layer 1 warmer at one corner.
        TemperatureField::new(
            2,
            2,
            2,
            vec![310.0, 310.0, 310.0, 310.0, 320.0, 315.0, 315.0, 315.0],
            300.0,
        )
    }

    #[test]
    fn extrema_and_means() {
        let f = field();
        assert_eq!(f.peak_kelvin(), 320.0);
        assert_eq!(f.min_kelvin(), 310.0);
        assert_eq!(f.layer_peak_kelvin(0), 310.0);
        assert_eq!(f.layer_peak_kelvin(1), 320.0);
        assert!((f.layer_mean_kelvin(1) - 316.25).abs() < 1e-12);
        assert_eq!(f.ambient_k(), 300.0);
        assert_eq!(f.grid(), (2, 2));
        assert_eq!(f.layer_count(), 2);
    }

    #[test]
    fn cell_indexing() {
        let f = field();
        assert_eq!(f.cell(1, 0, 0), 320.0);
        assert_eq!(f.cell(1, 0, 1), 315.0);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_bounds() {
        let _ = field().cell(2, 0, 0);
    }
}
