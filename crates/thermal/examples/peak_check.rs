fn main() {
    let stack = felim_thermal::Stack::feram_on_compute_die(5);
    let mut power = felim_thermal::PowerMap::zeros(&stack, 32, 32);
    power.add_uniform_layer(stack.compute_layer(), 28.0);
    power.add_memory_activity(&stack, 0.27, 0.25);
    let f = felim_thermal::solve_steady_state(&stack, &power, 300.0);
    println!("peak = {:.2} K (paper: 351.88 K)", f.peak_kelvin());
}
