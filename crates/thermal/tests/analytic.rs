//! Validation of the thermal solver against closed-form 1-D conduction.

use felim_thermal::{solve_steady_state, solve_transient, PowerMap, Stack};

/// A uniform heat flux through a layered slab drops `q·R` across each
/// layer; with laterally-uniform power the 3-D solver must reproduce the
/// 1-D series-resistance solution layer by layer.
#[test]
fn uniform_flux_matches_series_resistance() {
    let stack = {
        let mut s = Stack::feram_on_compute_die(1);
        s.r_convec_k_w = 2.0;
        s
    };
    let p_total = 12.0;
    let mut power = PowerMap::zeros(&stack, 16, 16);
    power.add_uniform_layer(stack.compute_layer(), p_total);
    let field = solve_steady_state(&stack, &power, 300.0);

    let area = stack.width_m * stack.depth_m;
    // Expected mean temperature of layer i (centre): ambient + P·R_conv +
    // P · (resistance from layer-i centre to the top surface).
    // Half-layer resistance of each layer plus full layers above it.
    let r_above: Vec<f64> = (0..stack.layer_count())
        .map(|i| {
            let mut r =
                stack.layers[i].thickness_m / (2.0 * stack.layers[i].conductivity_w_mk * area);
            for layer in &stack.layers[i + 1..] {
                r += layer.thickness_m / (layer.conductivity_w_mk * area);
            }
            r
        })
        .collect();
    for (i, r) in r_above.iter().enumerate() {
        if i < stack.compute_layer() {
            continue;
        }
        let expect = 300.0 + p_total * (stack.r_convec_k_w + r);
        let got = field.layer_mean_kelvin(i);
        assert!(
            (got - expect).abs() < 0.25,
            "layer {i}: solver {got:.3} K vs 1-D {expect:.3} K"
        );
    }
}

/// The transient solution must never overshoot the steady state (pure
/// RC diffusion is monotone for a step input).
#[test]
fn transient_never_overshoots_steady_state() {
    let stack = Stack::feram_on_compute_die(3);
    let mut power = PowerMap::zeros(&stack, 8, 8);
    power.add_uniform_layer(stack.compute_layer(), 20.0);
    let steady = solve_steady_state(&stack, &power, 300.0).peak_kelvin();
    let result = solve_transient(&stack, &power, 300.0, 2.0, 0.02, 5);
    for point in &result.trajectory {
        assert!(
            point.peak_k <= steady + 0.05,
            "t = {}: {} K overshoots steady {} K",
            point.time_s,
            point.peak_k,
            steady
        );
    }
}

/// Superposition: two sources solved together equal the sum of the
/// individual solutions (the operator is linear).
#[test]
fn thermal_superposition() {
    let stack = Stack::feram_on_compute_die(2);
    let solve_rise = |build: &dyn Fn(&mut PowerMap)| {
        let mut p = PowerMap::zeros(&stack, 8, 8);
        build(&mut p);
        let f = solve_steady_state(&stack, &p, 300.0);
        (0..stack.layer_count())
            .map(|l| f.layer_mean_kelvin(l) - 300.0)
            .collect::<Vec<f64>>()
    };
    let a = solve_rise(&|p| p.add_uniform_layer(0, 7.0));
    let b = solve_rise(&|p| p.add_block(2, (1, 1), (3, 3), 3.0));
    let both = solve_rise(&|p| {
        p.add_uniform_layer(0, 7.0);
        p.add_block(2, (1, 1), (3, 3), 3.0);
    });
    for l in 0..stack.layer_count() {
        assert!(
            (both[l] - (a[l] + b[l])).abs() < 1e-6,
            "layer {l}: superposition violated"
        );
    }
}

/// Grid-resolution convergence: the peak temperature must be stable as
/// the lateral discretisation is refined (the 32×32 grid used for Fig 7
/// is converged to well under a kelvin).
#[test]
fn grid_convergence() {
    let stack = Stack::feram_on_compute_die(5);
    let peak_at = |grid: usize| {
        let mut power = PowerMap::zeros(&stack, grid, grid);
        power.add_uniform_layer(stack.compute_layer(), 28.0);
        solve_steady_state(&stack, &power, 300.0).peak_kelvin()
    };
    let p16 = peak_at(16);
    let p32 = peak_at(32);
    let p64 = peak_at(64);
    assert!((p32 - p64).abs() < 0.2, "32→64 drift {}", (p32 - p64).abs());
    assert!((p16 - p32).abs() < 0.5, "16→32 drift {}", (p16 - p32).abs());
}
