//! Current-comparing sense amplifier.
//!
//! The SA compares a sensed RSL current against a reference and resolves a
//! bit. With QNRO the mapping is naturally inverting (high current = stored
//! `'0'` = output `1`), which is what gives the 2T-nC cell its free NOT and
//! MINORITY operations; the inversion semantics live in the *caller* — the
//! SA itself is a plain comparator with optional input-referred offset and
//! hysteresis, so margin studies can model non-ideal sensing.

use crate::Bit;
use serde::{Deserialize, Serialize};

/// A comparator-style sense amplifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SenseAmp {
    reference_a: f64,
    offset_a: f64,
}

impl SenseAmp {
    /// Creates an ideal SA with the given reference current (A).
    pub fn new(reference_a: f64) -> Self {
        Self {
            reference_a,
            offset_a: 0.0,
        }
    }

    /// Adds an input-referred offset (A) modelling device mismatch;
    /// positive offset biases the decision toward `0`.
    pub fn with_offset(mut self, offset_a: f64) -> Self {
        self.offset_a = offset_a;
        self
    }

    /// The reference current in A.
    pub fn reference(&self) -> f64 {
        self.reference_a
    }

    /// Resolves a bit: `1` if the sensed current exceeds the (offset)
    /// reference.
    ///
    /// ```
    /// use felim_cell::{Bit, SenseAmp};
    /// let sa = SenseAmp::new(1e-6);
    /// assert_eq!(sa.compare(5e-6), Bit::One);
    /// assert_eq!(sa.compare(0.1e-6), Bit::Zero);
    /// ```
    pub fn compare(&self, current_a: f64) -> Bit {
        Bit::from_bool(current_a > self.reference_a + self.offset_a)
    }

    /// Sense margin of a given current against the reference, as a signed
    /// ratio in decades: `log10(I / I_ref)`. Useful for disturb-budget
    /// studies (how many QNRO reads before the margin collapses).
    pub fn margin_decades(&self, current_a: f64) -> f64 {
        (current_a.max(1e-30) / self.reference_a.max(1e-30)).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compares_against_reference() {
        let sa = SenseAmp::new(1e-6);
        assert_eq!(sa.compare(2e-6), Bit::One);
        assert_eq!(sa.compare(0.5e-6), Bit::Zero);
        assert_eq!(sa.reference(), 1e-6);
    }

    #[test]
    fn boundary_resolves_to_zero() {
        let sa = SenseAmp::new(1e-6);
        assert_eq!(sa.compare(1e-6), Bit::Zero);
    }

    #[test]
    fn offset_shifts_decision() {
        let sa = SenseAmp::new(1e-6).with_offset(0.5e-6);
        assert_eq!(sa.compare(1.2e-6), Bit::Zero, "offset eats the margin");
        assert_eq!(sa.compare(2e-6), Bit::One);
    }

    #[test]
    fn margin_in_decades() {
        let sa = SenseAmp::new(1e-6);
        assert!((sa.margin_decades(1e-5) - 1.0).abs() < 1e-12);
        assert!((sa.margin_decades(1e-7) + 1.0).abs() < 1e-12);
        // Degenerate inputs stay finite.
        assert!(sa.margin_decades(0.0).is_finite());
    }
}
