//! 1T-1C FeRAM cell — the non-volatile but destructive-read baseline.
//!
//! Fig 2(a): reading applies a full plate-line pulse. If the stored
//! polarization opposes the pulse it reverses completely, releasing a
//! large switching charge (that *is* the sense signal); if aligned, only
//! the linear charge flows. Either way the cell ends up in the
//! pulse-aligned state, so a `'0'` is destroyed by reading and must be
//! written back — the energy and latency overhead that motivates the
//! 2T-nC QNRO design.

use crate::Bit;
use felim_ferro::{MfmCapacitor, MfmParams, Polarity};
use serde::{Deserialize, Serialize};

/// Result of a destructive 1T-1C FeRAM read.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Feram1t1cRead {
    /// The sensed (non-inverted) stored bit.
    pub sensed: Bit,
    /// Charge moved during the plate pulse, in C.
    pub charge_c: f64,
    /// Whether the read destroyed the stored state (stored `'0'` under a
    /// positive plate pulse).
    pub destroyed: bool,
}

/// A 1T-1C FeRAM cell (access transistor treated as ideal here — the
/// paper's comparison is about the sensing scheme, not the access device).
#[derive(Debug, Clone)]
pub struct Feram1t1c {
    cap: MfmCapacitor,
    /// Sense threshold between the switching and non-switching charge, C.
    charge_threshold_c: f64,
}

impl Feram1t1c {
    /// Builds a cell from MFM device parameters; the charge threshold is
    /// calibrated midway between the switching and non-switching read
    /// charges.
    pub fn new(params: &MfmParams) -> Self {
        // Calibrate on scratch devices.
        let mut down = MfmCapacitor::new(params);
        down.write_ideal(Polarity::Down);
        let q_switch = down
            .apply_pulse(params.write_voltage_v, params.write_pulse_s)
            .total_charge;
        let mut up = MfmCapacitor::new(params);
        up.write_ideal(Polarity::Up);
        let q_lin = up
            .apply_pulse(params.write_voltage_v, params.write_pulse_s)
            .total_charge;
        Self {
            cap: MfmCapacitor::new(params),
            charge_threshold_c: (q_switch + q_lin) / 2.0,
        }
    }

    /// The underlying device state.
    pub fn capacitor(&self) -> &MfmCapacitor {
        &self.cap
    }

    /// The calibrated sense threshold in C.
    pub fn charge_threshold(&self) -> f64 {
        self.charge_threshold_c
    }

    /// Writes a bit with a full write pulse.
    pub fn write(&mut self, bit: Bit) {
        self.cap.write(bit.polarity());
    }

    /// The stored bit (None if degraded).
    pub fn stored(&self) -> Option<Bit> {
        self.cap.stored_state(0.25).map(Bit::from_polarity)
    }

    /// Destructive read: full positive plate pulse; large charge means the
    /// polarization reversed, i.e. a `'0'` was stored. Non-inverting —
    /// and the cell is left in the `'1'` state regardless.
    pub fn read(&mut self) -> Feram1t1cRead {
        let stored_zero = self.stored() == Some(Bit::Zero);
        let params = self.cap.params().clone();
        let r = self
            .cap
            .apply_pulse(params.write_voltage_v, params.write_pulse_s);
        // The plate pulse leaves the cell in the '1' state; route the
        // final programming through `write` so the endurance bookkeeping
        // records the polarity reversal this destructive read caused.
        self.cap.write(Polarity::Up);
        let sensed = if r.total_charge > self.charge_threshold_c {
            Bit::Zero
        } else {
            Bit::One
        };
        Feram1t1cRead {
            sensed,
            charge_c: r.total_charge,
            destroyed: stored_zero,
        }
    }

    /// Read followed by the mandatory write-back of the sensed value.
    pub fn read_with_writeback(&mut self) -> Feram1t1cRead {
        let r = self.read();
        self.write(r.sensed);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> Feram1t1c {
        Feram1t1c::new(&MfmParams::fabricated())
    }

    #[test]
    fn read_is_correct_and_non_inverting() {
        let mut c = cell();
        c.write(Bit::Zero);
        assert_eq!(c.read().sensed, Bit::Zero, "non-inverting sense");
        let mut c = cell();
        c.write(Bit::One);
        assert_eq!(c.read().sensed, Bit::One);
    }

    #[test]
    fn reading_zero_destroys_it() {
        let mut c = cell();
        c.write(Bit::Zero);
        let r = c.read();
        assert!(r.destroyed);
        // The cell now holds '1' — the stored '0' is gone.
        assert_eq!(c.stored(), Some(Bit::One));
    }

    #[test]
    fn reading_one_is_harmless_but_flagged_not_destroyed() {
        let mut c = cell();
        c.write(Bit::One);
        let r = c.read();
        assert!(!r.destroyed);
        assert_eq!(c.stored(), Some(Bit::One));
    }

    #[test]
    fn switching_read_charge_dominates() {
        let mut c0 = cell();
        c0.write(Bit::Zero);
        let q0 = c0.read().charge_c;
        let mut c1 = cell();
        c1.write(Bit::One);
        let q1 = c1.read().charge_c;
        // Full polarization reversal (~2·Ps·A) vs linear-only charge.
        assert!(q0 > 3.0 * q1, "q0 = {q0:e} vs q1 = {q1:e}");
    }

    #[test]
    fn writeback_restores_state() {
        let mut c = cell();
        c.write(Bit::Zero);
        let r = c.read_with_writeback();
        assert_eq!(r.sensed, Bit::Zero);
        assert_eq!(c.stored(), Some(Bit::Zero), "write-back restored the 0");
    }

    #[test]
    fn repeated_reads_with_writeback_are_stable() {
        let mut c = cell();
        c.write(Bit::Zero);
        for _ in 0..10 {
            assert_eq!(c.read_with_writeback().sensed, Bit::Zero);
        }
        // Ten full write cycles of endurance wear were consumed doing so —
        // the overhead QNRO avoids.
        assert!(c.capacitor().cycles() >= 9.0);
    }

    #[test]
    fn threshold_sits_between_levels() {
        let c = cell();
        let mut c0 = cell();
        c0.write(Bit::Zero);
        let q0 = c0.read().charge_c;
        let mut c1 = cell();
        c1.write(Bit::One);
        let q1 = c1.read().charge_c;
        assert!(c.charge_threshold() < q0);
        assert!(c.charge_threshold() > q1);
    }
}
