//! The 2T-nC FeRAM gain cell (behavioural model).
//!
//! Topology (Fig 3(a)): `n` MFM capacitors share a storage node SN. Each
//! capacitor's far plate is its own write bit line WBL_i. SN connects
//! through the write transistor T_W (gated by WWL) to the write plate line
//! WPL, and drives the gate of the read transistor T_R whose drain/source
//! sit between RBL and RSL.
//!
//! * **Write** — T_W on, SN held at WPL, the selected WBL driven to the
//!   complementary rail: the full write voltage appears across the target
//!   capacitor and programs its polarization.
//! * **QNRO read** — T_W off (SN floats), a small read voltage V_R on the
//!   selected WBL couples onto SN through the capacitor. A stored `'0'`
//!   (polarization opposing the read field) presents a much larger
//!   effective capacitance (reversible domain-wall response plus a little
//!   irreversible tail switching), so V_int and hence the T_R current are
//!   *high* for `'0'` and *low* for `'1'` — the readout inverts.
//! * **TBA** — three WBLs raised together; V_int is monotone in the number
//!   of stored zeros, so a single reference between the popcount-1 and
//!   popcount-2 levels senses the MINORITY function.
//!
//! The model computes V_int by charge balance on the floating SN with
//! state-dependent capacitances from [`felim_ferro::MfmCapacitor`], applies
//! the genuine read-disturb to the device states, and evaluates the T_R
//! current with the [`felim_spice::MosfetParams`] compact model. The
//! transistor-level validation of the same behaviour lives in
//! [`crate::netlists`].

use crate::senseamp::SenseAmp;
use crate::{minority, Bit};
use felim_ferro::{MfmCapacitor, MfmParams, Polarity};
use felim_spice::MosfetParams;
use serde::{Deserialize, Serialize};

/// Parameters of a 2T-nC cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell2TnCParams {
    /// Ferroelectric capacitor device parameters (one per capacitor).
    pub mfm: MfmParams,
    /// Number of capacitors `n` in the cell (the paper uses n = 3 for
    /// TBA logic; densities up to n = 8 are explored for storage).
    pub n_caps: usize,
    /// Read transistor compact model.
    pub t_r: MosfetParams,
    /// Extra parasitic capacitance on the storage node, in F (wiring plus
    /// the off T_W junction).
    pub sn_parasitic_f: f64,
    /// QNRO read pulse width in s.
    pub read_pulse_s: f64,
    /// RBL drain bias during reads, in V.
    pub rbl_bias_v: f64,
}

impl Default for Cell2TnCParams {
    fn default() -> Self {
        Self {
            mfm: MfmParams::scaled_45nm(),
            n_caps: 3,
            t_r: MosfetParams::ptm45_nmos(),
            sn_parasitic_f: 3.0e-15,
            read_pulse_s: 100e-9,
            rbl_bias_v: 0.7,
        }
    }
}

impl Cell2TnCParams {
    /// Validates structural constraints.
    ///
    /// # Errors
    ///
    /// Returns a message if `n_caps` is zero or physical values are
    /// non-positive.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_caps == 0 {
            return Err("a 2T-nC cell needs at least one capacitor".into());
        }
        if self.sn_parasitic_f < 0.0 {
            return Err("parasitic capacitance must be non-negative".into());
        }
        if self.read_pulse_s <= 0.0 || self.rbl_bias_v <= 0.0 {
            return Err("read pulse and RBL bias must be positive".into());
        }
        self.mfm.validate().map_err(|e| e.to_string())
    }
}

/// Analog levels produced by a (possibly multi-capacitor) QNRO sense.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SenseLevels {
    /// Floating storage-node voltage at the read plateau, in V.
    pub v_int: f64,
    /// Read-transistor (RSL) current, in A.
    pub rsl_current_a: f64,
}

/// Result of a sensed cell operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadResult {
    /// The sense-amplifier output bit. QNRO inverts: reading a stored
    /// `'0'` yields `1` (this *is* the NOT operation); a TBA read yields
    /// the MINORITY of the three stored bits.
    pub sensed: Bit,
    /// The analog levels behind the decision.
    pub levels: SenseLevels,
}

/// Behavioural 2T-nC FeRAM cell.
///
/// ```
/// use felim_cell::{Bit, cell2tnc::{Cell2TnC, Cell2TnCParams}};
///
/// let mut cell = Cell2TnC::new(&Cell2TnCParams::default());
/// cell.write(0, Bit::Zero);
/// // QNRO sensing inverts — this is a free NOT:
/// assert_eq!(cell.qnro_read(0).sensed, Bit::One);
/// // And the stored bit survives the read (quasi-nondestructive):
/// assert_eq!(cell.stored(0), Some(Bit::Zero));
/// ```
#[derive(Debug, Clone)]
pub struct Cell2TnC {
    params: Cell2TnCParams,
    caps: Vec<MfmCapacitor>,
    not_reference_a: f64,
    tba_reference_a: f64,
}

impl Cell2TnC {
    /// Builds a cell with all capacitors freshly in the `'0'` state and
    /// sense references calibrated per the paper (NOT: between the `'0'`
    /// and `'1'` read currents; TBA: between the `'001'` and `'011'`
    /// levels).
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`Cell2TnCParams::validate`].
    pub fn new(params: &Cell2TnCParams) -> Self {
        params.validate().expect("valid Cell2TnCParams");
        let caps = (0..params.n_caps)
            .map(|i| {
                let mut p = params.mfm.clone();
                // Distinct disorder per capacitor, deterministic per cell.
                p.seed = p.seed.wrapping_add(i as u64);
                MfmCapacitor::new(&p)
            })
            .collect();
        let mut cell = Self {
            params: params.clone(),
            caps,
            not_reference_a: 0.0,
            tba_reference_a: 0.0,
        };
        cell.calibrate_references();
        cell
    }

    /// The cell parameters.
    pub fn params(&self) -> &Cell2TnCParams {
        &self.params
    }

    /// Number of capacitors in the cell.
    pub fn n_caps(&self) -> usize {
        self.params.n_caps
    }

    /// Direct access to a capacitor's device state.
    pub fn capacitor(&self, idx: usize) -> &MfmCapacitor {
        &self.caps[idx]
    }

    /// Sets the operating temperature (K) of every capacitor in the cell
    /// and re-calibrates the sense references at that temperature.
    pub fn set_temperature(&mut self, t_k: f64) {
        for cap in &mut self.caps {
            cap.set_temperature(t_k);
        }
        self.calibrate_references();
    }

    /// Writes `bit` into capacitor `idx` with a physical write pulse
    /// (T_W on, complementary WBL/WPL rails).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn write(&mut self, idx: usize, bit: Bit) {
        self.caps[idx].write(bit.polarity());
    }

    /// Writes one bit per capacitor in a single cycle (the multi-write of
    /// Fig 3(e) step 1). `bits.len()` must not exceed `n_caps`.
    ///
    /// # Panics
    ///
    /// Panics if more bits than capacitors are supplied.
    pub fn write_bits(&mut self, bits: &[Bit]) {
        assert!(
            bits.len() <= self.caps.len(),
            "cell has {} capacitors, got {} bits",
            self.caps.len(),
            bits.len()
        );
        for (i, &b) in bits.iter().enumerate() {
            self.write(i, b);
        }
    }

    /// The stored logical state of capacitor `idx`, or `None` if the
    /// polarization has degraded into the ambiguous band.
    pub fn stored(&self, idx: usize) -> Option<Bit> {
        self.caps[idx].stored_state(0.25).map(Bit::from_polarity)
    }

    /// All stored bits (None entries for degraded capacitors).
    pub fn stored_bits(&self) -> Vec<Option<Bit>> {
        (0..self.caps.len()).map(|i| self.stored(i)).collect()
    }

    /// Computes the analog sense levels for raising the given WBLs to the
    /// read voltage, *without* disturbing the state.
    pub fn sense_levels(&self, active: &[usize]) -> SenseLevels {
        let v_r = self.params.mfm.read_voltage_v;
        // Charge balance on the floating SN with bias-dependent
        // capacitances: v_int = Σ_active C_i(V_R − v_int)·V_R / ΣC. The
        // capacitances depend on the (unknown) v_int through the
        // domain-wall depinning threshold, so iterate the fixed point —
        // it converges in two or three rounds.
        let c_fixed = self.params.sn_parasitic_f + self.params.t_r.gate_capacitance_f;
        let mut v_int = 0.0;
        for _ in 0..4 {
            let mut c_drive = 0.0;
            let mut c_total = c_fixed;
            for (i, cap) in self.caps.iter().enumerate() {
                if active.contains(&i) {
                    // Active capacitor sees WBL high vs the rising SN.
                    let c = cap.capacitance(v_r - v_int);
                    c_drive += c;
                    c_total += c;
                } else {
                    // Inactive capacitor is pulled negative by rising SN.
                    c_total += cap.capacitance(-v_int);
                }
            }
            v_int = v_r * c_drive / c_total;
        }
        let rsl_current_a = self.params.t_r.ids(v_int, self.params.rbl_bias_v);
        SenseLevels {
            v_int,
            rsl_current_a,
        }
    }

    /// QNRO read of a single capacitor: senses the inverted bit and
    /// applies the physical read disturb to the device state.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn qnro_read(&mut self, idx: usize) -> ReadResult {
        let levels = self.sense_levels(&[idx]);
        self.apply_read_disturb(&[idx], levels.v_int);
        let sa = SenseAmp::new(self.not_reference_a);
        ReadResult {
            sensed: sa.compare(levels.rsl_current_a),
            levels,
        }
    }

    /// Triple-bit activation over capacitors 0, 1 and 2: senses the
    /// MINORITY of the stored bits (NAND/NOR with the control bit in
    /// capacitor 2) and applies read disturb.
    ///
    /// # Panics
    ///
    /// Panics if the cell has fewer than three capacitors.
    pub fn tba(&mut self) -> ReadResult {
        assert!(self.caps.len() >= 3, "TBA needs n >= 3 capacitors");
        let active = [0, 1, 2];
        let levels = self.sense_levels(&active);
        self.apply_read_disturb(&active, levels.v_int);
        let sa = SenseAmp::new(self.tba_reference_a);
        ReadResult {
            sensed: sa.compare(levels.rsl_current_a),
            levels,
        }
    }

    /// The expected MINORITY output from the currently stored bits
    /// (ground truth for verification). `None` if any participating state
    /// is degraded.
    pub fn expected_minority(&self) -> Option<Bit> {
        Some(minority(self.stored(0)?, self.stored(1)?, self.stored(2)?))
    }

    /// Number of QNRO reads the first capacitor has absorbed since its
    /// last write (disturb bookkeeping).
    pub fn reads_since_write(&self, idx: usize) -> u64 {
        self.caps[idx].reads_since_write()
    }

    /// Re-writes every capacitor with its currently stored value — the
    /// write-back that QNRO only occasionally requires. Returns the
    /// refreshed bits.
    pub fn write_back(&mut self) -> Vec<Option<Bit>> {
        let bits = self.stored_bits();
        for (i, bit) in bits.iter().enumerate() {
            if let Some(b) = bit {
                self.write(i, *b);
            }
        }
        bits
    }

    /// The calibrated NOT-read sense reference, in A.
    pub fn not_reference(&self) -> f64 {
        self.not_reference_a
    }

    /// The calibrated TBA sense reference, in A (between the `'001'` and
    /// `'011'` current levels, as in Fig 4(j)).
    pub fn tba_reference(&self) -> f64 {
        self.tba_reference_a
    }

    fn apply_read_disturb(&mut self, active: &[usize], v_int: f64) {
        let v_r = self.params.mfm.read_voltage_v;
        let dt = self.params.read_pulse_s;
        for (i, cap) in self.caps.iter_mut().enumerate() {
            if active.contains(&i) {
                cap.apply_voltage(v_r - v_int, dt);
                cap.count_read();
            } else {
                cap.apply_voltage(-v_int, dt);
            }
        }
    }

    fn calibrate_references(&mut self) {
        // Scratch copies — calibration must not disturb the real state.
        let mut probe = self.clone();
        probe.caps_write_ideal(&[Bit::Zero, Bit::Zero, Bit::Zero]);
        let i0 = probe.sense_levels(&[0]).rsl_current_a;
        probe.caps_write_ideal(&[Bit::One, Bit::One, Bit::One]);
        let i1 = probe.sense_levels(&[0]).rsl_current_a;
        self.not_reference_a = (i0 * i1).sqrt();

        if self.params.n_caps >= 3 {
            probe.caps_write_ideal(&[Bit::Zero, Bit::Zero, Bit::One]);
            let i_001 = probe.sense_levels(&[0, 1, 2]).rsl_current_a;
            probe.caps_write_ideal(&[Bit::Zero, Bit::One, Bit::One]);
            let i_011 = probe.sense_levels(&[0, 1, 2]).rsl_current_a;
            self.tba_reference_a = (i_001 * i_011).sqrt();
        }
    }

    fn caps_write_ideal(&mut self, bits: &[Bit]) {
        for (i, &b) in bits.iter().enumerate() {
            if i < self.caps.len() {
                self.caps[i].write_ideal(b.polarity());
            }
        }
    }
}

/// Helper: the polarity pattern for a 3-bit value `v` (bit 2 = A, bit 1 =
/// B, bit 0 = C), used by tests and benches to enumerate Fig 3(f) states.
pub fn pattern_bits(v: u8) -> [Bit; 3] {
    [
        Bit::from_bool(v & 0b100 != 0),
        Bit::from_bool(v & 0b010 != 0),
        Bit::from_bool(v & 0b001 != 0),
    ]
}

/// Polarity form of [`pattern_bits`].
pub fn pattern_polarities(v: u8) -> [Polarity; 3] {
    let b = pattern_bits(v);
    [b[0].polarity(), b[1].polarity(), b[2].polarity()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> Cell2TnC {
        Cell2TnC::new(&Cell2TnCParams::default())
    }

    #[test]
    fn write_read_roundtrip_with_inversion() {
        let mut c = cell();
        c.write(0, Bit::Zero);
        let r = c.qnro_read(0);
        assert_eq!(r.sensed, Bit::One, "QNRO must invert");
        assert_eq!(c.stored(0), Some(Bit::Zero), "state must survive");

        c.write(0, Bit::One);
        let r = c.qnro_read(0);
        assert_eq!(r.sensed, Bit::Zero);
        assert_eq!(c.stored(0), Some(Bit::One));
    }

    #[test]
    fn read_current_contrast_is_large() {
        let mut c = cell();
        c.write(0, Bit::Zero);
        let i0 = c.sense_levels(&[0]).rsl_current_a;
        c.write(0, Bit::One);
        let i1 = c.sense_levels(&[0]).rsl_current_a;
        assert!(
            i0 / i1 > 5.0,
            "need a robust sense window, got i0/i1 = {}",
            i0 / i1
        );
    }

    #[test]
    fn v_int_higher_for_stored_zero() {
        let mut c = cell();
        c.write(0, Bit::Zero);
        let v0 = c.sense_levels(&[0]).v_int;
        c.write(0, Bit::One);
        let v1 = c.sense_levels(&[0]).v_int;
        assert!(v0 > v1, "V_int('0') = {v0} must exceed V_int('1') = {v1}");
        // And both stay below the read voltage (passive divider).
        assert!(v0 < c.params().mfm.read_voltage_v);
    }

    #[test]
    fn tba_implements_minority_for_all_eight_states() {
        // Fig 3(e,f): exhaustive TBA truth table in a single cell.
        for v in 0..8u8 {
            let mut c = cell();
            c.write_bits(&pattern_bits(v));
            let expect = Bit::from_bool(v.count_ones() <= 1);
            let got = c.tba();
            assert_eq!(
                got.sensed,
                expect,
                "pattern {v:03b}: current {:e}, ref {:e}",
                got.levels.rsl_current_a,
                c.tba_reference()
            );
            assert_eq!(c.expected_minority(), Some(expect));
        }
    }

    #[test]
    fn tba_levels_monotone_in_zero_count() {
        // Fig 4(i): RSL current rises with the number of stored zeros —
        // the "opposite trend" vs 1T-1C FeRAM.
        let mut by_popcount: Vec<(u32, f64)> = Vec::new();
        for v in 0..8u8 {
            let mut c = cell();
            c.write_bits(&pattern_bits(v));
            let lv = c.sense_levels(&[0, 1, 2]);
            by_popcount.push((v.count_ones(), lv.rsl_current_a));
        }
        for &(pc_a, i_a) in &by_popcount {
            for &(pc_b, i_b) in &by_popcount {
                if pc_a < pc_b {
                    assert!(
                        i_a > i_b,
                        "current must fall with popcount: {pc_a}→{i_a:e}, {pc_b}→{i_b:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn tba_v_int_levels_roughly_linear() {
        // Fig 4(i) reports linear level spacing; the capacitive divider
        // gives adjacent-gap ratios within ~2.5×.
        let mut levels = [0.0; 4];
        for v in 0..8u8 {
            let mut c = cell();
            c.write_bits(&pattern_bits(v));
            levels[v.count_ones() as usize] = c.sense_levels(&[0, 1, 2]).v_int;
        }
        let gaps: Vec<f64> = levels.windows(2).map(|w| w[0] - w[1]).collect();
        for g in &gaps {
            assert!(*g > 0.0, "levels must be strictly ordered");
        }
        let max_gap = gaps.iter().cloned().fold(f64::MIN, f64::max);
        let min_gap = gaps.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max_gap / min_gap < 2.5, "gap spread too uneven: {gaps:?}");
    }

    #[test]
    fn reads_are_quasi_nondestructive_but_accumulate() {
        let mut c = cell();
        c.write_bits(&[Bit::Zero, Bit::One, Bit::Zero]);
        for _ in 0..20 {
            let _ = c.tba();
        }
        // After 20 TBA reads all three states still decode.
        assert_eq!(c.stored(0), Some(Bit::Zero));
        assert_eq!(c.stored(1), Some(Bit::One));
        assert_eq!(c.stored(2), Some(Bit::Zero));
        // But the zero-state capacitors have genuinely drifted.
        assert!(c.capacitor(0).polarization() > -1.0);
    }

    #[test]
    fn write_back_restores_full_polarization() {
        let mut c = cell();
        c.write_bits(&[Bit::Zero, Bit::One, Bit::Zero]);
        for _ in 0..50 {
            let _ = c.tba();
        }
        let drifted = c.capacitor(0).polarization();
        let bits = c.write_back();
        assert_eq!(bits[0], Some(Bit::Zero));
        assert!(c.capacitor(0).polarization() < drifted);
        assert!(c.capacitor(0).polarization() < -0.95);
    }

    #[test]
    fn multi_write_sets_all_caps() {
        let mut c = cell();
        c.write_bits(&[Bit::One, Bit::Zero, Bit::One]);
        assert_eq!(
            c.stored_bits(),
            vec![Some(Bit::One), Some(Bit::Zero), Some(Bit::One)]
        );
    }

    #[test]
    fn references_are_between_the_levels_they_separate() {
        let c = cell();
        // NOT reference between the single-cap 0 and 1 currents.
        let mut probe = c.clone();
        probe.write(0, Bit::Zero);
        let i0 = probe.sense_levels(&[0]).rsl_current_a;
        probe.write(0, Bit::One);
        let i1 = probe.sense_levels(&[0]).rsl_current_a;
        assert!(c.not_reference() < i0 && c.not_reference() > i1);
    }

    #[test]
    fn n_caps_beyond_three_still_store() {
        let params = Cell2TnCParams {
            n_caps: 6,
            ..Cell2TnCParams::default()
        };
        let mut c = Cell2TnC::new(&params);
        for i in 0..6 {
            c.write(i, if i % 2 == 0 { Bit::One } else { Bit::Zero });
        }
        for i in 0..6 {
            let expect = if i % 2 == 0 { Bit::One } else { Bit::Zero };
            assert_eq!(c.stored(i), Some(expect));
            let r = c.qnro_read(i);
            assert_eq!(r.sensed, !expect);
        }
    }

    #[test]
    #[should_panic(expected = "at least one capacitor")]
    fn rejects_zero_caps() {
        let params = Cell2TnCParams {
            n_caps: 0,
            ..Cell2TnCParams::default()
        };
        let _ = Cell2TnC::new(&params);
    }

    #[test]
    #[should_panic(expected = "TBA needs")]
    fn tba_requires_three_caps() {
        let params = Cell2TnCParams {
            n_caps: 2,
            ..Cell2TnCParams::default()
        };
        let mut c = Cell2TnC::new(&params);
        let _ = c.tba();
    }

    #[test]
    fn sensing_survives_the_thermal_operating_range() {
        // Section VII closes with "these operating temperatures preserve
        // the ferroelectric properties" — check the *sensing* does too:
        // the TBA decision stays correct with the devices at the 352 K
        // stack temperature and at the 390 K measurement extreme.
        for t_k in [300.0, 351.88, 390.0] {
            for v in 0..8u8 {
                let mut params = Cell2TnCParams::default();
                params.mfm.seed ^= u64::from(v); // fresh disorder per case
                let mut hot = Cell2TnC::new(&params);
                hot.set_temperature(t_k);
                hot.write_bits(&pattern_bits(v));
                let out = hot.tba();
                let expect = Bit::from_bool(v.count_ones() <= 1);
                assert_eq!(out.sensed, expect, "pattern {v:03b} at {t_k} K");
            }
        }
    }

    #[test]
    fn pattern_helpers() {
        assert_eq!(pattern_bits(0b101), [Bit::One, Bit::Zero, Bit::One]);
        let p = pattern_polarities(0b100);
        assert_eq!(p[0], Polarity::Up);
        assert_eq!(p[1], Polarity::Down);
    }
}
