//! Transistor-level validation of the 1T-1C DRAM behavioural model.
//!
//! Builds the classic cell: storage capacitor behind an NMOS access
//! transistor, dumping onto a precharged bitline. The charge-sharing
//! arithmetic the behavioural [`crate::dram::DramCell`] uses —
//! `V_shared = (C_cell·V_cell + C_bl·V_pre)/(C_cell + C_bl)` — must match
//! what the circuit actually does, including the destructive collapse of
//! the stored level.

use crate::dram::DramParams;
use felim_spice::{Circuit, Element, MosfetParams, SpiceError, Trace, TransientSpec, Waveform};

/// Node names used by the testbench.
pub const CELL: &str = "cell";
/// Bitline node.
pub const BITLINE: &str = "bl";

/// Builds a 1T-1C read testbench: the cell pre-charged to `v_cell`, the
/// bitline to VDD/2, and the wordline pulsed (boosted) at 10 ns.
pub fn read_testbench(params: &DramParams, v_cell: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let cell = ckt.node(CELL);
    let bl = ckt.node(BITLINE);
    let wl = ckt.node("wl");

    // Boosted wordline so the NMOS passes a full level.
    ckt.add_vsource(
        "VWL",
        wl,
        Circuit::GND,
        Waveform::single_pulse(params.vdd + 1.2, 10e-9, 200e-9),
    );
    let mut access = MosfetParams::ptm45_nmos();
    // A strong access device keeps the share fast relative to the pulse.
    access.beta_a_v2 *= 4.0;
    ckt.add("MA", Element::mosfet(bl, wl, cell, access));
    ckt.add(
        "CC",
        Element::capacitor(cell, Circuit::GND, params.c_cell_f),
    );
    ckt.add(
        "CBL",
        Element::capacitor(bl, Circuit::GND, params.c_bitline_f),
    );
    ckt.set_initial_voltage(cell, v_cell);
    ckt.set_initial_voltage(bl, params.vdd / 2.0);
    ckt
}

/// Runs the testbench and returns the trace.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn run(ckt: &mut Circuit) -> Result<Trace, SpiceError> {
    ckt.transient(&TransientSpec::new(400e-9, 2e-9))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramCell;
    use crate::Bit;

    #[test]
    fn charge_sharing_matches_behavioural_model() {
        let params = DramParams::default();
        for bit in [Bit::Zero, Bit::One] {
            // Behavioural prediction.
            let mut cell = DramCell::new(&params);
            cell.write(bit);
            let (_, dv_model) = cell.read();

            // Transistor level.
            let v0 = if bit.to_bool() { params.vdd } else { 0.0 };
            let mut ckt = read_testbench(&params, v0);
            let trace = run(&mut ckt).unwrap();
            let v_bl = trace.voltage_at(BITLINE, 350e-9).unwrap();
            let dv_circuit = v_bl - params.vdd / 2.0;

            assert!(
                (dv_circuit - dv_model).abs() < 0.02,
                "{bit}: circuit ΔV {dv_circuit:.4} vs model {dv_model:.4}"
            );
            // Sign (and hence the sensed bit) must agree.
            assert_eq!(dv_circuit > 0.0, dv_model > 0.0);
        }
    }

    #[test]
    fn read_collapses_the_stored_level() {
        // The destructive-read premise at transistor level: after charge
        // sharing the cell sits near the shared level, far from VDD.
        let params = DramParams::default();
        let mut ckt = read_testbench(&params, params.vdd);
        let trace = run(&mut ckt).unwrap();
        let v_cell_after = trace.voltage_at(CELL, 350e-9).unwrap();
        assert!(
            v_cell_after < 0.75 * params.vdd,
            "stored level must collapse, got {v_cell_after}"
        );
        assert!(v_cell_after > 0.5 * params.vdd);
    }

    #[test]
    fn closed_wordline_preserves_the_cell() {
        // Without the wordline pulse the bitline stays at precharge and
        // the cell keeps its level (modulo off-state leakage).
        let params = DramParams::default();
        let mut ckt = read_testbench(&params, params.vdd);
        ckt.set_vsource("VWL", Waveform::dc(0.0)).unwrap();
        let trace = run(&mut ckt).unwrap();
        let v_cell = trace.voltage_at(CELL, 350e-9).unwrap();
        let v_bl = trace.voltage_at(BITLINE, 350e-9).unwrap();
        assert!((v_cell - params.vdd).abs() < 0.05, "cell held {v_cell}");
        assert!(
            (v_bl - params.vdd / 2.0).abs() < 0.02,
            "bitline held {v_bl}"
        );
    }
}
