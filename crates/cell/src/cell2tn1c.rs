//! The 2T-(n+1)C AND-OR cell of Xiao et al. (ISVLSI 2023) — the prior
//! ferroelectric LiM cell the paper positions itself against.
//!
//! Topology: like the 2T-nC gain cell but with one *extra* logic
//! capacitor on the storage node. Charge-sharing all `n` data capacitors
//! plus the pre-biased logic capacitor produces a storage-node level that
//! thresholds as AND or OR of the stored bits, depending on how the logic
//! capacitor was programmed **before every operation** — that
//! per-operation reprogramming is the "complex to program" overhead the
//! paper's single-cell MINORITY scheme eliminates (and it cannot produce
//! NAND/NOR/NOT at all without extra inversion hardware, since its
//! sensing is non-inverting).

use crate::senseamp::SenseAmp;
use crate::Bit;
use felim_ferro::{MfmCapacitor, MfmParams};
use serde::{Deserialize, Serialize};

/// Which of the two supported functions the logic capacitor is set up for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AndOr {
    /// All stored bits must be 1.
    And,
    /// At least one stored bit must be 1.
    Or,
}

/// Cost (in cell cycles) of one logic operation, split into the setup the
/// scheme requires and the evaluation itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCost {
    /// Logic-capacitor programming cycles before the evaluation.
    pub setup_cycles: u64,
    /// Evaluation (activate + sense) cycles.
    pub eval_cycles: u64,
}

impl OpCost {
    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.setup_cycles + self.eval_cycles
    }
}

/// Behavioural 2T-(n+1)C AND-OR cell.
#[derive(Debug, Clone)]
pub struct Cell2Tn1C {
    data_caps: Vec<MfmCapacitor>,
    logic_cap: MfmCapacitor,
    /// Armed function for the next evaluation (consumed by it).
    configured: Option<AndOr>,
    /// Last function the logic capacitor was programmed for (persists
    /// across evaluations; switching functions costs an extra cycle).
    last_function: Option<AndOr>,
    sa: SenseAmp,
    n: usize,
}

impl Cell2Tn1C {
    /// Builds a cell with `n` data capacitors plus the logic capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the parameters are invalid.
    pub fn new(params: &MfmParams, n: usize) -> Self {
        assert!(n > 0, "need at least one data capacitor");
        params.validate().expect("valid MfmParams");
        let mk = |i: usize| {
            let mut p = params.clone();
            p.seed = p.seed.wrapping_add(i as u64);
            MfmCapacitor::new(&p)
        };
        let data_caps = (0..n).map(mk).collect();
        let logic_cap = mk(n);
        Self {
            data_caps,
            logic_cap,
            configured: None,
            last_function: None,
            sa: SenseAmp::new(0.0),
            n,
        }
    }

    /// Number of data capacitors.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Writes the data bits (one per capacitor).
    ///
    /// # Panics
    ///
    /// Panics if more bits than capacitors are supplied.
    pub fn write_bits(&mut self, bits: &[Bit]) {
        assert!(bits.len() <= self.n, "cell has {} data capacitors", self.n);
        for (cap, &b) in self.data_caps.iter_mut().zip(bits) {
            cap.write(b.polarity());
        }
    }

    /// Programs the logic capacitor for the requested function — the
    /// mandatory pre-operation step. Returns the setup cost (one write
    /// cycle, plus one more when switching functions, for the
    /// complementary pre-bias).
    pub fn configure(&mut self, op: AndOr) -> u64 {
        let cycles = match self.last_function {
            Some(prev) if prev == op => 1, // refresh the bias
            Some(_) => 2,                  // erase + reprogram
            None => 1,
        };
        // The logic capacitor's polarity encodes the function: AND needs
        // the cap biased against the data (demanding unanimity), OR along
        // it (a single 1 suffices).
        let pol = match op {
            AndOr::And => felim_ferro::Polarity::Down,
            AndOr::Or => felim_ferro::Polarity::Up,
        };
        self.logic_cap.write(pol);
        self.configured = Some(op);
        self.last_function = Some(op);
        cycles
    }

    /// Evaluates the configured function over all stored bits by charge
    /// sharing — non-inverting, and destructive for the logic capacitor
    /// (it must be reconfigured before the next operation).
    ///
    /// # Panics
    ///
    /// Panics if [`Cell2Tn1C::configure`] has not been called since the
    /// last evaluation.
    pub fn evaluate(&mut self) -> (Bit, OpCost) {
        self.configured
            .take()
            .expect("2T-(n+1)C must be configured before every evaluation");
        // Charge-sharing level: mean of data polarizations, offset by the
        // logic capacitor's bias. The logic capacitor is sized for a
        // coupling weight of (n−1)/n, which places the decision level
        // between "all ones" and "one zero" (AND) or between "all zeros"
        // and "one one" (OR) for any n.
        let data_mean: f64 = self
            .data_caps
            .iter()
            .map(MfmCapacitor::polarization)
            .sum::<f64>()
            / self.n as f64;
        let logic = self.logic_cap.polarization();
        let weight = (self.n as f64 - 1.0).max(0.5) / self.n as f64;
        let level = data_mean + weight * logic;
        let bit = self.sa.compare(level);
        // The evaluation disturbs the logic capacitor (shared activation
        // at full swing) — model as a destructive read of it.
        self.logic_cap.write(felim_ferro::Polarity::Up);
        self.configured = None;
        (
            bit,
            OpCost {
                setup_cycles: 1,
                eval_cycles: 1,
            },
        )
    }

    /// Convenience: configure + evaluate, returning the result and the
    /// true total cost.
    pub fn logic(&mut self, op: AndOr, bits: &[Bit]) -> (Bit, OpCost) {
        self.write_bits(bits);
        let setup = self.configure(op);
        let (bit, cost) = self.evaluate();
        (
            bit,
            OpCost {
                setup_cycles: setup,
                eval_cycles: cost.eval_cycles,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell2tnc::{Cell2TnC, Cell2TnCParams};

    fn cell(n: usize) -> Cell2Tn1C {
        Cell2Tn1C::new(&MfmParams::scaled_45nm(), n)
    }

    fn bits2(v: u8) -> [Bit; 2] {
        [Bit::from_bool(v & 2 != 0), Bit::from_bool(v & 1 != 0)]
    }

    #[test]
    fn and_or_truth_tables() {
        let mut c = cell(2);
        for v in 0..4u8 {
            let b = bits2(v);
            let (and, _) = c.logic(AndOr::And, &b);
            assert_eq!(and, Bit::from_bool(v == 0b11), "AND {v:02b}");
            let (or, _) = c.logic(AndOr::Or, &b);
            assert_eq!(or, Bit::from_bool(v != 0), "OR {v:02b}");
        }
    }

    #[test]
    fn three_input_and_or() {
        let mut c = cell(3);
        for v in 0..8u8 {
            let b = [
                Bit::from_bool(v & 4 != 0),
                Bit::from_bool(v & 2 != 0),
                Bit::from_bool(v & 1 != 0),
            ];
            let (and, _) = c.logic(AndOr::And, &b);
            assert_eq!(and, Bit::from_bool(v == 0b111), "AND {v:03b}");
            let (or, _) = c.logic(AndOr::Or, &b);
            assert_eq!(or, Bit::from_bool(v != 0), "OR {v:03b}");
        }
    }

    #[test]
    #[should_panic(expected = "must be configured")]
    fn evaluation_requires_fresh_configuration() {
        let mut c = cell(2);
        c.write_bits(&[Bit::One, Bit::One]);
        c.configure(AndOr::And);
        let _ = c.evaluate();
        // Second evaluation without reconfiguring: the destructive
        // activation consumed the logic bias.
        let _ = c.evaluate();
    }

    #[test]
    fn per_op_setup_is_the_programming_overhead() {
        // "…although it remains complex to program": every op pays a
        // logic-capacitor write; function switches pay two.
        let mut c = cell(2);
        let (_, cost) = c.logic(AndOr::And, &[Bit::One, Bit::One]);
        assert!(cost.setup_cycles >= 1);
        c.write_bits(&[Bit::One, Bit::Zero]);
        let switch_setup = c.configure(AndOr::Or);
        assert_eq!(switch_setup, 2, "function switch reprograms twice");
        let _ = c.evaluate();
    }

    #[test]
    fn universal_logic_needs_the_2tnc_not_this_cell() {
        // The 2T-(n+1)C provides AND/OR only (non-inverting sense); the
        // paper's 2T-nC MINORITY gives NAND — functionally complete in
        // one cell. Verify the coverage difference concretely: NAND(1,1)
        // is simply not expressible here without external inversion.
        let mut old = cell(2);
        let (and_11, _) = old.logic(AndOr::And, &[Bit::One, Bit::One]);
        assert_eq!(and_11, Bit::One, "best this cell can do is AND = 1");

        let mut new = Cell2TnC::new(&Cell2TnCParams::default());
        let nand_11 =
            crate::ops::logic_in_cell(&mut new, crate::ops::LogicOp::Nand, Bit::One, Bit::One);
        assert_eq!(nand_11, Bit::Zero, "MINORITY delivers the inverted form");
    }
}
