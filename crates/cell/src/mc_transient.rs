//! Uncached Monte-Carlo campaign over transistor-level cell transients.
//!
//! Unlike the behavioural-model study in [`crate::margin`], every sample
//! here is a full Newton/MNA transient of the 2T-nC netlist with its own
//! *varied* ferroelectric device (drawn via [`felim_ferro::variation`]).
//! Because each sample's [`felim_ferro::MfmParams`] differ, the
//! content-addressed memo cache in [`crate::transients`] can never serve
//! a hit — this campaign measures (and stresses) the raw solver, which
//! is exactly why the `bench_pr4` throughput benchmark is built on it.
//!
//! Samples fan out over the scoped thread pool; sample `i` draws from a
//! generator seeded with `derive_seed(seed, i)`, so the report is
//! bit-identical for any worker count. The index-order reduction keeps
//! the aggregates deterministic too.

use crate::netlists::{
    run_with_solver, sensed_current, tba_testbench, NetlistConfig, SolverOptions,
};
use felim_ferro::{DeviceSampler, VariationSpec};
use felim_spice::SpiceError;
use serde::{Deserialize, Serialize};

/// Aggregates of an uncached Monte-Carlo transient campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McTransientReport {
    /// Cell transients simulated.
    pub samples: usize,
    /// Mean sensed RSL current over the population, in A.
    pub mean_sensed_current_a: f64,
    /// Smallest sensed RSL current, in A.
    pub min_sensed_current_a: f64,
    /// Largest sensed RSL current, in A.
    pub max_sensed_current_a: f64,
    /// Mean number of recorded time points per transient (the adaptive
    /// controller's step-count savings show up here).
    pub mean_time_points: f64,
}

/// One sampled transient, reduced in index order afterwards.
struct SampleOutcome {
    sensed_a: f64,
    time_points: usize,
}

/// Runs `samples` uncached TBA read transients, each over a freshly
/// varied device population, with the given transient-solver options.
///
/// Sample `i` pre-programs TBA pattern `i % 8` so the campaign sweeps
/// every input state class, and draws its device from a sampler seeded
/// with `derive_seed(seed, i)`.
///
/// # Errors
///
/// Propagates the first simulator failure ([`SpiceError`]) in index
/// order.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn monte_carlo_transients(
    cfg: &NetlistConfig,
    variation: VariationSpec,
    samples: usize,
    seed: u64,
    solver: &SolverOptions,
) -> Result<McTransientReport, SpiceError> {
    assert!(samples > 0, "need at least one sample");
    let _span = felim_telemetry::span("cell.monte_carlo_transients");
    felim_telemetry::counter("montecarlo.transient.samples").add(samples as u64);

    let indices: Vec<u64> = (0..samples as u64).collect();
    let outcomes = felim_exec::parallel_map(&indices, |_, &i| {
        let mut sampler =
            DeviceSampler::new(&cfg.mfm, variation, felim_exec::derive_seed(seed, i));
        let mut sample_cfg = cfg.clone();
        sample_cfg.mfm = sampler.sample();
        let mut tb = tba_testbench(&sample_cfg, (i % 8) as u8);
        let trace = run_with_solver(&mut tb, &sample_cfg, solver)?;
        let sensed_a = sensed_current(&trace, &tb.schedule)?;
        Ok(SampleOutcome {
            sensed_a,
            time_points: trace.times().len(),
        })
    });

    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut points = 0usize;
    for o in outcomes {
        let o: SampleOutcome = o?;
        sum += o.sensed_a;
        min = min.min(o.sensed_a);
        max = max.max(o.sensed_a);
        points += o.time_points;
    }
    Ok(McTransientReport {
        samples,
        mean_sensed_current_a: sum / samples as f64,
        min_sensed_current_a: min,
        max_sensed_current_a: max,
        mean_time_points: points as f64 / samples as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NetlistConfig {
        NetlistConfig::fast()
    }

    #[test]
    fn campaign_is_deterministic_and_sane() {
        let a = monte_carlo_transients(
            &cfg(),
            VariationSpec::typical(),
            4,
            21,
            &SolverOptions::default(),
        )
        .unwrap();
        let b = monte_carlo_transients(
            &cfg(),
            VariationSpec::typical(),
            4,
            21,
            &SolverOptions::default(),
        )
        .unwrap();
        assert_eq!(a, b, "same seed must reproduce bit-identically");
        assert!(a.min_sensed_current_a > 0.0);
        assert!(a.min_sensed_current_a <= a.mean_sensed_current_a);
        assert!(a.mean_sensed_current_a <= a.max_sensed_current_a);
    }

    #[test]
    fn optimized_solver_agrees_with_dense_fixed_step() {
        let dense = monte_carlo_transients(
            &cfg(),
            VariationSpec::typical(),
            4,
            33,
            &SolverOptions::default(),
        )
        .unwrap();
        let fast = monte_carlo_transients(
            &cfg(),
            VariationSpec::typical(),
            4,
            33,
            &SolverOptions::optimized(),
        )
        .unwrap();
        // The sensed currents are physics, not schedule artefacts: the
        // adaptive + modified-Newton path must land within a small
        // relative tolerance of the dense fixed-step reference...
        let rel = (fast.mean_sensed_current_a - dense.mean_sensed_current_a).abs()
            / dense.mean_sensed_current_a;
        assert!(rel < 0.05, "adaptive drifted {rel:.4} from dense reference");
        // ...while taking meaningfully fewer steps.
        assert!(
            fast.mean_time_points < 0.7 * dense.mean_time_points,
            "adaptive {} points vs dense {}",
            fast.mean_time_points,
            dense.mean_time_points
        );
    }
}

