//! Transistor-level 2T-nC testbenches (the "Spectre netlists").
//!
//! Builds full [`felim_spice::Circuit`] models of the 2T-nC cell —
//! write transistor, read transistor, n ferroelectric capacitors — and the
//! drive waveforms for the paper's two circuit experiments:
//!
//! * **Fig 3(d)** — bitwise NOT: write a bit, QNRO-read it, observe the
//!   inverted sense current while the stored state survives.
//! * **Fig 3(f)** — TBA NAND-NOR: pre-program all eight `(A,B,C)` states
//!   and observe the MINORITY-ordered RSL current levels.
//!
//! The behavioural model in [`crate::cell2tnc`] is calibrated against
//! these netlists (see the cross-validation tests at the bottom).

use felim_ferro::{MfmCapacitor, MfmParams, Polarity};
use felim_spice::{
    AdaptiveSpec, Circuit, Element, MosfetParams, NewtonPolicy, SpiceError, Trace, TransientSpec,
    Waveform,
};
use serde::{Deserialize, Serialize};

/// Configuration of the transistor-level cell testbench.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistConfig {
    /// Ferroelectric capacitor parameters. For test speed, prefer a
    /// reduced domain count ([`NetlistConfig::fast`]).
    pub mfm: MfmParams,
    /// Number of capacitors.
    pub n_caps: usize,
    /// Write transistor model.
    pub t_w: MosfetParams,
    /// Read transistor model.
    pub t_r: MosfetParams,
    /// Boosted write word-line level, in V.
    pub wwl_high_v: f64,
    /// RBL bias during reads, in V.
    pub rbl_bias_v: f64,
    /// Write pulse width, in s.
    pub write_width_s: f64,
    /// Read pulse width, in s.
    pub read_width_s: f64,
    /// Nominal transient step, in s.
    pub dt_s: f64,
    /// Storage-node parasitic capacitance, in F.
    pub sn_parasitic_f: f64,
}

impl NetlistConfig {
    /// Full-accuracy configuration (200 domains per capacitor).
    pub fn standard() -> Self {
        Self {
            mfm: MfmParams::scaled_45nm(),
            n_caps: 3,
            t_w: MosfetParams::ptm45_nmos(),
            t_r: MosfetParams::ptm45_nmos(),
            wwl_high_v: 2.4,
            rbl_bias_v: 0.7,
            write_width_s: 1.2e-6,
            read_width_s: 200e-9,
            dt_s: 10e-9,
            sn_parasitic_f: 3.0e-15,
        }
    }

    /// Reduced domain count for fast unit tests.
    pub fn fast() -> Self {
        let mut cfg = Self::standard();
        cfg.mfm.n_domains = 48;
        cfg
    }
}

/// Timing landmarks of a built testbench.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Time at which the read plateau is sampled, in s.
    pub t_sense_s: f64,
    /// Total simulation length, in s.
    pub t_stop_s: f64,
}

/// A 2T-nC testbench: the circuit plus its schedule.
#[derive(Debug)]
pub struct CellTestbench {
    /// The assembled transistor-level circuit.
    pub circuit: Circuit,
    /// Timing landmarks.
    pub schedule: Schedule,
}

/// Name of the read-transistor element (whose drain→source current is the
/// RSL current).
pub const T_R: &str = "TR";
/// Name of the write-transistor element.
pub const T_W: &str = "TW";
/// Node name of the floating storage node.
pub const SN: &str = "sn";

/// Name of ferroelectric capacitor `i`.
pub fn cap_name(i: usize) -> String {
    format!("CF{i}")
}

/// Builds the common cell skeleton with per-line waveforms.
fn build_cell(
    cfg: &NetlistConfig,
    initial: &[Polarity],
    wbl_waves: Vec<Waveform>,
    wwl: Waveform,
    wpl: Waveform,
    rbl: Waveform,
) -> Circuit {
    assert_eq!(initial.len(), cfg.n_caps, "one initial state per capacitor");
    assert_eq!(
        wbl_waves.len(),
        cfg.n_caps,
        "one WBL waveform per capacitor"
    );
    let mut ckt = Circuit::new();
    let sn = ckt.node(SN);
    let wwl_n = ckt.node("wwl");
    let wpl_n = ckt.node("wpl");
    let rbl_n = ckt.node("rbl");
    let rsl_n = ckt.node("rsl");

    ckt.add_vsource("VWWL", wwl_n, Circuit::GND, wwl);
    ckt.add_vsource("VWPL", wpl_n, Circuit::GND, wpl);
    ckt.add_vsource("VRBL", rbl_n, Circuit::GND, rbl);
    ckt.add_vsource("VRSL", rsl_n, Circuit::GND, Waveform::dc(0.0));

    for (i, wave) in wbl_waves.into_iter().enumerate() {
        let wbl = ckt.node(&format!("wbl{i}"));
        ckt.add_vsource(&format!("VWBL{i}"), wbl, Circuit::GND, wave);
        let mut p = cfg.mfm.clone();
        p.seed = p.seed.wrapping_add(i as u64);
        let mut cap = MfmCapacitor::new(&p);
        cap.write_ideal(initial[i]);
        ckt.add(&cap_name(i), Element::fe_capacitor_with_state(wbl, sn, cap));
    }

    // T_W between SN and WPL; T_R between RBL and RSL, gated by SN.
    ckt.add(T_W, Element::mosfet(sn, wwl_n, wpl_n, cfg.t_w.clone()));
    ckt.add(T_R, Element::mosfet(rbl_n, sn, rsl_n, cfg.t_r.clone()));
    ckt.add(
        "CSN",
        Element::capacitor(sn, Circuit::GND, cfg.sn_parasitic_f),
    );
    ckt.set_initial_voltage(sn, 0.0);
    ckt
}

/// Builds a QNRO read testbench: capacitors pre-programmed to `initial`,
/// the WBLs in `active` pulsed to the read voltage, T_W held off.
pub fn read_testbench(
    cfg: &NetlistConfig,
    initial: &[Polarity],
    active: &[usize],
) -> CellTestbench {
    let t0 = 50e-9;
    let v_r = cfg.mfm.read_voltage_v;
    let wbl_waves = (0..cfg.n_caps)
        .map(|i| {
            if active.contains(&i) {
                Waveform::single_pulse(v_r, t0, cfg.read_width_s)
            } else {
                Waveform::dc(0.0)
            }
        })
        .collect();
    let rbl = Waveform::single_pulse(cfg.rbl_bias_v, t0, cfg.read_width_s);
    let circuit = build_cell(
        cfg,
        initial,
        wbl_waves,
        Waveform::dc(0.0),
        Waveform::dc(0.0),
        rbl,
    );
    CellTestbench {
        circuit,
        schedule: Schedule {
            t_sense_s: t0 + 0.75 * cfg.read_width_s,
            t_stop_s: t0 + cfg.read_width_s + 100e-9,
        },
    }
}

/// Builds the Fig 3(d) NOT testbench: a full write of `bit` into
/// capacitor 0 through T_W, then a QNRO read of the same capacitor.
pub fn not_testbench(cfg: &NetlistConfig, bit: crate::Bit) -> CellTestbench {
    let vw = cfg.mfm.write_voltage_v;
    let (t_w0, w) = (50e-9, cfg.write_width_s);
    let t_read = t_w0 + w + 200e-9;

    // Write: WWL boosted on; '1' → WBL0 = +Vw, WPL = 0; '0' → WBL0 = 0,
    // WPL = +Vw (complementary rails through the target capacitor).
    let wwl = Waveform::single_pulse(cfg.wwl_high_v, t_w0 - 20e-9, w + 40e-9);
    let (wbl0, wpl) = if bit.to_bool() {
        (Waveform::single_pulse(vw, t_w0, w), Waveform::dc(0.0))
    } else {
        (Waveform::dc(0.0), Waveform::single_pulse(vw, t_w0, w))
    };
    // Read: T_W off, read pulse on WBL0 and bias on RBL.
    let v_r = cfg.mfm.read_voltage_v;
    let wbl0 = add_pulse(wbl0, v_r, t_read, cfg.read_width_s);
    let rbl = Waveform::single_pulse(cfg.rbl_bias_v, t_read, cfg.read_width_s);

    // Unselected WBLs track the plate line during the write so their
    // capacitors see zero volts — the half-select discipline behind the
    // paper's "minimizing unintended disturbances" (Fig 3(c) step 1).
    let mut wbl_waves = vec![wbl0];
    wbl_waves.resize(cfg.n_caps, wpl.clone());
    // Start from the opposite state so the write genuinely has to switch.
    let start = if bit.to_bool() {
        Polarity::Down
    } else {
        Polarity::Up
    };
    let initial = vec![start; cfg.n_caps];
    let circuit = build_cell(cfg, &initial, wbl_waves, wwl, wpl, rbl);
    CellTestbench {
        circuit,
        schedule: Schedule {
            t_sense_s: t_read + 0.75 * cfg.read_width_s,
            t_stop_s: t_read + cfg.read_width_s + 100e-9,
        },
    }
}

/// Builds the Fig 3(f) TBA testbench for the 3-bit `pattern` (bit 2 = A in
/// capacitor 0, bit 1 = B, bit 0 = C): all three WBLs pulsed together.
pub fn tba_testbench(cfg: &NetlistConfig, pattern: u8) -> CellTestbench {
    assert!(cfg.n_caps >= 3, "TBA needs n >= 3 capacitors");
    let initial: Vec<Polarity> = (0..cfg.n_caps)
        .map(|i| {
            if i < 3 {
                crate::cell2tnc::pattern_polarities(pattern)[i]
            } else {
                Polarity::Down
            }
        })
        .collect();
    read_testbench_with_initial(cfg, &initial, &[0, 1, 2])
}

fn read_testbench_with_initial(
    cfg: &NetlistConfig,
    initial: &[Polarity],
    active: &[usize],
) -> CellTestbench {
    read_testbench(cfg, initial, active)
}

/// Transient-solver options for [`run_with_solver`].
///
/// The default (`adaptive: None`, full Newton) is the dense fixed-step
/// schedule every figure golden was captured with — bit-identical to the
/// seed engine. [`SolverOptions::optimized`] turns on the LTE-controlled
/// adaptive stepping and LU-factor reuse used by the Monte-Carlo
/// campaigns, where per-sample waveforms are statistics (not goldens)
/// and throughput dominates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolverOptions {
    /// LTE-controlled adaptive stepping; `None` keeps the fixed schedule.
    pub adaptive: Option<AdaptiveSpec>,
    /// LU-factor reuse policy for the transient Newton loop.
    pub newton: NewtonPolicy,
}

impl SolverOptions {
    /// Adaptive stepping plus modified Newton — the campaign fast path.
    pub fn optimized() -> Self {
        Self {
            adaptive: Some(AdaptiveSpec::default()),
            newton: NewtonPolicy::Modified,
        }
    }

    /// The transient spec these options produce for a given schedule.
    pub fn spec(&self, t_stop_s: f64, dt_s: f64) -> TransientSpec {
        let mut spec = TransientSpec::new(t_stop_s, dt_s).with_newton(self.newton);
        if let Some(a) = self.adaptive {
            spec = spec.with_adaptive(a);
        }
        spec
    }
}

/// Runs a testbench to completion and returns the trace.
///
/// # Errors
///
/// Propagates simulator failures ([`SpiceError`]).
pub fn run(tb: &mut CellTestbench, cfg: &NetlistConfig) -> Result<Trace, SpiceError> {
    run_with_solver(tb, cfg, &SolverOptions::default())
}

/// [`run`] with explicit transient-solver options.
///
/// # Errors
///
/// Propagates simulator failures ([`SpiceError`]).
pub fn run_with_solver(
    tb: &mut CellTestbench,
    cfg: &NetlistConfig,
    solver: &SolverOptions,
) -> Result<Trace, SpiceError> {
    tb.circuit
        .transient(&solver.spec(tb.schedule.t_stop_s, cfg.dt_s))
}

/// The RSL current sampled at the sense instant.
///
/// # Errors
///
/// Returns [`SpiceError::NotFound`] if the trace lacks the read transistor.
pub fn sensed_current(trace: &Trace, schedule: &Schedule) -> Result<f64, SpiceError> {
    trace.element_current_at(T_R, schedule.t_sense_s)
}

/// Extends a waveform with an additional pulse (merging PWL corner lists).
fn add_pulse(base: Waveform, high: f64, delay_s: f64, width_s: f64) -> Waveform {
    // Render both to a PWL on a merged corner grid.
    let pulse = Waveform::single_pulse(high, delay_s, width_s);
    let mut corners: Vec<f64> = base
        .breakpoints(f64::MAX)
        .into_iter()
        .chain(pulse.breakpoints(f64::MAX))
        .collect();
    corners.push(0.0);
    corners.sort_by(|a, b| a.partial_cmp(b).unwrap());
    corners.dedup_by(|a, b| (*a - *b).abs() < 1e-15);
    let points = corners
        .into_iter()
        .map(|t| (t, base.at(t) + pulse.at(t)))
        .collect();
    Waveform::pwl(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bit;

    fn cfg() -> NetlistConfig {
        NetlistConfig::fast()
    }

    #[test]
    fn qnro_read_current_contrast_at_transistor_level() {
        let cfg = cfg();
        // Stored '0' (Down) must produce a much larger RSL current than
        // stored '1' (Up) — the circuit-level Fig 2(b) contrast.
        let mut tb0 = read_testbench(&cfg, &[Polarity::Down; 3], &[0]);
        let tr0 = run(&mut tb0, &cfg).unwrap();
        let i0 = sensed_current(&tr0, &tb0.schedule).unwrap();
        let mut tb1 = read_testbench(&cfg, &[Polarity::Up; 3], &[0]);
        let tr1 = run(&mut tb1, &cfg).unwrap();
        let i1 = sensed_current(&tr1, &tb1.schedule).unwrap();
        assert!(
            i0 > 3.0 * i1,
            "circuit-level QNRO contrast: i0 = {i0:e}, i1 = {i1:e}"
        );
    }

    #[test]
    fn storage_node_rises_more_for_stored_zero() {
        let cfg = cfg();
        let mut tb0 = read_testbench(&cfg, &[Polarity::Down; 3], &[0]);
        let tr0 = run(&mut tb0, &cfg).unwrap();
        let v0 = tr0.voltage_at(SN, tb0.schedule.t_sense_s).unwrap();
        let mut tb1 = read_testbench(&cfg, &[Polarity::Up; 3], &[0]);
        let tr1 = run(&mut tb1, &cfg).unwrap();
        let v1 = tr1.voltage_at(SN, tb1.schedule.t_sense_s).unwrap();
        assert!(v0 > v1, "V_int('0') = {v0} vs V_int('1') = {v1}");
        assert!(v0 < cfg.mfm.read_voltage_v, "passive divider bound");
    }

    #[test]
    fn not_testbench_writes_then_inverts_and_preserves_state() {
        let cfg = cfg();
        for bit in [Bit::Zero, Bit::One] {
            let mut tb = not_testbench(&cfg, bit);
            let trace = run(&mut tb, &cfg).unwrap();
            let i = sensed_current(&trace, &tb.schedule).unwrap();
            // Collect the opposite-bit current for the reference.
            let mut tb_o = not_testbench(&cfg, !bit);
            let trace_o = run(&mut tb_o, &cfg).unwrap();
            let i_o = sensed_current(&trace_o, &tb_o.schedule).unwrap();
            let reference = (i * i_o).sqrt();
            let sensed = Bit::from_bool(i > reference);
            assert_eq!(sensed, !bit, "Fig 3(d): sense must invert ({bit})");
            // State survives the read (unlike 1T-1C).
            let p = tb.circuit.fe_capacitor(&cap_name(0)).unwrap();
            assert_eq!(
                p.stored_state(0.25).map(Bit::from_polarity),
                Some(bit),
                "stored bit must remain fairly intact after readout"
            );
        }
    }

    #[test]
    fn tba_currents_follow_minority_ordering() {
        let cfg = cfg();
        let mut currents = Vec::new();
        for v in 0..8u8 {
            let mut tb = tba_testbench(&cfg, v);
            let trace = run(&mut tb, &cfg).unwrap();
            let i = sensed_current(&trace, &tb.schedule).unwrap();
            currents.push((v, i));
        }
        // Monotone in popcount: fewer ones → more current.
        for &(va, ia) in &currents {
            for &(vb, ib) in &currents {
                if va.count_ones() < vb.count_ones() {
                    assert!(
                        ia > ib,
                        "pattern {va:03b} ({ia:e}) must out-drive {vb:03b} ({ib:e})"
                    );
                }
            }
        }
        // A reference between the '001' and '011' levels separates
        // MINORITY exactly (Fig 4(j)).
        let i_001 = currents.iter().find(|(v, _)| *v == 0b001).unwrap().1;
        let i_011 = currents.iter().find(|(v, _)| *v == 0b011).unwrap().1;
        let reference = (i_001 * i_011).sqrt();
        for &(v, i) in &currents {
            let sensed = Bit::from_bool(i > reference);
            let expect = Bit::from_bool(v.count_ones() <= 1);
            assert_eq!(sensed, expect, "pattern {v:03b}");
        }
    }

    #[test]
    fn behavioural_model_matches_circuit_ordering() {
        // Cross-validation: the behavioural Cell2TnC and the transistor
        // netlist must rank the 8 TBA states identically.
        let cfg = cfg();
        let params = crate::cell2tnc::Cell2TnCParams {
            mfm: cfg.mfm.clone(),
            ..Default::default()
        };
        let behavioural: Vec<f64> = (0..8u8)
            .map(|v| {
                let mut c = crate::cell2tnc::Cell2TnC::new(&params);
                c.write_bits(&crate::cell2tnc::pattern_bits(v));
                c.sense_levels(&[0, 1, 2]).rsl_current_a
            })
            .collect();
        let circuit: Vec<f64> = (0..8u8)
            .map(|v| {
                let mut tb = tba_testbench(&cfg, v);
                let trace = run(&mut tb, &cfg).unwrap();
                sensed_current(&trace, &tb.schedule).unwrap()
            })
            .collect();
        // Patterns with equal popcount sit at disorder-level-identical
        // currents, so compare the physically meaningful ordering: every
        // lower-popcount pattern out-drives every higher-popcount one in
        // *both* models.
        for a in 0..8u8 {
            for b in 0..8u8 {
                if a.count_ones() < b.count_ones() {
                    assert!(behavioural[a as usize] > behavioural[b as usize]);
                    assert!(circuit[a as usize] > circuit[b as usize]);
                }
            }
        }
    }

    #[test]
    fn writes_do_not_disturb_unselected_capacitors() {
        // Fig 3(c) step 1: programming the selected capacitor "ensures
        // reliable data storage while minimizing unintended disturbances".
        // Write capacitor 0 while capacitors 1 and 2 hold opposite data;
        // their polarization must survive the write.
        let cfg = cfg();
        for bit in [Bit::Zero, Bit::One] {
            let mut tb = not_testbench(&cfg, bit);
            // not_testbench initialises ALL caps opposite to `bit`; caps
            // 1 and 2 are unselected bystanders through the write.
            let run_trace = run(&mut tb, &cfg).unwrap();
            let _ = run_trace;
            for idx in [1usize, 2] {
                let cap = tb.circuit.fe_capacitor(&cap_name(idx)).unwrap();
                let expect = if bit.to_bool() {
                    Polarity::Down
                } else {
                    Polarity::Up
                };
                assert_eq!(
                    cap.stored_state(0.25),
                    Some(expect),
                    "unselected cap {idx} disturbed during write of '{bit}'"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "one initial state per capacitor")]
    fn rejects_wrong_initial_count() {
        let cfg = cfg();
        let _ = read_testbench(&cfg, &[Polarity::Down], &[0]);
    }
}
