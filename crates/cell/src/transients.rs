//! Content-addressed memoization of transistor-level cell transients.
//!
//! The [`crate::netlists`] testbenches are the costliest simulations in
//! the workspace: each one is a full Newton/MNA transient over a
//! multi-domain ferroelectric stack. They are also *pure* — the trace,
//! the sensed current and the post-run capacitor states are completely
//! determined by the netlist configuration, the operation, the
//! pre-programmed state tuple and the drive-pulse spec. That makes the
//! whole run memoizable: two logically identical cell operations (same
//! key) must produce bit-identical results, so the second can be served
//! from a cache.
//!
//! The cache key mirrors that determinism argument field by field:
//!
//! * **netlist fingerprint** — a hash of the full [`NetlistConfig`]
//!   (device models, domain counts, seeds, parasitics);
//! * **operation** — which testbench, with its operands (active
//!   capacitors, written bit, TBA pattern);
//! * **stored-state tuple** — the polarities actually pre-programmed
//!   into the capacitors before the run;
//! * **pulse spec** — the drive voltages, pulse widths and timestep.
//!
//! Values depend only on their key, so the cache is deterministic under
//! any thread interleaving; concurrent access is serialized by a mutex.
//! Hits and misses are counted on the `cell.transient_hits` /
//! `cell.transient_misses` telemetry counters.

use crate::netlists::{
    cap_name, not_testbench, read_testbench, run, run_with_solver, sensed_current, tba_testbench,
    CellTestbench, NetlistConfig, Schedule, SolverOptions,
};
use crate::Bit;
use felim_ferro::Polarity;
use felim_spice::{SpiceError, Trace};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

/// A memoizable cell operation (selects the testbench and its operands).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CellOp {
    /// QNRO read of the capacitors in `active`, with every capacitor
    /// pre-programmed to the matching entry of `initial`.
    Read {
        /// Pre-programmed polarity of each capacitor.
        initial: Vec<Polarity>,
        /// Indices of the capacitors whose WBLs are pulsed.
        active: Vec<usize>,
    },
    /// Fig 3(d): full write of `bit` into capacitor 0, then a QNRO read.
    Not {
        /// The bit written (the sense output is its inverse).
        bit: Bit,
    },
    /// Fig 3(f): TBA over the 3-bit `pattern` (bit 2 = A, … bit 0 = C).
    Tba {
        /// The `(A, B, C)` pattern pre-programmed into capacitors 0–2.
        pattern: u8,
    },
}

impl CellOp {
    fn build(&self, cfg: &NetlistConfig) -> CellTestbench {
        match self {
            Self::Read { initial, active } => read_testbench(cfg, initial, active),
            Self::Not { bit } => not_testbench(cfg, *bit),
            Self::Tba { pattern } => tba_testbench(cfg, *pattern),
        }
    }
}

/// Everything a consumer can observe from a cell transient: the full
/// trace, the timing landmarks, the sensed RSL current and the
/// capacitor states after the run (the circuit object itself is not
/// retained — on a cache hit no circuit is ever simulated).
#[derive(Debug, Clone)]
pub struct TransientOutcome {
    /// Timing landmarks of the testbench.
    pub schedule: Schedule,
    /// The full recorded waveform set.
    pub trace: Trace,
    /// RSL current at the sense instant, in A.
    pub sensed_current_a: f64,
    /// Normalized polarization of each capacitor after the run.
    pub final_polarizations: Vec<f64>,
    /// Stored state of each capacitor after the run, at the 0.25
    /// normalized-polarization margin used throughout the tests.
    pub final_states: Vec<Option<Polarity>>,
}

/// The stored-state margin used for [`TransientOutcome::final_states`].
const STATE_MARGIN: f64 = 0.25;

/// Fingerprints the full netlist configuration. The `Debug` rendering
/// covers every field recursively (floats print in shortest round-trip
/// form, which is injective), so two configs collide only if they are
/// field-for-field identical. Hashing uses the workspace-shared FNV-1a
/// in [`felim_exec::hash`] — the same digest family the service layer
/// keys its read cache on.
fn netlist_fingerprint(cfg: &NetlistConfig) -> u64 {
    let mut repr = String::new();
    let _ = write!(repr, "{cfg:?}");
    felim_exec::hash::fnv1a_str(&repr)
}

/// The drive-pulse spec portion of the key: every voltage level, pulse
/// width and the integration timestep, bit-exact.
fn pulse_spec(cfg: &NetlistConfig) -> [u64; 7] {
    [
        cfg.write_width_s.to_bits(),
        cfg.read_width_s.to_bits(),
        cfg.dt_s.to_bits(),
        cfg.wwl_high_v.to_bits(),
        cfg.rbl_bias_v.to_bits(),
        cfg.mfm.read_voltage_v.to_bits(),
        cfg.mfm.write_voltage_v.to_bits(),
    ]
}

#[derive(PartialEq, Eq, Hash)]
struct Key {
    netlist_fp: u64,
    op: CellOp,
    initial: Vec<Option<Polarity>>,
    pulse: [u64; 7],
}

/// Bound on cached transients. An outcome holds a full trace (tens of
/// KiB at test resolution); the workspace-wide working set is the 8 TBA
/// patterns plus a handful of NOT/read variants per config, so a small
/// cap already captures every realistic reuse while bounding memory.
const TRANSIENT_CACHE_CAP: usize = 256;

fn transient_cache() -> &'static Mutex<HashMap<Key, Arc<TransientOutcome>>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, Arc<TransientOutcome>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn capacitor_states(tb: &CellTestbench, n_caps: usize) -> Vec<Option<Polarity>> {
    (0..n_caps)
        .map(|i| {
            tb.circuit
                .fe_capacitor(&cap_name(i))
                .and_then(|c| c.stored_state(STATE_MARGIN))
        })
        .collect()
}

/// Runs (or replays) a cell transient.
///
/// Builds the testbench for `op`, forms the content-addressed key and
/// returns the cached [`TransientOutcome`] on a hit; on a miss the
/// transient is simulated once, its observable results captured, and the
/// outcome inserted for every later logically identical operation.
///
/// # Errors
///
/// Propagates simulator failures ([`SpiceError`]) from the underlying
/// transient. Failed runs are never cached.
pub fn simulate(cfg: &NetlistConfig, op: &CellOp) -> Result<Arc<TransientOutcome>, SpiceError> {
    // Building the circuit is the cheap part (no solving); it also yields
    // the pre-programmed state tuple without duplicating builder logic.
    let mut tb = op.build(cfg);
    let key = Key {
        netlist_fp: netlist_fingerprint(cfg),
        op: op.clone(),
        initial: capacitor_states(&tb, cfg.n_caps),
        pulse: pulse_spec(cfg),
    };
    {
        let cache = transient_cache()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(hit) = cache.get(&key) {
            felim_telemetry::counter("cell.transient_hits").inc();
            return Ok(Arc::clone(hit));
        }
    }
    felim_telemetry::counter("cell.transient_misses").inc();
    let trace = run(&mut tb, cfg)?;
    let outcome = Arc::new(capture(&tb, cfg, trace)?);
    let mut cache = transient_cache()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if cache.len() < TRANSIENT_CACHE_CAP {
        cache.insert(key, Arc::clone(&outcome));
    }
    Ok(outcome)
}

/// Runs a cell transient with explicit transient-solver options.
///
/// With the default options this is exactly [`simulate`] — cached, and
/// bit-identical to the seed engine. Non-default options (the adaptive /
/// modified-Newton fast path of [`SolverOptions::optimized`]) change the
/// recorded step schedule, so those runs bypass the content-addressed
/// cache entirely rather than poison it with solver-dependent traces.
///
/// # Errors
///
/// Propagates simulator failures ([`SpiceError`]) from the underlying
/// transient.
pub fn simulate_with_solver(
    cfg: &NetlistConfig,
    op: &CellOp,
    solver: &SolverOptions,
) -> Result<Arc<TransientOutcome>, SpiceError> {
    if *solver == SolverOptions::default() {
        return simulate(cfg, op);
    }
    let mut tb = op.build(cfg);
    let trace = run_with_solver(&mut tb, cfg, solver)?;
    Ok(Arc::new(capture(&tb, cfg, trace)?))
}

/// Captures everything observable from a finished run into an outcome.
fn capture(
    tb: &CellTestbench,
    cfg: &NetlistConfig,
    trace: Trace,
) -> Result<TransientOutcome, SpiceError> {
    let sensed_current_a = sensed_current(&trace, &tb.schedule)?;
    let final_polarizations = (0..cfg.n_caps)
        .map(|i| {
            tb.circuit
                .fe_capacitor(&cap_name(i))
                .map_or(0.0, felim_ferro::MfmCapacitor::polarization)
        })
        .collect();
    Ok(TransientOutcome {
        schedule: tb.schedule,
        trace,
        sensed_current_a,
        final_polarizations,
        final_states: capacitor_states(tb, cfg.n_caps),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> NetlistConfig {
        NetlistConfig::fast()
    }

    /// Uncached reference: build + run the same testbench directly.
    fn fresh(cfg: &NetlistConfig, op: &CellOp) -> (Trace, Schedule, f64, Vec<f64>) {
        let mut tb = op.build(cfg);
        let trace = run(&mut tb, cfg).unwrap();
        let i = sensed_current(&trace, &tb.schedule).unwrap();
        let pols = (0..cfg.n_caps)
            .map(|k| tb.circuit.fe_capacitor(&cap_name(k)).unwrap().polarization())
            .collect();
        (trace, tb.schedule, i, pols)
    }

    fn assert_outcome_matches_fresh(cfg: &NetlistConfig, op: &CellOp) {
        let memo = simulate(cfg, op).unwrap();
        let (trace, schedule, i, pols) = fresh(cfg, op);
        assert_eq!(memo.schedule, schedule);
        assert_eq!(memo.sensed_current_a.to_bits(), i.to_bits(), "{op:?}");
        assert_eq!(memo.trace.times(), trace.times(), "{op:?}");
        for (a, b) in memo.final_polarizations.iter().zip(&pols) {
            assert_eq!(a.to_bits(), b.to_bits(), "{op:?}");
        }
    }

    #[test]
    fn hit_returns_the_identical_outcome() {
        let cfg = cfg();
        let op = CellOp::Tba { pattern: 0b010 };
        let first = simulate(&cfg, &op).unwrap();
        let second = simulate(&cfg, &op).unwrap();
        // A hit shares the allocation — the strongest form of
        // "bit-identical".
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn distinct_operations_do_not_collide() {
        let cfg = cfg();
        let a = simulate(&cfg, &CellOp::Tba { pattern: 0b000 }).unwrap();
        let b = simulate(&cfg, &CellOp::Tba { pattern: 0b111 }).unwrap();
        assert!(a.sensed_current_a > b.sensed_current_a);
        // A config change (different domain count) must miss as well.
        let mut other = cfg.clone();
        other.mfm.n_domains += 1;
        let c = simulate(&other, &CellOp::Tba { pattern: 0b000 }).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn not_outcome_preserves_written_state() {
        let cfg = cfg();
        for bit in [Bit::Zero, Bit::One] {
            let memo = simulate(&cfg, &CellOp::Not { bit }).unwrap();
            assert_eq!(
                memo.final_states[0].map(Bit::from_polarity),
                Some(bit),
                "stored bit must survive the memoized readout"
            );
        }
    }

    #[test]
    fn solver_aware_entry_point_agrees_and_keeps_the_cache_clean() {
        let cfg = cfg();
        let op = CellOp::Tba { pattern: 0b101 };
        // Default options route through the memo cache: same allocation.
        let cached = simulate(&cfg, &op).unwrap();
        let via_solver = simulate_with_solver(&cfg, &op, &SolverOptions::default()).unwrap();
        assert!(Arc::ptr_eq(&cached, &via_solver));
        // The optimized path is uncached (its trace depends on the
        // solver options, which the cache key does not encode) but must
        // agree on the physically meaningful readout.
        let fast = simulate_with_solver(&cfg, &op, &SolverOptions::optimized()).unwrap();
        assert!(!Arc::ptr_eq(&cached, &fast));
        let tol = 0.05 * cached.sensed_current_a.abs() + 1e-15;
        assert!(
            (fast.sensed_current_a - cached.sensed_current_a).abs() <= tol,
            "optimized {:e} vs dense {:e}",
            fast.sensed_current_a,
            cached.sensed_current_a,
        );
        // And it must not have poisoned the cache for the default path.
        let again = simulate(&cfg, &op).unwrap();
        assert!(Arc::ptr_eq(&cached, &again));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The memoized result of every reachable operation is
        /// bit-identical to an uncached re-simulation — whether the
        /// memoized call was the miss that populated the cache or a
        /// replay of an earlier one.
        #[test]
        fn memoized_matches_uncached(selector in 0u8..13) {
            let cfg = cfg();
            let op = match selector {
                0..=7 => CellOp::Tba { pattern: selector },
                8 => CellOp::Not { bit: Bit::Zero },
                9 => CellOp::Not { bit: Bit::One },
                10 => CellOp::Read {
                    initial: vec![Polarity::Down; 3],
                    active: vec![0],
                },
                11 => CellOp::Read {
                    initial: vec![Polarity::Up; 3],
                    active: vec![0],
                },
                _ => CellOp::Read {
                    initial: vec![Polarity::Down, Polarity::Up, Polarity::Down],
                    active: vec![0, 1, 2],
                },
            };
            assert_outcome_matches_fresh(&cfg, &op);
        }
    }
}
