//! 1T-1C DRAM cell and Ambit-style in-DRAM logic primitives.
//!
//! The DRAM baseline of the paper (Fig 1, Fig 2(a) context): volatile
//! charge storage with leakage, destructive charge-sharing reads that
//! require restore, triple-row-activation (TRA) MAJORITY logic
//! (Seshadri et al., Ambit) and dual-contact-cell (DCC) NOT.

use crate::Bit;
use serde::{Deserialize, Serialize};

/// Electrical parameters of the DRAM cell and bitline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramParams {
    /// Supply voltage in V.
    pub vdd: f64,
    /// Cell capacitance in F.
    pub c_cell_f: f64,
    /// Bitline capacitance in F.
    pub c_bitline_f: f64,
    /// Retention time constant in s (leakage decay toward 0).
    pub retention_tau_s: f64,
    /// Refresh interval in s (64 ms in the paper's model).
    pub refresh_interval_s: f64,
}

impl Default for DramParams {
    fn default() -> Self {
        Self {
            vdd: 1.2,
            c_cell_f: 20e-15,
            c_bitline_f: 100e-15,
            retention_tau_s: 2.0,
            refresh_interval_s: 64e-3,
        }
    }
}

/// A single 1T-1C DRAM cell.
///
/// ```
/// use felim_cell::{Bit, dram::{DramCell, DramParams}};
/// let p = DramParams::default();
/// let mut cell = DramCell::new(&p);
/// cell.write(Bit::One);
/// let (read, _dv) = cell.read();
/// assert_eq!(read, Bit::One);
/// // The read destroyed the stored charge — a restore is mandatory.
/// assert!(cell.needs_restore());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DramCell {
    params: DramParams,
    /// Stored cell voltage in V.
    v_cell: f64,
    /// Time since the cell was last written/restored, in s.
    age_s: f64,
    needs_restore: bool,
}

impl DramCell {
    /// A fresh cell storing `0`.
    pub fn new(params: &DramParams) -> Self {
        Self {
            params: *params,
            v_cell: 0.0,
            age_s: 0.0,
            needs_restore: false,
        }
    }

    /// The stored cell voltage in V.
    pub fn cell_voltage(&self) -> f64 {
        self.v_cell
    }

    /// Writes a full level and resets leakage age.
    pub fn write(&mut self, bit: Bit) {
        self.v_cell = if bit.to_bool() { self.params.vdd } else { 0.0 };
        self.age_s = 0.0;
        self.needs_restore = false;
    }

    /// Advances wall-clock time: the stored high level leaks toward 0.
    pub fn elapse(&mut self, dt_s: f64) {
        assert!(dt_s >= 0.0, "time must advance forward");
        self.v_cell *= (-dt_s / self.params.retention_tau_s).exp();
        self.age_s += dt_s;
    }

    /// Destructive charge-sharing read: the cell dumps onto the
    /// half-VDD-precharged bitline. Returns the sensed bit and the bitline
    /// deviation ΔV the sense amp saw. The cell is left at the shared
    /// level and flagged for restore.
    pub fn read(&mut self) -> (Bit, f64) {
        let p = &self.params;
        let v_pre = p.vdd / 2.0;
        let v_shared =
            (p.c_cell_f * self.v_cell + p.c_bitline_f * v_pre) / (p.c_cell_f + p.c_bitline_f);
        let dv = v_shared - v_pre;
        let bit = Bit::from_bool(dv > 0.0);
        self.v_cell = v_shared;
        self.needs_restore = true;
        (bit, dv)
    }

    /// Does the cell hold a degraded level that must be rewritten?
    pub fn needs_restore(&self) -> bool {
        self.needs_restore
    }

    /// Restores the cell to the full level of `bit` (the SA-driven
    /// write-back that follows every activation).
    pub fn restore(&mut self, bit: Bit) {
        self.write(bit);
    }

    /// Would the stored bit still read correctly after `dt_s` seconds
    /// without refresh? (Sense threshold at VDD/2 for a stored `1`.)
    pub fn survives_unrefreshed(&self, bit: Bit, dt_s: f64) -> bool {
        match bit {
            Bit::Zero => true,
            Bit::One => {
                let v = self.params.vdd * (-dt_s / self.params.retention_tau_s).exp();
                v > self.params.vdd / 2.0
            }
        }
    }
}

/// Triple-row activation: three cells dump onto one bitline; the SA
/// resolves the MAJORITY and (destructively) overwrites all three cells
/// with the result — exactly Ambit's TRA semantics.
///
/// Returns the majority bit.
pub fn triple_row_activation(cells: &mut [DramCell; 3]) -> Bit {
    let p = cells[0].params;
    let v_pre = p.vdd / 2.0;
    let q_cells: f64 = cells.iter().map(|c| c.v_cell * p.c_cell_f).sum();
    let c_total = 3.0 * p.c_cell_f + p.c_bitline_f;
    let v_shared = (q_cells + p.c_bitline_f * v_pre) / c_total;
    let bit = Bit::from_bool(v_shared > v_pre);
    // The SA drives the bitline (and all three connected cells) full-rail.
    for c in cells.iter_mut() {
        c.write(bit);
    }
    bit
}

/// Dual-contact-cell NOT: the DCC exposes the complemented plate of the
/// source cell to the bitline, so a read of `src` senses `!src` — the
/// external-circuit trick 1T-1C DRAM needs for inversion (the 2T-nC cell
/// gets this for free from QNRO).
pub fn dcc_not(src: &mut DramCell) -> Bit {
    let (bit, _) = src.read();
    !bit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::majority;

    fn cell() -> DramCell {
        DramCell::new(&DramParams::default())
    }

    #[test]
    fn write_read_roundtrip() {
        let mut c = cell();
        for bit in [Bit::Zero, Bit::One] {
            c.write(bit);
            let (read, dv) = c.read();
            assert_eq!(read, bit);
            assert!(dv.abs() > 0.01, "sense swing too small: {dv}");
            c.restore(read);
        }
    }

    #[test]
    fn read_is_destructive() {
        let mut c = cell();
        c.write(Bit::One);
        let v_before = c.cell_voltage();
        let _ = c.read();
        // Charge sharing collapses the full level toward the half-VDD
        // precharge: (C_cell·VDD + C_bl·VDD/2)/(C_cell + C_bl) = 0.7 V.
        assert!(c.cell_voltage() < 0.75, "cell level collapsed");
        assert!(c.cell_voltage() > 0.6);
        assert!(c.cell_voltage() < v_before);
        assert!(c.needs_restore());
        c.restore(Bit::One);
        assert!(!c.needs_restore());
        assert_eq!(c.cell_voltage(), 1.2);
    }

    #[test]
    fn leakage_decays_stored_one() {
        let mut c = cell();
        c.write(Bit::One);
        c.elapse(0.5);
        assert!(c.cell_voltage() < 1.2);
        assert!(c.cell_voltage() > 0.8);
        // Within the 64 ms refresh interval the bit is always safe.
        assert!(c.survives_unrefreshed(Bit::One, 64e-3));
        // Without refresh for many seconds it is not.
        assert!(!c.survives_unrefreshed(Bit::One, 10.0));
        assert!(c.survives_unrefreshed(Bit::Zero, 1e9));
    }

    #[test]
    fn tra_majority_exhaustive() {
        for v in 0..8u8 {
            let bits = [
                Bit::from_bool(v & 4 != 0),
                Bit::from_bool(v & 2 != 0),
                Bit::from_bool(v & 1 != 0),
            ];
            let mut cells = [cell(), cell(), cell()];
            for (c, b) in cells.iter_mut().zip(bits) {
                c.write(b);
            }
            let out = triple_row_activation(&mut cells);
            assert_eq!(out, majority(bits[0], bits[1], bits[2]), "pattern {v:03b}");
            // TRA destroys the three operands — all now hold the result.
            for c in &mut cells {
                let (b, _) = c.read();
                assert_eq!(b, out);
            }
        }
    }

    #[test]
    fn tra_with_leaked_cells_still_resolves() {
        // Mild leakage must not flip the majority.
        let mut cells = [cell(), cell(), cell()];
        cells[0].write(Bit::One);
        cells[1].write(Bit::One);
        cells[2].write(Bit::Zero);
        for c in &mut cells {
            c.elapse(10e-3);
        }
        assert_eq!(triple_row_activation(&mut cells), Bit::One);
    }

    #[test]
    fn dcc_not_inverts() {
        for bit in [Bit::Zero, Bit::One] {
            let mut c = cell();
            c.write(bit);
            assert_eq!(dcc_not(&mut c), !bit);
            assert!(c.needs_restore(), "DCC read is still destructive");
        }
    }

    #[test]
    #[should_panic(expected = "time must advance")]
    fn rejects_negative_time() {
        cell().elapse(-1.0);
    }
}
