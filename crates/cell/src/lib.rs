//! # felim-cell — memory cell library
//!
//! Cell-level models of the three memory technologies the paper compares
//! (Fig 1), built on the [`felim_ferro`] device physics and validated with
//! the [`felim_spice`] circuit simulator:
//!
//! * [`dram`] — 1T-1C DRAM: destructive charge-sharing reads, leakage and
//!   refresh, triple-row-activation (TRA) MAJORITY logic, dual-contact-cell
//!   (DCC) NOT (Ambit-style).
//! * [`feram1t1c`] — 1T-1C FeRAM: non-volatile but destructive reads that
//!   fully reverse the polarization and force a write-back.
//! * [`cell2tnc`] — the paper's 2T-nC FeRAM gain cell: decoupled
//!   read/write paths, quasi-nondestructive readout (QNRO) that *inverts*
//!   on sensing, and triple-bit-activation (TBA) implementing the
//!   MINORITY function for universal NAND/NOR in a single cell.
//! * [`cell2tn1c`] — the prior 2T-(n+1)C AND-OR cell (Xiao et al.), the
//!   related-work baseline whose per-operation logic-capacitor
//!   programming the paper's scheme eliminates.
//!
//! [`ops`] exposes the cell-level logic operations (NOT, MINORITY, NAND,
//! NOR) with exhaustive truth-table guarantees, and [`netlists`] builds the
//! full transistor-level testbenches used to regenerate Fig 3(d) and
//! Fig 3(f).
//!
//! ## Quickstart — universal logic in one cell
//!
//! ```
//! use felim_cell::{Bit, cell2tnc::{Cell2TnC, Cell2TnCParams}};
//!
//! let mut cell = Cell2TnC::new(&Cell2TnCParams::default());
//! // NAND via MINORITY with control bit C = 0:
//! cell.write_bits(&[Bit::One, Bit::One, Bit::Zero]);
//! assert_eq!(cell.tba().sensed, Bit::Zero); // 1 NAND 1 = 0
//! // NOR via MINORITY with control bit C = 1:
//! cell.write_bits(&[Bit::Zero, Bit::One, Bit::One]);
//! assert_eq!(cell.tba().sensed, Bit::Zero); // 0 NOR 1 = 0
//! ```
//!
//! See [`ops`] for the full NAND/NOR truth tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell2tn1c;
pub mod cell2tnc;
pub mod dram;
pub mod dram_netlist;
pub mod feram1t1c;
pub mod margin;
pub mod mc_transient;
pub mod netlists;
pub mod ops;
pub mod senseamp;
pub mod transients;

pub use cell2tnc::{Cell2TnC, Cell2TnCParams, SenseLevels};
pub use margin::{monte_carlo_margin, MarginReport};
pub use mc_transient::{monte_carlo_transients, McTransientReport};
pub use transients::{simulate, simulate_with_solver, CellOp, TransientOutcome};
pub use senseamp::SenseAmp;

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Not;

/// A logical bit stored in or produced by a memory cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Bit {
    /// Logical 0 — negative remanent polarization in FeRAM cells.
    Zero,
    /// Logical 1 — positive remanent polarization in FeRAM cells.
    One,
}

impl Bit {
    /// Converts from `bool` (`true` → [`Bit::One`]).
    pub fn from_bool(b: bool) -> Self {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// Converts to `bool` ([`Bit::One`] → `true`).
    pub fn to_bool(self) -> bool {
        self == Bit::One
    }

    /// The ferroelectric polarity encoding this bit (paper convention:
    /// `'1'` ↔ positive polarization).
    pub fn polarity(self) -> felim_ferro::Polarity {
        felim_ferro::Polarity::from_bit(self.to_bool())
    }

    /// Decodes a polarity back to a bit.
    pub fn from_polarity(p: felim_ferro::Polarity) -> Self {
        Self::from_bool(p.to_bit())
    }
}

impl Not for Bit {
    type Output = Bit;
    fn not(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
        }
    }
}

impl From<bool> for Bit {
    fn from(b: bool) -> Self {
        Bit::from_bool(b)
    }
}

impl From<Bit> for bool {
    fn from(b: Bit) -> Self {
        b.to_bool()
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bit::Zero => write!(f, "0"),
            Bit::One => write!(f, "1"),
        }
    }
}

/// The MINORITY function of three bits: `1` iff at most one input is `1`.
///
/// The paper's formulation: `MIN(A,B,C) = NOT(C·(A+B)) + NOT(C)·(A·B)`…
/// which reduces to the complement of the majority. With the control bit
/// `C` this yields NAND (`C = 0`) and NOR (`C = 1`) of `A` and `B`.
///
/// ```
/// use felim_cell::{minority, Bit};
/// assert_eq!(minority(Bit::One, Bit::One, Bit::Zero), Bit::Zero); // NAND(1,1)
/// assert_eq!(minority(Bit::Zero, Bit::Zero, Bit::Zero), Bit::One);
/// ```
pub fn minority(a: Bit, b: Bit, c: Bit) -> Bit {
    let ones = a.to_bool() as u8 + b.to_bool() as u8 + c.to_bool() as u8;
    Bit::from_bool(ones <= 1)
}

/// The MAJORITY function of three bits: `1` iff at least two inputs are `1`
/// (the DRAM TRA primitive of Ambit).
///
/// ```
/// use felim_cell::{majority, Bit};
/// assert_eq!(majority(Bit::One, Bit::One, Bit::Zero), Bit::One);
/// assert_eq!(majority(Bit::Zero, Bit::One, Bit::Zero), Bit::Zero);
/// ```
pub fn majority(a: Bit, b: Bit, c: Bit) -> Bit {
    !minority(a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits3(v: u8) -> (Bit, Bit, Bit) {
        (
            Bit::from_bool(v & 4 != 0),
            Bit::from_bool(v & 2 != 0),
            Bit::from_bool(v & 1 != 0),
        )
    }

    #[test]
    fn bit_conversions_roundtrip() {
        for b in [Bit::Zero, Bit::One] {
            assert_eq!(Bit::from_bool(b.to_bool()), b);
            assert_eq!(Bit::from_polarity(b.polarity()), b);
            assert_eq!(!!b, b);
        }
        assert_eq!(Bit::from(true), Bit::One);
        assert!(bool::from(Bit::One));
        assert_eq!(Bit::Zero.to_string(), "0");
        assert_eq!(Bit::One.to_string(), "1");
    }

    #[test]
    fn minority_truth_table_exhaustive() {
        // MIN = 1 iff popcount(ones) <= 1 — all 8 states of Fig 3(e).
        for v in 0..8u8 {
            let (a, b, c) = bits3(v);
            let expect = Bit::from_bool(v.count_ones() <= 1);
            assert_eq!(minority(a, b, c), expect, "pattern {v:03b}");
        }
    }

    #[test]
    fn majority_is_complement_of_minority() {
        for v in 0..8u8 {
            let (a, b, c) = bits3(v);
            assert_eq!(majority(a, b, c), !minority(a, b, c));
        }
    }

    #[test]
    fn minority_matches_paper_formula() {
        // MIN(A,B,C) = NOT(C·(A+B)) AND NOT( NOT(C)·(A·B) )… the paper's
        // expression written with the majority complement: verify against
        // the boolean identity MIN = !MAJ = !(AB + BC + CA).
        for v in 0..8u8 {
            let (a, b, c) = bits3(v);
            let ones = [a, b, c].iter().filter(|x| x.to_bool()).count();
            let maj = ones >= 2;
            assert_eq!(minority(a, b, c), Bit::from_bool(!maj));
        }
    }
}
