//! Monte-Carlo sense-margin and yield analysis.
//!
//! The single-reference MINORITY scheme lives or dies by the separation
//! between the popcount-1 and popcount-2 current levels across device-to-
//! device variation and sense-amplifier offset. This module samples
//! varied cell populations (via [`felim_ferro::variation`]) and reports
//! the margin distribution and the read/TBA yield — the quantitative
//! backing for the paper's "robust reliability" claim.

use crate::cell2tnc::{pattern_bits, Cell2TnC, Cell2TnCParams};
use crate::senseamp::SenseAmp;
use crate::Bit;
use felim_ferro::{DeviceSampler, VariationSpec};
use serde::{Deserialize, Serialize};

/// Result of a Monte-Carlo margin study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarginReport {
    /// Cells sampled.
    pub samples: usize,
    /// Fraction of cells whose TBA decides all 8 patterns correctly.
    pub tba_yield: f64,
    /// Fraction of cells whose single-capacitor NOT reads correctly for
    /// both stored values.
    pub not_yield: f64,
    /// Worst-case ratio I(popcount 1) / I(popcount 2) over the
    /// population (must stay > 1 for a shared reference to exist).
    pub worst_level_separation: f64,
    /// Mean of the same ratio.
    pub mean_level_separation: f64,
}

impl MarginReport {
    /// The architecture-level transient sense-failure rate the study
    /// implies: the failure probability of the *worse* of the TBA and
    /// single-capacitor NOT decisions. Fault-injection campaigns
    /// (`felim-arch::fault`) sample per-bit sense faults at this rate.
    pub fn sense_failure_rate(&self) -> f64 {
        (1.0 - self.tba_yield.min(self.not_yield)).clamp(0.0, 1.0)
    }
}

/// Outcome of one sampled cell, reduced in index order afterwards.
struct SampleOutcome {
    tba_ok: bool,
    not_ok: bool,
    sep: f64,
}

/// Monte-Carlo margin analysis over `samples` varied cells.
///
/// Each sampled cell uses devices drawn with `variation`; the sense
/// amplifier carries a per-cell random offset of `sa_offset_sigma`
/// (relative to the cell's own reference). The *shared global reference*
/// case is modelled by reusing the nominal cell's reference for every
/// sampled cell — the pessimistic deployment the paper's row-wise scheme
/// implies.
///
/// Samples fan out over the scoped thread pool: sample `i` draws from its
/// own generators seeded with `derive_seed(seed, i)` (device stream) and
/// `derive_seed(seed ^ 0x5a, i)` (SA-offset stream), so every sample
/// depends only on its index and the report is bit-identical for any
/// worker count, serial included. The scalar reduction runs in index
/// order for the same reason.
pub fn monte_carlo_margin(
    params: &Cell2TnCParams,
    variation: VariationSpec,
    sa_offset_sigma: f64,
    samples: usize,
    seed: u64,
) -> MarginReport {
    assert!(samples > 0, "need at least one sample");
    let _span = felim_telemetry::span("cell.monte_carlo_margin");
    felim_telemetry::counter("montecarlo.cell.samples").add(samples as u64);
    let nominal = Cell2TnC::new(params);
    let global_tba_ref = nominal.tba_reference();
    let global_not_ref = nominal.not_reference();

    let indices: Vec<u64> = (0..samples as u64).collect();
    let outcomes = felim_exec::parallel_map(&indices, |_, &i| {
        let mut sampler =
            DeviceSampler::new(&params.mfm, variation, felim_exec::derive_seed(seed, i));
        // Deterministic gaussian offsets from a second per-sample stream.
        let mut offset_stream = DeviceSampler::new(
            &params.mfm,
            VariationSpec::typical(),
            felim_exec::derive_seed(seed ^ 0x5a, i),
        );
        let mut cell_params = params.clone();
        cell_params.mfm = sampler.sample();
        let mut cell = Cell2TnC::new(&cell_params);
        // SA offset as a lognormal multiplier on the reference (keeps the
        // comparator current positive).
        let offset_mul = offset_stream.sample().vc_mean_v / params.mfm.vc_mean_v; // reuse the sampled ratio as a unitless draw
        let offset_mul = offset_mul.powf(sa_offset_sigma / 0.04);
        let tba_sa = SenseAmp::new(global_tba_ref * offset_mul);
        let not_sa = SenseAmp::new(global_not_ref * offset_mul);

        // TBA across all 8 patterns.
        let mut ok = true;
        let mut i_pop1 = f64::INFINITY;
        let mut i_pop2: f64 = 0.0;
        for v in 0..8u8 {
            cell.write_bits(&pattern_bits(v));
            let i = cell.sense_levels(&[0, 1, 2]).rsl_current_a;
            let sensed = tba_sa.compare(i);
            if sensed != Bit::from_bool(v.count_ones() <= 1) {
                ok = false;
            }
            match v.count_ones() {
                1 => i_pop1 = i_pop1.min(i),
                2 => i_pop2 = i_pop2.max(i),
                _ => {}
            }
        }

        // Single-capacitor NOT for both stored values.
        cell.write(0, Bit::Zero);
        let r0 = not_sa.compare(cell.sense_levels(&[0]).rsl_current_a);
        cell.write(0, Bit::One);
        let r1 = not_sa.compare(cell.sense_levels(&[0]).rsl_current_a);

        SampleOutcome {
            tba_ok: ok,
            not_ok: r0 == Bit::One && r1 == Bit::Zero,
            sep: i_pop1 / i_pop2,
        }
    });

    let mut tba_pass = 0usize;
    let mut not_pass = 0usize;
    let mut worst_sep = f64::INFINITY;
    let mut sep_sum = 0.0;
    for o in &outcomes {
        tba_pass += usize::from(o.tba_ok);
        not_pass += usize::from(o.not_ok);
        worst_sep = worst_sep.min(o.sep);
        sep_sum += o.sep;
    }

    MarginReport {
        samples,
        tba_yield: tba_pass as f64 / samples as f64,
        not_yield: not_pass as f64 / samples as f64,
        worst_level_separation: worst_sep,
        mean_level_separation: sep_sum / samples as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_population_has_full_yield() {
        let report = monte_carlo_margin(
            &Cell2TnCParams::default(),
            VariationSpec::typical(),
            0.0,
            40,
            11,
        );
        assert_eq!(report.samples, 40);
        assert!(
            report.tba_yield > 0.95,
            "typical-corner TBA yield {}",
            report.tba_yield
        );
        assert!(report.not_yield > 0.95, "NOT yield {}", report.not_yield);
        assert!(report.worst_level_separation > 1.0);
        assert!(report.mean_level_separation >= report.worst_level_separation);
    }

    #[test]
    fn pessimistic_corner_degrades_but_does_not_collapse() {
        let typical = monte_carlo_margin(
            &Cell2TnCParams::default(),
            VariationSpec::typical(),
            0.0,
            30,
            13,
        );
        let pessimistic = monte_carlo_margin(
            &Cell2TnCParams::default(),
            VariationSpec::pessimistic(),
            0.04,
            30,
            13,
        );
        assert!(pessimistic.worst_level_separation <= typical.worst_level_separation);
        assert!(pessimistic.tba_yield > 0.5, "pessimistic yield collapsed");
    }

    #[test]
    fn offset_hurts_yield_monotonically_in_expectation() {
        let clean = monte_carlo_margin(
            &Cell2TnCParams::default(),
            VariationSpec::typical(),
            0.0,
            30,
            17,
        );
        let offset = monte_carlo_margin(
            &Cell2TnCParams::default(),
            VariationSpec::typical(),
            0.3,
            30,
            17,
        );
        assert!(offset.tba_yield <= clean.tba_yield);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_empty_study() {
        let _ = monte_carlo_margin(
            &Cell2TnCParams::default(),
            VariationSpec::typical(),
            0.0,
            0,
            1,
        );
    }
}
