//! Cell-level logic operations: NOT, MINORITY, NAND, NOR.
//!
//! These wrap the raw [`Cell2TnC`] primitives with the paper's operand
//! conventions: operands A and B live in capacitors 0 and 1, the control
//! bit C in capacitor 2; `C = 0` turns TBA into NAND, `C = 1` into NOR
//! (Fig 3(e)).

use crate::cell2tnc::Cell2TnC;
use crate::Bit;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two universal operations TBA provides, selected by the control bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogicOp {
    /// `NOT(A AND B)` — control bit `C = 0`.
    Nand,
    /// `NOT(A OR B)` — control bit `C = 1`.
    Nor,
}

impl LogicOp {
    /// The control bit that configures this operation.
    pub fn control_bit(self) -> Bit {
        match self {
            LogicOp::Nand => Bit::Zero,
            LogicOp::Nor => Bit::One,
        }
    }

    /// Reference boolean evaluation.
    pub fn eval(self, a: Bit, b: Bit) -> Bit {
        match self {
            LogicOp::Nand => !(Bit::from_bool(a.to_bool() && b.to_bool())),
            LogicOp::Nor => !(Bit::from_bool(a.to_bool() || b.to_bool())),
        }
    }
}

impl fmt::Display for LogicOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicOp::Nand => write!(f, "NAND"),
            LogicOp::Nor => write!(f, "NOR"),
        }
    }
}

/// In-place NOT: writes `a` into capacitor `idx` and QNRO-reads it; the
/// inverting sense *is* the NOT (no DCC or any external circuit needed —
/// the contrast with Ambit's DRAM NOT).
pub fn not_in_cell(cell: &mut Cell2TnC, idx: usize, a: Bit) -> Bit {
    cell.write(idx, a);
    cell.qnro_read(idx).sensed
}

/// Single-cell NAND/NOR: writes `(A, B, C_op)` into capacitors 0–2 and
/// performs a TBA. Returns the sensed result.
pub fn logic_in_cell(cell: &mut Cell2TnC, op: LogicOp, a: Bit, b: Bit) -> Bit {
    cell.write_bits(&[a, b, op.control_bit()]);
    cell.tba().sensed
}

/// AND composed from NAND + NOT (two cell operations) — how the bulk
/// engine derives the non-inverting ops.
pub fn and_in_cell(cell: &mut Cell2TnC, a: Bit, b: Bit) -> Bit {
    let nand = logic_in_cell(cell, LogicOp::Nand, a, b);
    not_in_cell(cell, 0, nand)
}

/// OR composed from NOR + NOT.
pub fn or_in_cell(cell: &mut Cell2TnC, a: Bit, b: Bit) -> Bit {
    let nor = logic_in_cell(cell, LogicOp::Nor, a, b);
    not_in_cell(cell, 0, nor)
}

/// XOR composed from four NANDs — demonstrates full functional
/// completeness of the single-cell primitive.
pub fn xor_in_cell(cell: &mut Cell2TnC, a: Bit, b: Bit) -> Bit {
    let nab = logic_in_cell(cell, LogicOp::Nand, a, b);
    let x = logic_in_cell(cell, LogicOp::Nand, a, nab);
    let y = logic_in_cell(cell, LogicOp::Nand, b, nab);
    logic_in_cell(cell, LogicOp::Nand, x, y)
}

/// One row of the Fig 3(e) state-transition table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TbaTransition {
    /// Initial stored pattern, bit 2 = A, bit 1 = B, bit 0 = C.
    pub pattern: u8,
    /// RSL current at the TBA plateau, in A.
    pub rsl_current_a: f64,
    /// Internal node voltage, in V.
    pub v_int: f64,
    /// Sensed output (the MINORITY of the pattern).
    pub output: Bit,
}

/// Enumerates all eight TBA transitions on fresh cells — the data behind
/// Fig 3(e,f) and Fig 4(i,j).
pub fn tba_truth_table(params: &crate::cell2tnc::Cell2TnCParams) -> Vec<TbaTransition> {
    (0..8u8)
        .map(|v| {
            let mut cell = Cell2TnC::new(params);
            cell.write_bits(&crate::cell2tnc::pattern_bits(v));
            let r = cell.tba();
            TbaTransition {
                pattern: v,
                rsl_current_a: r.levels.rsl_current_a,
                v_int: r.levels.v_int,
                output: r.sensed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell2tnc::Cell2TnCParams;

    fn cell() -> Cell2TnC {
        Cell2TnC::new(&Cell2TnCParams::default())
    }

    const ALL: [Bit; 2] = [Bit::Zero, Bit::One];

    #[test]
    fn nand_truth_table() {
        let mut c = cell();
        for a in ALL {
            for b in ALL {
                let got = logic_in_cell(&mut c, LogicOp::Nand, a, b);
                let expect = Bit::from_bool(!(a.to_bool() && b.to_bool()));
                assert_eq!(got, expect, "NAND({a},{b})");
            }
        }
    }

    #[test]
    fn nor_truth_table() {
        let mut c = cell();
        for a in ALL {
            for b in ALL {
                let got = logic_in_cell(&mut c, LogicOp::Nor, a, b);
                let expect = Bit::from_bool(!(a.to_bool() || b.to_bool()));
                assert_eq!(got, expect, "NOR({a},{b})");
            }
        }
    }

    #[test]
    fn not_via_qnro() {
        let mut c = cell();
        for a in ALL {
            assert_eq!(not_in_cell(&mut c, 0, a), !a);
        }
    }

    #[test]
    fn derived_and_or_xor() {
        let mut c = cell();
        for a in ALL {
            for b in ALL {
                assert_eq!(
                    and_in_cell(&mut c, a, b),
                    Bit::from_bool(a.to_bool() && b.to_bool())
                );
                assert_eq!(
                    or_in_cell(&mut c, a, b),
                    Bit::from_bool(a.to_bool() || b.to_bool())
                );
                assert_eq!(
                    xor_in_cell(&mut c, a, b),
                    Bit::from_bool(a.to_bool() ^ b.to_bool())
                );
            }
        }
    }

    #[test]
    fn op_eval_matches_control_bit_semantics() {
        for op in [LogicOp::Nand, LogicOp::Nor] {
            for a in ALL {
                for b in ALL {
                    // MIN(A, B, C_op) must equal the op's truth table.
                    let via_min = crate::minority(a, b, op.control_bit());
                    assert_eq!(via_min, op.eval(a, b), "{op}({a},{b})");
                }
            }
        }
        assert_eq!(LogicOp::Nand.to_string(), "NAND");
        assert_eq!(LogicOp::Nor.to_string(), "NOR");
    }

    #[test]
    fn truth_table_enumerates_fig3e() {
        let table = tba_truth_table(&Cell2TnCParams::default());
        assert_eq!(table.len(), 8);
        for t in &table {
            let expect = Bit::from_bool(t.pattern.count_ones() <= 1);
            assert_eq!(t.output, expect, "pattern {:03b}", t.pattern);
        }
        // Currents strictly ordered by popcount (Fig 4(i) inverted trend).
        for x in &table {
            for y in &table {
                if x.pattern.count_ones() < y.pattern.count_ones() {
                    assert!(x.rsl_current_a > y.rsl_current_a);
                }
            }
        }
    }
}
