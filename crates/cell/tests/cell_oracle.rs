//! Differential testing of the device-backed 2T-nC cell against a pure
//! logical oracle: arbitrary interleavings of writes, QNRO reads, TBAs
//! and write-backs must sense exactly what the boolean model predicts, as
//! long as the disturb budget is respected.

use felim_cell::cell2tnc::{Cell2TnC, Cell2TnCParams};
use felim_cell::{minority, Bit};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Write(usize, bool),
    QnroRead(usize),
    Tba,
    WriteBack,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..3, any::<bool>()).prop_map(|(i, b)| Op::Write(i, b)),
        (0usize..3).prop_map(Op::QnroRead),
        Just(Op::Tba),
        Just(Op::WriteBack),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The physical cell tracks the boolean oracle through arbitrary
    /// operation sequences (bounded well inside the disturb budget).
    #[test]
    fn cell_follows_boolean_oracle(ops in prop::collection::vec(op_strategy(), 1..24)) {
        let mut cell = Cell2TnC::new(&Cell2TnCParams::default());
        // Oracle state: the three stored bits (initially all 0 — fresh
        // capacitors are in the down state).
        let mut bits = [Bit::Zero; 3];
        cell.write_bits(&bits);

        for op in &ops {
            match *op {
                Op::Write(idx, b) => {
                    let bit = Bit::from_bool(b);
                    cell.write(idx, bit);
                    bits[idx] = bit;
                }
                Op::QnroRead(idx) => {
                    let r = cell.qnro_read(idx);
                    prop_assert_eq!(r.sensed, !bits[idx], "QNRO must invert");
                    // State survives.
                    prop_assert_eq!(cell.stored(idx), Some(bits[idx]));
                }
                Op::Tba => {
                    let r = cell.tba();
                    prop_assert_eq!(
                        r.sensed,
                        minority(bits[0], bits[1], bits[2]),
                        "TBA must sense the MINORITY"
                    );
                }
                Op::WriteBack => {
                    let restored = cell.write_back();
                    for (i, b) in restored.iter().enumerate() {
                        prop_assert_eq!(*b, Some(bits[i]));
                    }
                }
            }
        }
        // Final state fully decodable.
        for (i, b) in bits.iter().enumerate() {
            prop_assert_eq!(cell.stored(i), Some(*b));
        }
    }

    /// Reference calibration is stable across cells: a reference
    /// calibrated on one cell instance decides correctly on another
    /// (same parameters, different disturb history).
    #[test]
    fn references_transfer_between_cells(
        history in prop::collection::vec((0usize..3, any::<bool>()), 0..8)
    ) {
        let params = Cell2TnCParams::default();
        let reference_cell = Cell2TnC::new(&params);
        let tba_ref = reference_cell.tba_reference();

        let mut worn = Cell2TnC::new(&params);
        for (idx, b) in history {
            worn.write(idx, Bit::from_bool(b));
            let _ = worn.qnro_read(idx);
        }
        // Now decide all 8 patterns on the worn cell with the foreign
        // reference.
        for v in 0..8u8 {
            let pattern = [
                Bit::from_bool(v & 4 != 0),
                Bit::from_bool(v & 2 != 0),
                Bit::from_bool(v & 1 != 0),
            ];
            worn.write_bits(&pattern);
            let i = worn.sense_levels(&[0, 1, 2]).rsl_current_a;
            let sensed = Bit::from_bool(i > tba_ref);
            prop_assert_eq!(
                sensed,
                minority(pattern[0], pattern[1], pattern[2]),
                "pattern {:03b} with transferred reference", v
            );
        }
    }
}
