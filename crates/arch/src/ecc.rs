//! Per-row SECDED error-correcting code (Hamming 72,64 + overall parity).
//!
//! Every stored 64-bit word gets an 8-bit side-band code: seven Hamming
//! check bits plus one overall-parity bit, the classic extended-Hamming
//! (72,64) construction used by ECC DIMMs. The code corrects any
//! single-bit upset in the 72-bit codeword (data *or* check bits) and
//! detects — never miscorrects — every double-bit upset.
//!
//! The 72-bit codeword positions are numbered `0..72`:
//!
//! * position 0 — the overall parity bit (even parity over all 72 bits),
//! * positions 1, 2, 4, 8, 16, 32, 64 — the seven Hamming check bits,
//! * the remaining 64 positions — data bits, in ascending order.
//!
//! A single flip at position `p ≥ 1` produces syndrome `p` with odd
//! overall parity; a double flip produces a nonzero syndrome with *even*
//! overall parity (two flips cancel in the overall bit) and is reported
//! as uncorrectable. This is exactly the decision table the
//! [`decode_word`] doc-table spells out.
//!
//! The [`ReliabilityController`](crate::controller::ReliabilityController)
//! stores one [`RowCode`] per protected row, re-encodes on every write,
//! and checks on every read and patrol-scrub pass; double-bit detections
//! escalate as [`ArchError::Uncorrectable`](crate::ArchError).

use serde::Serialize;

/// Bits in the extended codeword: 64 data + 7 Hamming + 1 overall parity.
const CODEWORD_BITS: u32 = 72;

/// Codeword positions of the seven Hamming check bits.
const CHECK_POSITIONS: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Codeword positions (ascending) that carry data bits: everything in
/// `1..72` that is not a power of two.
fn data_positions() -> impl Iterator<Item = u32> {
    (1..CODEWORD_BITS).filter(|p| !p.is_power_of_two())
}

/// Expands `(data, check)` into the 72-bit codeword (bit `p` of the
/// return value = codeword position `p`). Check-byte layout: bit 0 is
/// the overall parity (position 0), bits 1..=7 are the Hamming check
/// bits at positions 1, 2, 4, 8, 16, 32, 64 respectively.
fn assemble(data: u64, check: u8) -> u128 {
    let mut word: u128 = 0;
    if check & 1 != 0 {
        word |= 1;
    }
    for (i, &p) in CHECK_POSITIONS.iter().enumerate() {
        if check >> (i + 1) & 1 != 0 {
            word |= 1u128 << p;
        }
    }
    for (bit, p) in data_positions().enumerate() {
        if data >> bit & 1 != 0 {
            word |= 1u128 << p;
        }
    }
    word
}

/// Collapses a 72-bit codeword back into `(data, check)`.
fn disassemble(word: u128) -> (u64, u8) {
    let mut check = (word & 1) as u8;
    for (i, &p) in CHECK_POSITIONS.iter().enumerate() {
        if word >> p & 1 != 0 {
            check |= 1 << (i + 1);
        }
    }
    let mut data = 0u64;
    for (bit, p) in data_positions().enumerate() {
        if word >> p & 1 != 0 {
            data |= 1 << bit;
        }
    }
    (data, check)
}

/// Hamming syndrome of a codeword: XOR of the positions of all set bits.
/// Zero for a valid codeword; equals the flipped position after any
/// single-bit upset at position ≥ 1.
fn syndrome(word: u128) -> u32 {
    let mut s = 0u32;
    let mut w = word;
    while w != 0 {
        let p = w.trailing_zeros();
        s ^= p;
        w &= w - 1;
    }
    s
}

/// Encodes the 8-bit SECDED check byte for one 64-bit data word.
///
/// ```
/// use felim_arch::ecc::{decode_word, encode_word, WordDecode};
/// let check = encode_word(0xDEAD_BEEF);
/// assert_eq!(decode_word(0xDEAD_BEEF, check), WordDecode::Clean);
/// ```
pub fn encode_word(data: u64) -> u8 {
    // Choose check bits so that every Hamming parity group XORs to zero
    // (syndrome zero), then the overall bit so total parity is even.
    let data_word = assemble(data, 0);
    let s = syndrome(data_word);
    let mut check = 0u8;
    for (i, &p) in CHECK_POSITIONS.iter().enumerate() {
        // Check bit at position p covers syndrome bit log2(p) = its index
        // in the position numbering; setting it toggles that syndrome bit.
        if s & p != 0 {
            check |= 1 << (i + 1);
        }
    }
    let with_checks = assemble(data, check);
    if with_checks.count_ones() % 2 == 1 {
        check |= 1; // overall parity bit at position 0
    }
    check
}

/// Outcome of decoding one `(data, check)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum WordDecode {
    /// The codeword is consistent: the stored data is trusted as-is.
    Clean,
    /// A single-bit upset in the *data* bits was corrected; the payload
    /// is the repaired data word.
    CorrectedData(u64),
    /// A single-bit upset in the *check* bits (including the overall
    /// parity bit) was corrected; the data was never wrong.
    CorrectedCheck,
    /// A double-bit upset (or worse): detected, not correctable. The
    /// data must not be trusted.
    Uncorrectable,
}

/// Decodes one data word against its SECDED check byte.
///
/// Decision table (`s` = Hamming syndrome, `P` = overall parity of the
/// 72-bit codeword):
///
/// | `s`     | `P`  | verdict                                       |
/// |---------|------|-----------------------------------------------|
/// | 0       | even | clean                                         |
/// | 0       | odd  | overall-parity bit flipped → corrected        |
/// | 1..72   | odd  | single flip at position `s` → corrected       |
/// | ≥ 72    | odd  | impossible for 1 flip → ≥3 flips, detected    |
/// | nonzero | even | double flip → detected, uncorrectable         |
pub fn decode_word(data: u64, check: u8) -> WordDecode {
    let word = assemble(data, check);
    let s = syndrome(word);
    let parity_odd = word.count_ones() % 2 == 1;
    match (s, parity_odd) {
        (0, false) => WordDecode::Clean,
        (0, true) => WordDecode::CorrectedCheck,
        (s, true) if s < CODEWORD_BITS => {
            if s.is_power_of_two() || s == 0 {
                // The flipped bit is a check bit — data is intact.
                WordDecode::CorrectedCheck
            } else {
                let fixed = word ^ (1u128 << s);
                let (repaired, _) = disassemble(fixed);
                WordDecode::CorrectedData(repaired)
            }
        }
        // s >= 72 with odd parity: at least a triple error. s != 0 with
        // even parity: the double-error signature. Both uncorrectable.
        _ => WordDecode::Uncorrectable,
    }
}

/// The SECDED side-band for one full row: one check byte per data word.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RowCode {
    checks: Vec<u8>,
}

impl RowCode {
    /// Encodes the side-band for a full row of data.
    pub fn encode(data: &[u64]) -> Self {
        Self {
            checks: data.iter().map(|&w| encode_word(w)).collect(),
        }
    }

    /// Number of protected words.
    pub fn words(&self) -> usize {
        self.checks.len()
    }

    /// The check byte of one word.
    pub fn check(&self, word: usize) -> u8 {
        self.checks[word]
    }

    /// The raw side-band bytes, one per protected word — for state
    /// snapshots.
    pub fn checks(&self) -> &[u8] {
        &self.checks
    }

    /// Rebuilds a side-band from raw check bytes (the inverse of
    /// [`RowCode::checks`], used when restoring a state snapshot).
    pub fn from_checks(checks: Vec<u8>) -> Self {
        Self { checks }
    }

    /// Checks (and repairs, in place) a full row against this side-band.
    ///
    /// Single-bit upsets in data words are corrected in `data`;
    /// check-bit upsets are recorded (the side-band itself is refreshed
    /// by the next encode). Words with double-bit upsets are left
    /// untouched and listed in [`RowCheck::uncorrectable_words`].
    pub fn check_row(&self, data: &mut [u64]) -> RowCheck {
        let mut outcome = RowCheck::default();
        for (i, word) in data.iter_mut().enumerate() {
            let check = self.checks.get(i).copied().unwrap_or_else(|| {
                // Length mismatch means the row was resized under us —
                // treat the tail as unprotected (clean by definition).
                encode_word(*word)
            });
            match decode_word(*word, check) {
                WordDecode::Clean => {}
                WordDecode::CorrectedData(fixed) => {
                    outcome.corrected_bits += (*word ^ fixed).count_ones() as u64;
                    *word = fixed;
                }
                WordDecode::CorrectedCheck => outcome.corrected_check_bits += 1,
                WordDecode::Uncorrectable => outcome.uncorrectable_words.push(i),
            }
        }
        outcome
    }
}

/// Result of checking one row against its SECDED side-band.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct RowCheck {
    /// Data bits repaired in place.
    pub corrected_bits: u64,
    /// Check-bit upsets absorbed (data was never wrong).
    pub corrected_check_bits: u64,
    /// Word indices whose codewords hold ≥2 upsets — uncorrectable.
    pub uncorrectable_words: Vec<usize>,
}

impl RowCheck {
    /// Did the row decode without any uncorrectable word?
    pub fn is_correctable(&self) -> bool {
        self.uncorrectable_words.is_empty()
    }

    /// Did the row decode with no errors at all?
    pub fn is_clean(&self) -> bool {
        self.is_correctable() && self.corrected_bits == 0 && self.corrected_check_bits == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_partition_the_codeword() {
        let data: Vec<u32> = data_positions().collect();
        assert_eq!(data.len(), 64);
        for p in &CHECK_POSITIONS {
            assert!(!data.contains(p));
        }
        assert!(!data.contains(&0));
    }

    #[test]
    fn assemble_disassemble_roundtrip() {
        for &(d, c) in &[(0u64, 0u8), (!0, 0xFF), (0xDEAD_BEEF_1234_5678, 0x5A)] {
            assert_eq!(disassemble(assemble(d, c)), (d, c));
        }
    }

    #[test]
    fn clean_words_decode_clean() {
        for &d in &[0u64, 1, !0, 0xAAAA_AAAA_AAAA_AAAA, 0x0123_4567_89AB_CDEF] {
            assert_eq!(decode_word(d, encode_word(d)), WordDecode::Clean);
        }
    }

    #[test]
    fn every_single_data_flip_is_corrected() {
        let data = 0x0123_4567_89AB_CDEFu64;
        let check = encode_word(data);
        for bit in 0..64 {
            let corrupted = data ^ (1 << bit);
            assert_eq!(
                decode_word(corrupted, check),
                WordDecode::CorrectedData(data),
                "flip at data bit {bit}"
            );
        }
    }

    #[test]
    fn every_single_check_flip_is_absorbed() {
        let data = 0xF0E1_D2C3_B4A5_9687u64;
        let check = encode_word(data);
        for bit in 0..8 {
            let corrupted = check ^ (1 << bit);
            assert_eq!(
                decode_word(data, corrupted),
                WordDecode::CorrectedCheck,
                "flip at check bit {bit}"
            );
        }
    }

    #[test]
    fn double_flips_are_detected_never_miscorrected() {
        let data = 0x5555_0000_FFFF_AAAAu64;
        let check = encode_word(data);
        let clean = assemble(data, check);
        // All C(72,2) double flips across the full codeword.
        for i in 0..CODEWORD_BITS {
            for j in (i + 1)..CODEWORD_BITS {
                let corrupted = clean ^ (1u128 << i) ^ (1u128 << j);
                let (d, c) = disassemble(corrupted);
                assert_eq!(
                    decode_word(d, c),
                    WordDecode::Uncorrectable,
                    "double flip at positions {i},{j}"
                );
            }
        }
    }

    #[test]
    fn row_code_corrects_and_reports_per_word() {
        let data = vec![0x1111u64, 0x2222, 0x3333, 0x4444];
        let code = RowCode::encode(&data);
        assert_eq!(code.words(), 4);

        // One single flip in word 1, one double flip in word 3.
        let mut stored = data.clone();
        stored[1] ^= 1 << 7;
        stored[3] ^= (1 << 3) | (1 << 40);
        let outcome = code.check_row(&mut stored);
        assert_eq!(outcome.corrected_bits, 1);
        assert_eq!(outcome.uncorrectable_words, vec![3]);
        assert!(!outcome.is_correctable());
        assert_eq!(stored[1], data[1], "single flip repaired in place");
        assert_ne!(stored[3], data[3], "double flip left untouched");

        // A clean row decodes clean.
        let mut clean = data.clone();
        assert!(code.check_row(&mut clean).is_clean());
    }
}
