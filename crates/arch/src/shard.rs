//! Shard ownership: mapping a flat logical row space onto a pool of
//! independent backend instances.
//!
//! The service layer (`felim-serve`) runs one [`BulkBackend`](crate::BulkBackend)
//! per shard, each with its own private physical row space. Clients
//! address a single *logical* row space; this module owns the arithmetic
//! that splits it. Ownership is by contiguous range — shard `s` owns
//! logical rows `[s · rows_per_shard, (s+1) · rows_per_shard)` — so a
//! router can decide the owner of any row with one division and batch
//! same-shard traffic together.
//!
//! ```
//! use felim_arch::shard::{ShardId, ShardMap};
//!
//! let map = ShardMap::new(4, 256).unwrap();
//! assert_eq!(map.total_rows(), 1024);
//! assert_eq!(map.owner(700), ShardId(2));
//! assert_eq!(map.local(700).0, 188);
//! assert_eq!(map.logical(ShardId(2), felim_arch::RowId(188)), 700);
//! ```

use crate::geometry::RowId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// Identifier of one shard (one backend instance in the pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard#{}", self.0)
    }
}

/// Contiguous-range ownership of a flat logical row space by a pool of
/// shards. See the module docs for the addressing scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShardMap {
    /// Number of shards in the pool.
    pub shards: u32,
    /// Logical rows owned by each shard.
    pub rows_per_shard: u64,
}

impl ShardMap {
    /// Builds a map of `shards` shards, each owning `rows_per_shard`
    /// contiguous logical rows.
    ///
    /// # Errors
    ///
    /// Returns a message when either dimension is zero.
    pub fn new(shards: u32, rows_per_shard: u64) -> Result<Self, String> {
        if shards == 0 {
            return Err("shard pool needs at least one shard".into());
        }
        if rows_per_shard == 0 {
            return Err("each shard must own at least one row".into());
        }
        Ok(Self {
            shards,
            rows_per_shard,
        })
    }

    /// Total logical rows across the pool.
    pub fn total_rows(&self) -> u64 {
        u64::from(self.shards) * self.rows_per_shard
    }

    /// Is `logical` a valid logical row?
    pub fn contains(&self, logical: u64) -> bool {
        logical < self.total_rows()
    }

    /// The shard owning `logical`.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is outside the pool — routing must validate
    /// addresses before asking for an owner.
    pub fn owner(&self, logical: u64) -> ShardId {
        assert!(
            self.contains(logical),
            "logical row {logical} outside pool of {} rows",
            self.total_rows()
        );
        ShardId((logical / self.rows_per_shard) as u32)
    }

    /// The owner-local physical row of `logical`.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is outside the pool.
    pub fn local(&self, logical: u64) -> RowId {
        assert!(
            self.contains(logical),
            "logical row {logical} outside pool of {} rows",
            self.total_rows()
        );
        RowId(logical % self.rows_per_shard)
    }

    /// Reassembles a logical row from its owner and owner-local address.
    pub fn logical(&self, shard: ShardId, local: RowId) -> u64 {
        u64::from(shard.0) * self.rows_per_shard + local.0
    }

    /// The logical row range owned by `shard`.
    pub fn owned_range(&self, shard: ShardId) -> Range<u64> {
        let start = u64::from(shard.0) * self.rows_per_shard;
        start..start + self.rows_per_shard
    }

    /// Iterates all shard ids in the pool, in order.
    pub fn shard_ids(&self) -> impl Iterator<Item = ShardId> {
        (0..self.shards).map(ShardId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_round_trips() {
        let map = ShardMap::new(8, 100).unwrap();
        for logical in [0, 1, 99, 100, 555, 799] {
            let shard = map.owner(logical);
            let local = map.local(logical);
            assert_eq!(map.logical(shard, local), logical);
            assert!(map.owned_range(shard).contains(&logical));
        }
    }

    #[test]
    fn ranges_partition_the_space() {
        let map = ShardMap::new(3, 64).unwrap();
        let mut covered = 0;
        for shard in map.shard_ids() {
            let range = map.owned_range(shard);
            assert_eq!(range.start, covered);
            covered = range.end;
        }
        assert_eq!(covered, map.total_rows());
    }

    #[test]
    fn degenerate_maps_are_rejected() {
        assert!(ShardMap::new(0, 10).is_err());
        assert!(ShardMap::new(4, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "outside pool")]
    fn out_of_range_owner_panics() {
        let _ = ShardMap::new(2, 10).unwrap().owner(20);
    }

    #[test]
    fn display_and_serde() {
        assert_eq!(ShardId(3).to_string(), "shard#3");
        let map = ShardMap::new(2, 16).unwrap();
        let json = serde_json::to_string(&map).unwrap();
        assert!(json.contains("\"shards\":2"), "{json}");
    }
}
