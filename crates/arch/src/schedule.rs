//! Subarray-parallel scheduling: turning a serial command log into a
//! makespan under concurrent subarray execution.
//!
//! The backends account cycles serially (every primitive takes its slot),
//! which is the paper's single-stream model. Real arrays overlap
//! operations on independent subarrays; this module replays a command log
//! onto `k` concurrent execution slots (subarrays statically striped
//! across slots, commands of one subarray serialised, refresh a global
//! barrier) and reports the resulting makespan — the quantitative form of
//! Section V's "increasing the computational bandwidth" argument.

use crate::command::Command;
use crate::energy::LatencyModel;
use crate::geometry::{MemoryGeometry, RowId};
use serde::{Deserialize, Serialize};

/// Result of replaying a command log with subarray parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// Serial cycle count (the backends' accounting).
    pub serial_cycles: u64,
    /// Makespan under the given parallelism.
    pub makespan_cycles: u64,
    /// Achieved speedup.
    pub speedup: f64,
    /// Concurrency slots used.
    pub slots: usize,
}

/// Replays `log` with `slots` concurrent subarray-groups.
///
/// # Panics
///
/// Panics if `slots` is zero.
pub fn schedule(
    log: &[Command],
    geometry: &MemoryGeometry,
    latency: &LatencyModel,
    slots: usize,
) -> ScheduleReport {
    assert!(slots > 0, "need at least one execution slot");
    let mut slot_time = vec![0u64; slots];
    let mut serial = 0u64;
    // Commands with no row operand (PRECHARGE) belong to the chain of the
    // previous command — track the last-used slot.
    let mut last_slot = 0usize;

    for cmd in log {
        let cycles = latency.cycles(cmd);
        serial += cycles;
        let slot = match command_row(cmd) {
            Some(row) => (geometry.subarray_of(row) as usize) % slots,
            None => match cmd {
                Command::Refresh { .. } => {
                    // Global barrier: every slot waits, then pays.
                    let t = *slot_time.iter().max().unwrap() + cycles;
                    slot_time.iter_mut().for_each(|s| *s = t);
                    continue;
                }
                _ => last_slot,
            },
        };
        slot_time[slot] += cycles;
        last_slot = slot;
    }

    let makespan = slot_time.into_iter().max().unwrap_or(0);
    ScheduleReport {
        serial_cycles: serial,
        makespan_cycles: makespan,
        speedup: if makespan > 0 {
            serial as f64 / makespan as f64
        } else {
            1.0
        },
        slots,
    }
}

/// The row a command operates on, if any.
fn command_row(cmd: &Command) -> Option<RowId> {
    match cmd {
        Command::Activate(r)
        | Command::TripleBitActivate(r)
        | Command::WriteRow(r)
        | Command::ReadRow(r) => Some(*r),
        Command::TripleRowActivate(r, _, _) => Some(*r),
        Command::RowClone { dst } | Command::Copy { dst, .. } => Some(*dst),
        Command::Precharge | Command::Refresh { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feram_backend::FeramBackend;
    use crate::BulkBackend;

    fn setup() -> (MemoryGeometry, LatencyModel) {
        (MemoryGeometry::tiny(), LatencyModel::paper_default())
    }

    #[test]
    fn single_subarray_gets_no_speedup() {
        let (g, l) = setup();
        // All rows in subarray 0 (rows 0..64 in the tiny geometry).
        let log = vec![
            Command::Activate(RowId(1)),
            Command::Copy {
                dst: RowId(2),
                complement: false,
            },
            Command::Precharge,
            Command::Activate(RowId(3)),
            Command::Copy {
                dst: RowId(4),
                complement: false,
            },
            Command::Precharge,
        ];
        let r = schedule(&log, &g, &l, 8);
        assert_eq!(r.serial_cycles, 6);
        assert_eq!(r.makespan_cycles, 6, "same subarray must serialise");
        assert!((r.speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_subarrays_overlap() {
        let (g, l) = setup();
        // Two chains in different subarrays (tiny: 64 rows/subarray).
        let log = vec![
            Command::Activate(RowId(1)),
            Command::Precharge,
            Command::Activate(RowId(65)),
            Command::Precharge,
        ];
        let r = schedule(&log, &g, &l, 2);
        assert_eq!(r.serial_cycles, 4);
        assert_eq!(r.makespan_cycles, 2, "chains must overlap fully");
        assert!((r.speedup - 2.0).abs() < 1e-12);
    }

    #[test]
    fn refresh_is_a_global_barrier() {
        let (g, l) = setup();
        let log = vec![
            Command::Activate(RowId(1)),
            Command::Activate(RowId(65)),
            Command::Refresh { rows: 4 },
            Command::Activate(RowId(129)),
        ];
        let r = schedule(&log, &g, &l, 4);
        // Parallel phase: 1 cycle; refresh 2 cycles on top of the max;
        // then 1 more.
        assert_eq!(r.makespan_cycles, 1 + 2 + 1);
    }

    #[test]
    fn real_workload_log_speeds_up_with_spread_rows() {
        let (g, _) = setup();
        let mut m = FeramBackend::new(g).with_command_log();
        let words = m.geometry().row_words();
        // Eight NANDs in eight different subarrays.
        for i in 0..8u64 {
            let base = i * 64;
            m.install_row(RowId(base), &vec![1u64; words]).unwrap();
            m.install_row(RowId(base + 1), &vec![2u64; words]).unwrap();
            m.nand(RowId(base), RowId(base + 1), RowId(base + 2)).unwrap();
        }
        let l = *m.latency_model();
        let r = schedule(m.command_log(), m.geometry(), &l, 8);
        assert!(
            r.speedup > 6.0,
            "spread ops must parallelise: {}",
            r.speedup
        );
        // And with one slot it degenerates to the serial count.
        let r1 = schedule(m.command_log(), m.geometry(), &l, 1);
        assert_eq!(r1.makespan_cycles, r1.serial_cycles);
    }

    #[test]
    #[should_panic(expected = "at least one execution slot")]
    fn rejects_zero_slots() {
        let (g, l) = setup();
        let _ = schedule(&[], &g, &l, 0);
    }
}
