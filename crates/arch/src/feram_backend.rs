//! 2T-nC FeRAM bulk-bitwise execution with the ACP primitive.
//!
//! Data layout: each memory row is a *logic group* — every 2T-nC cell in
//! the row has `n = 3` capacitors, so the row carries three bit-planes
//! (slots). Slot 0 holds the resident data; slots 1 and 2 stage the second
//! operand and the control bits for TBA.
//!
//! A NAND/NOR between rows `a` and `b` is two ACPs (6 cycles):
//!
//! 1. **co-locate** — `ACP` moving row `b` into slot 1 of group `a`:
//!    ACTIVATE reads `b` through QNRO, COPY writes it — complemented by
//!    the differential write drivers to undo the inverting sense — into
//!    the slot, PRECHARGE resets. Because multiple capacitors of a cell
//!    can be written simultaneously in one cycle (Fig 3(e) step 1), the
//!    same COPY also drives the control pattern (all-0 for NAND, all-1
//!    for NOR) into slot 2 — no separate control-write cycle.
//! 2. **ACP** — ACTIVATE performs the TBA (per-cell MINORITY), COPY drives
//!    the result into the destination row, PRECHARGE resets the RSL
//!    buffer.
//!
//! Because QNRO reads are only *quasi*-nondestructive, the backend tracks
//! reads-per-group and issues a write-back once the disturb budget is
//! exhausted — the residual maintenance cost of the scheme (orders of
//! magnitude rarer than DRAM refresh).

use crate::command::Command;
use crate::energy::{EnergyModel, LatencyModel};
use crate::engine::{minority_words, RowStore};
use crate::geometry::{MemoryGeometry, RowId};
use crate::stats::ExecStats;
use crate::wear::WearTracker;
use crate::BulkBackend;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Rows reserved at the top of the address space for scratch.
const RESERVED_ROWS: u64 = 16;

/// Capacitors per cell.
const N_CAPS: u64 = 3;

/// The 2T-nC FeRAM backend.
#[derive(Debug, Clone)]
pub struct FeramBackend {
    geometry: MemoryGeometry,
    /// Bit-plane store: plane key = row * N_CAPS + slot.
    planes: RowStore,
    energy: EnergyModel,
    latency: LatencyModel,
    stats: ExecStats,
    /// QNRO reads absorbed per group since its last write.
    reads_since_write: HashMap<u64, u32>,
    /// Reads allowed before a maintenance write-back.
    disturb_budget: u32,
    /// Write-backs issued due to disturb exhaustion.
    writebacks: u64,
    /// Per-row write-endurance bookkeeping.
    wear: WearTracker,
    /// Optional sense-fault injection: per-bit flip probability on TBA
    /// outputs, with its deterministic noise source.
    fault_injection: Option<(f64, StdRng)>,
    command_log: Option<Vec<Command>>,
}

impl FeramBackend {
    /// Creates a backend with the paper's energy/latency constants and a
    /// disturb budget of 64 reads between write-backs.
    pub fn new(geometry: MemoryGeometry) -> Self {
        // The plane store needs N_CAPS addresses per visible row.
        let plane_geometry = MemoryGeometry {
            capacity_bytes: geometry.capacity_bytes * N_CAPS,
            ..geometry
        };
        Self {
            geometry,
            planes: RowStore::new(plane_geometry),
            energy: EnergyModel::feram_2tnc(),
            latency: LatencyModel::paper_default(),
            stats: ExecStats::new(),
            reads_since_write: HashMap::new(),
            disturb_budget: 64,
            writebacks: 0,
            wear: WearTracker::new(),
            fault_injection: None,
            command_log: None,
        }
    }

    /// The paper's 8 GB configuration.
    pub fn default_8gb() -> Self {
        Self::new(MemoryGeometry::paper_8gb())
    }

    /// A small instance for tests.
    pub fn tiny() -> Self {
        Self::new(MemoryGeometry::tiny())
    }

    /// Overrides the QNRO disturb budget (reads per group between
    /// write-backs) — ablation A4.
    pub fn with_disturb_budget(mut self, budget: u32) -> Self {
        assert!(budget > 0, "disturb budget must be positive");
        self.disturb_budget = budget;
        self
    }

    /// Number of maintenance write-backs issued so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Per-row write-endurance bookkeeping (Fig 4(f) budget).
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }

    /// Enables sense-fault injection: every bit of every TBA output is
    /// flipped with probability `rate` (deterministic from `seed`).
    /// Models a sense amplifier operating past its margin; workload
    /// verification catches the corruption, demonstrating the functional
    /// simulation is a real end-to-end check.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rate <= 1`.
    pub fn with_fault_injection(mut self, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.fault_injection = Some((rate, StdRng::seed_from_u64(seed)));
        self
    }

    /// Applies the configured fault injection to a freshly-sensed plane.
    fn maybe_corrupt(&mut self, plane: RowId) {
        let Some((rate, rng)) = self.fault_injection.as_mut() else {
            return;
        };
        if *rate <= 0.0 {
            return;
        }
        let mut data = self.planes.read(plane);
        for word in &mut data {
            for bit in 0..64 {
                if rng.gen_bool(*rate) {
                    *word ^= 1 << bit;
                }
            }
        }
        self.planes.write(plane, &data);
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// The latency model in use.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    fn reserved_base(&self) -> u64 {
        self.geometry.total_rows() - RESERVED_ROWS
    }

    fn plane(&self, row: RowId, slot: u64) -> RowId {
        debug_assert!(slot < N_CAPS);
        RowId(row.0 * N_CAPS + slot)
    }

    fn issue(&mut self, cmd: Command) {
        self.stats.record(
            cmd.class(),
            self.latency.cycles(&cmd),
            self.energy.energy_nj(&cmd),
        );
        if let Some(log) = &mut self.command_log {
            log.push(cmd);
        }
    }

    /// Enables command-sequence logging (for inspection and tests).
    pub fn with_command_log(mut self) -> Self {
        self.command_log = Some(Vec::new());
        self
    }

    /// The logged command sequence (empty slice if logging is off).
    pub fn command_log(&self) -> &[Command] {
        self.command_log.as_deref().unwrap_or(&[])
    }

    /// Records a QNRO read on a group; issues a write-back if the disturb
    /// budget is exhausted.
    fn note_read(&mut self, row: RowId) {
        let count = self.reads_since_write.entry(row.0).or_insert(0);
        *count += 1;
        if *count >= self.disturb_budget {
            *count = 0;
            self.writebacks += 1;
            // One multi-cap row write refreshes all slots of the group.
            self.issue(Command::WriteRow(row));
        }
    }

    fn note_write(&mut self, row: RowId) {
        self.reads_since_write.insert(row.0, 0);
        self.wear.record_write(row);
    }

    /// ACP move of a source row's slot-0 data into an arbitrary plane,
    /// optionally complementing. 3 cycles.
    fn acp_move(&mut self, src: RowId, dst_plane: RowId, invert: bool) {
        self.issue(Command::Activate(src));
        // QNRO sense inverts; the differential write drivers complement
        // again unless an inverted result is wanted.
        self.issue(Command::Copy {
            dst: dst_plane,
            complement: !invert,
        });
        self.issue(Command::Precharge);
        self.note_read(src);
        let p_src = self.plane(src, 0);
        if invert {
            self.planes.map(p_src, dst_plane, |w| !w);
        } else {
            self.planes.map(p_src, dst_plane, |w| w);
        }
    }

    /// The TBA-based two-operand op (MINORITY with a control plane):
    /// co-locate `b` together with the control plane, then ACP into
    /// `dst`. The sense amplifier is differential, so the COPY can drive
    /// either polarity for free: `complement = false` stores the MINORITY
    /// (NAND/NOR), `complement = true` stores the MAJORITY (AND/OR).
    /// 6 cycles, 79.0 nJ — vs 12 cycles / 182.1 nJ for the DRAM AAP chain.
    fn tba_op(&mut self, a: RowId, b: RowId, control_word: u64, complement: bool, dst: RowId) {
        // 1. Co-locate operand B into slot 1 of group A; the same
        //    multi-cap write cycle drives the control bits into slot 2.
        let slot1 = self.plane(a, 1);
        self.acp_move(b, slot1, false);
        let slot2 = self.plane(a, 2);
        self.planes.fill(slot2, control_word);
        self.note_write(a);
        // 2. ACP: TBA + COPY(result → dst) + PRECHARGE.
        self.issue(Command::TripleBitActivate(a));
        self.issue(Command::Copy { dst, complement });
        self.issue(Command::Precharge);
        self.note_read(a);
        let (p0, p1, p2) = (self.plane(a, 0), slot1, slot2);
        let pd = self.plane(dst, 0);
        if complement {
            self.planes
                .combine3(p0, p1, p2, pd, |x, y, z| !minority_words(x, y, z));
        } else {
            self.planes.combine3(p0, p1, p2, pd, minority_words);
        }
        self.maybe_corrupt(pd);
        self.note_write(dst);
    }
}

impl BulkBackend for FeramBackend {
    fn geometry(&self) -> &MemoryGeometry {
        &self.geometry
    }

    fn write_row(&mut self, row: RowId, data: &[u64]) {
        self.issue(Command::WriteRow(row));
        let p = self.plane(row, 0);
        self.planes.write(p, data);
        self.note_write(row);
    }

    fn install_row(&mut self, row: RowId, data: &[u64]) {
        let p = self.plane(row, 0);
        self.planes.write(p, data);
        self.note_write(row);
    }

    fn read_row(&mut self, row: RowId) -> Vec<u64> {
        self.issue(Command::ReadRow(row));
        self.note_read(row);
        self.planes.read(self.plane(row, 0))
    }

    fn not(&mut self, src: RowId, dst: RowId) {
        // The QNRO sense *is* the inversion: a single ACP, no DCC rows.
        let pd = self.plane(dst, 0);
        self.acp_move(src, pd, true);
        self.note_write(dst);
    }

    fn and(&mut self, a: RowId, b: RowId, dst: RowId) {
        // MAJ(a, b, 0) = a AND b: the differential COPY complements the
        // sensed MINORITY for free.
        self.tba_op(a, b, 0, true, dst);
    }

    fn or(&mut self, a: RowId, b: RowId, dst: RowId) {
        self.tba_op(a, b, !0, true, dst);
    }

    fn nand(&mut self, a: RowId, b: RowId, dst: RowId) {
        self.tba_op(a, b, 0, false, dst);
    }

    fn nor(&mut self, a: RowId, b: RowId, dst: RowId) {
        self.tba_op(a, b, !0, false, dst);
    }

    fn copy(&mut self, src: RowId, dst: RowId) {
        let pd = self.plane(dst, 0);
        self.acp_move(src, pd, false);
        self.note_write(dst);
    }

    fn scratch_rows(&self, count: usize) -> Vec<RowId> {
        assert!(count <= 8, "at most 8 general scratch rows");
        (0..count as u64)
            .map(|i| RowId(self.reserved_base() + 1 + i))
            .collect()
    }

    fn stats(&self) -> &ExecStats {
        &self.stats
    }

    fn finish(&mut self) -> ExecStats {
        // Non-volatile: no refresh to settle.
        self.stats.clone()
    }

    fn tech_name(&self) -> &'static str {
        "2T-nC FeRAM (ACP/TBA)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CommandClass;

    fn backend() -> FeramBackend {
        FeramBackend::tiny()
    }

    fn row_of(backend: &FeramBackend, word: u64) -> Vec<u64> {
        vec![word; backend.geometry().row_words()]
    }

    #[test]
    fn all_logic_ops_functional() {
        let mut m = backend();
        let (a, b, d) = (RowId(0), RowId(1), RowId(2));
        m.write_row(a, &row_of(&m, 0b1100));
        m.write_row(b, &row_of(&m, 0b1010));
        m.nand(a, b, d);
        assert_eq!(m.read_row(d)[0], !0b1000u64);
        m.nor(a, b, d);
        assert_eq!(m.read_row(d)[0], !0b1110u64);
        m.and(a, b, d);
        assert_eq!(m.read_row(d)[0], 0b1000);
        m.or(a, b, d);
        assert_eq!(m.read_row(d)[0], 0b1110);
        m.not(a, d);
        assert_eq!(m.read_row(d)[0], !0b1100u64);
        m.xor(a, b, d);
        assert_eq!(m.read_row(d)[0], 0b0110);
        m.copy(a, d);
        assert_eq!(m.read_row(d)[0], 0b1100);
    }

    #[test]
    fn operands_survive_logic_ops_in_place() {
        let mut m = backend();
        let (a, b, d) = (RowId(0), RowId(1), RowId(2));
        m.write_row(a, &row_of(&m, 0xAA));
        m.write_row(b, &row_of(&m, 0x55));
        m.nand(a, b, d);
        // QNRO: A stays in place, B is only read.
        assert_eq!(m.read_row(a)[0], 0xAA);
        assert_eq!(m.read_row(b)[0], 0x55);
    }

    #[test]
    fn nand_costs_six_cycles() {
        let mut m = backend();
        let (a, b, d) = (RowId(0), RowId(1), RowId(2));
        m.write_row(a, &row_of(&m, 1));
        m.write_row(b, &row_of(&m, 2));
        let before = m.stats().clone();
        m.nand(a, b, d);
        let d_cycles = m.stats().total_cycles() - before.total_cycles();
        assert_eq!(d_cycles, 6, "colocate+control ACP (3) + logic ACP (3)");
        let d_energy = m.stats().total_energy_nj() - before.total_energy_nj();
        // 2 × (16.6 + 22.6 + 0.32) = 79.04 nJ.
        assert!((d_energy - 79.04).abs() < 1e-9, "got {d_energy}");
    }

    #[test]
    fn not_costs_single_acp() {
        let mut m = backend();
        m.write_row(RowId(0), &row_of(&m, 1));
        let before = m.stats().total_cycles();
        m.not(RowId(0), RowId(1));
        assert_eq!(m.stats().total_cycles() - before, 3, "one ACP, no DCC");
    }

    #[test]
    fn feram_beats_dram_on_energy_and_cycles_per_op() {
        use crate::dram_backend::DramBackend;
        let mut f = backend();
        let mut d = DramBackend::tiny();
        let (a, b, o) = (RowId(0), RowId(1), RowId(2));
        for m in [
            &mut f as &mut dyn BulkBackend,
            &mut d as &mut dyn BulkBackend,
        ] {
            let data_a = vec![0xF0F0u64; m.geometry().row_words()];
            let data_b = vec![0x0FF0u64; m.geometry().row_words()];
            m.write_row(a, &data_a);
            m.write_row(b, &data_b);
            m.nand(a, b, o);
        }
        let (fs, ds) = (f.stats(), d.stats());
        assert!(ds.total_cycles() > fs.total_cycles());
        assert!(ds.total_energy_nj() > 2.0 * fs.total_energy_nj());
        // And both computed the same result.
        assert_eq!(f.read_row(o), d.read_row(o));
    }

    #[test]
    fn disturb_budget_triggers_writebacks() {
        let mut m = FeramBackend::tiny().with_disturb_budget(4);
        m.write_row(RowId(0), &row_of(&m, 1));
        for _ in 0..12 {
            let _ = m.read_row(RowId(0));
        }
        assert_eq!(m.writebacks(), 3, "12 reads / budget 4");
        let wb_writes = m.stats().count(CommandClass::Write);
        assert!(wb_writes >= 4, "write-backs issue real write commands");
    }

    #[test]
    fn writes_reset_disturb_counter() {
        let mut m = FeramBackend::tiny().with_disturb_budget(4);
        m.write_row(RowId(0), &row_of(&m, 1));
        for _ in 0..3 {
            let _ = m.read_row(RowId(0));
            m.write_row(RowId(0), &row_of(&m, 1));
        }
        assert_eq!(m.writebacks(), 0);
    }

    #[test]
    fn finish_adds_nothing() {
        let mut m = backend();
        m.write_row(RowId(0), &row_of(&m, 1));
        let before = m.stats().clone();
        let after = m.finish();
        assert_eq!(before, after, "no refresh in FeRAM");
    }

    #[test]
    fn xor_via_default_composition() {
        let mut m = backend();
        let (a, b, d) = (RowId(0), RowId(1), RowId(2));
        m.write_row(a, &row_of(&m, 0b0110));
        m.write_row(b, &row_of(&m, 0b0101));
        let before = m.stats().total_cycles();
        m.xor(a, b, d);
        assert_eq!(m.read_row(d)[0], 0b0011);
        // 4 NANDs at 6 cycles each.
        assert_eq!(m.stats().total_cycles() - before - 1, 24);
    }

    #[test]
    #[should_panic(expected = "disturb budget must be positive")]
    fn rejects_zero_budget() {
        let _ = FeramBackend::tiny().with_disturb_budget(0);
    }

    #[test]
    fn fault_injection_corrupts_results_detectably() {
        let (a, b, d) = (RowId(0), RowId(1), RowId(2));
        // Clean backend: correct NAND.
        let mut clean = FeramBackend::tiny();
        clean.install_row(a, &row_of(&clean, 0xF0F0));
        clean.install_row(b, &row_of(&clean, 0xFF00));
        clean.nand(a, b, d);
        assert_eq!(clean.read_row(d)[0], !0xF000u64);
        // Zero rate behaves exactly like no injection.
        let mut zero = FeramBackend::tiny().with_fault_injection(0.0, 9);
        zero.install_row(a, &row_of(&zero, 0xF0F0));
        zero.install_row(b, &row_of(&zero, 0xFF00));
        zero.nand(a, b, d);
        assert_eq!(zero.read_row(d), clean.read_row(d));
        // Aggressive rate: output must differ from the oracle somewhere.
        let mut faulty = FeramBackend::tiny().with_fault_injection(0.05, 9);
        faulty.install_row(a, &row_of(&faulty, 0xF0F0));
        faulty.install_row(b, &row_of(&faulty, 0xFF00));
        faulty.nand(a, b, d);
        assert_ne!(faulty.read_row(d), clean.read_row(d));
    }

    #[test]
    fn fault_injection_is_deterministic_per_seed() {
        let run = |seed| {
            let mut m = FeramBackend::tiny().with_fault_injection(0.02, seed);
            m.install_row(RowId(0), &row_of(&m, 0xAB));
            m.install_row(RowId(1), &row_of(&m, 0xCD));
            m.nand(RowId(0), RowId(1), RowId(2));
            m.read_row(RowId(2))
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn wear_tracking_counts_destination_writes() {
        let mut m = FeramBackend::tiny();
        m.install_row(RowId(0), &row_of(&m, 1));
        m.install_row(RowId(1), &row_of(&m, 2));
        for _ in 0..5 {
            m.nand(RowId(0), RowId(1), RowId(2));
        }
        // Destination written 5x; operand group A also wears (colocation
        // writes slots 1 and 2 each op).
        assert_eq!(m.wear().writes(RowId(2)), 5);
        assert!(m.wear().writes(RowId(0)) >= 5);
        let report = m.wear().report();
        assert!(report.repeatable_runs > 1e4, "well inside the budget");
    }

    #[test]
    #[should_panic(expected = "rate must be a probability")]
    fn rejects_bad_fault_rate() {
        let _ = FeramBackend::tiny().with_fault_injection(1.5, 0);
    }
}
