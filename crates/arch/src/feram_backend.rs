//! 2T-nC FeRAM bulk-bitwise execution with the ACP primitive.
//!
//! Data layout: each memory row is a *logic group* — every 2T-nC cell in
//! the row has `n = 3` capacitors, so the row carries three bit-planes
//! (slots). Slot 0 holds the resident data; slots 1 and 2 stage the second
//! operand and the control bits for TBA.
//!
//! A NAND/NOR between rows `a` and `b` is two ACPs (6 cycles):
//!
//! 1. **co-locate** — `ACP` moving row `b` into slot 1 of group `a`:
//!    ACTIVATE reads `b` through QNRO, COPY writes it — complemented by
//!    the differential write drivers to undo the inverting sense — into
//!    the slot, PRECHARGE resets. Because multiple capacitors of a cell
//!    can be written simultaneously in one cycle (Fig 3(e) step 1), the
//!    same COPY also drives the control pattern (all-0 for NAND, all-1
//!    for NOR) into slot 2 — no separate control-write cycle.
//! 2. **ACP** — ACTIVATE performs the TBA (per-cell MINORITY), COPY drives
//!    the result into the destination row, PRECHARGE resets the RSL
//!    buffer.
//!
//! Because QNRO reads are only *quasi*-nondestructive, the backend tracks
//! reads-per-group and issues a write-back once the disturb budget is
//! exhausted — the residual maintenance cost of the scheme (orders of
//! magnitude rarer than DRAM refresh).
//!
//! ## Faults and graceful degradation
//!
//! A [`FaultInjector`] (see [`FeramBackend::with_faults`]) flips bits on
//! the write, read and TBA sense paths and kills a row's cells once its
//! wear crosses the spec's budget. A [`DegradationPolicy`] decides what
//! the controller does about it: verify-after-write with bounded retry,
//! triple-modular sensing and reading with majority vote, scratch-row
//! rotation at a wear threshold, and retirement of persistently-failing
//! rows into a spare pool carved out of the reserved region. With the
//! default [`DegradationPolicy::none`] every mitigation is off and the
//! backend's cost accounting is bit-identical to a fault-free one.

use crate::command::Command;
use crate::energy::{EnergyModel, LatencyModel};
use crate::engine::{minority_words, RowStore};
use crate::fault::{DegradationPolicy, FaultInjector, FaultSpec, ReliabilityStats};
use crate::geometry::{MemoryGeometry, RowId};
use crate::stats::ExecStats;
use crate::wear::WearTracker;
use crate::{ArchError, BulkBackend};
use std::collections::HashMap;

/// Rows reserved at the top of the address space for scratch and spares.
const RESERVED_ROWS: u64 = 16;

/// General scratch rows live at `base+1 ..= base+SCRATCH_ROWS`.
const SCRATCH_ROWS: u64 = 8;

/// Spare rows for retirement/rotation at `base+9 ..= base+9+SPARE_ROWS-1`.
const SPARE_ROWS: u64 = 7;

/// Capacitors per cell.
const N_CAPS: u64 = 3;

/// The 2T-nC FeRAM backend.
#[derive(Debug, Clone)]
pub struct FeramBackend {
    geometry: MemoryGeometry,
    /// Bit-plane store: plane key = physical row * N_CAPS + slot.
    planes: RowStore,
    energy: EnergyModel,
    latency: LatencyModel,
    stats: ExecStats,
    /// QNRO reads absorbed per group since its last write.
    reads_since_write: HashMap<u64, u32>,
    /// Reads allowed before a maintenance write-back.
    disturb_budget: u32,
    /// Write-backs issued due to disturb exhaustion.
    writebacks: u64,
    /// Per-physical-row write-endurance bookkeeping.
    wear: WearTracker,
    /// Optional deterministic fault injection.
    faults: Option<FaultInjector>,
    /// Controller response to faults.
    policy: DegradationPolicy,
    /// Ground-truth fault bookkeeping.
    reliability: ReliabilityStats,
    /// Logical → physical row remapping (retirement + scratch rotation).
    remap: HashMap<u64, u64>,
    /// Free physical spare rows (popped from the back).
    spares: Vec<u64>,
    command_log: Option<Vec<Command>>,
    /// Reusable row buffer for op results, so the fault-free op path
    /// performs no per-op heap allocation in steady state.
    row_buf: Vec<u64>,
}

impl FeramBackend {
    /// Creates a backend with the paper's energy/latency constants and a
    /// disturb budget of 64 reads between write-backs.
    pub fn new(geometry: MemoryGeometry) -> Self {
        // The plane store needs N_CAPS addresses per visible row.
        let plane_geometry = MemoryGeometry {
            capacity_bytes: geometry.capacity_bytes * N_CAPS,
            ..geometry
        };
        let base = geometry.total_rows() - RESERVED_ROWS;
        let spares: Vec<u64> = (base + 1 + SCRATCH_ROWS..base + 1 + SCRATCH_ROWS + SPARE_ROWS)
            .rev()
            .collect();
        Self {
            geometry,
            planes: RowStore::new(plane_geometry),
            energy: EnergyModel::feram_2tnc(),
            latency: LatencyModel::paper_default(),
            stats: ExecStats::new(),
            reads_since_write: HashMap::new(),
            disturb_budget: 64,
            writebacks: 0,
            wear: WearTracker::new(),
            faults: None,
            policy: DegradationPolicy::none(),
            reliability: ReliabilityStats::default(),
            remap: HashMap::new(),
            spares,
            command_log: None,
            row_buf: Vec::new(),
        }
    }

    /// The paper's 8 GB configuration.
    pub fn default_8gb() -> Self {
        Self::new(MemoryGeometry::paper_8gb())
    }

    /// A small instance for tests.
    pub fn tiny() -> Self {
        Self::new(MemoryGeometry::tiny())
    }

    /// Overrides the QNRO disturb budget (reads per group between
    /// write-backs) — ablation A4.
    ///
    /// # Panics
    ///
    /// Panics on a zero budget.
    pub fn with_disturb_budget(mut self, budget: u32) -> Self {
        assert!(budget > 0, "disturb budget must be positive");
        self.disturb_budget = budget;
        self
    }

    /// Number of maintenance write-backs issued so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Per-row write-endurance bookkeeping (Fig 4(f) budget).
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }

    /// Attaches a deterministic fault environment. If the spec carries a
    /// wear budget, the wear tracker is rebuilt with it so endurance
    /// reports and cell death agree.
    ///
    /// # Panics
    ///
    /// Panics unless every rate in the spec is a probability.
    pub fn with_faults(mut self, spec: FaultSpec) -> Self {
        if spec.wear_budget > 0 {
            self.wear = WearTracker::with_budget(spec.wear_budget);
        }
        self.faults = Some(FaultInjector::new(spec));
        self
    }

    /// Sets the controller's degradation policy.
    pub fn with_policy(mut self, policy: DegradationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables sense-fault injection only: every bit of every TBA output
    /// is flipped with probability `rate` (deterministic from `seed`).
    /// Equivalent to `with_faults(FaultSpec::sense_only(rate, seed))`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rate <= 1`.
    pub fn with_fault_injection(self, rate: f64, seed: u64) -> Self {
        self.with_faults(FaultSpec::sense_only(rate, seed))
    }

    /// Ground-truth reliability statistics for this run.
    pub fn reliability_stats(&self) -> &ReliabilityStats {
        &self.reliability
    }

    /// Logical rows currently remapped to spares.
    pub fn remapped_rows(&self) -> usize {
        self.remap.len()
    }

    /// Spare rows still available for retirement/rotation.
    pub fn spares_left(&self) -> usize {
        self.spares.len()
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// The latency model in use.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    fn reserved_base(&self) -> u64 {
        self.geometry.total_rows() - RESERVED_ROWS
    }

    /// First reserved row: data rows live strictly below this boundary
    /// (the top of the array holds compute, scratch and spare rows).
    pub fn first_reserved_row(&self) -> RowId {
        RowId(self.reserved_base())
    }

    /// Physical row a logical row currently maps to.
    fn resolve(&self, row: RowId) -> u64 {
        *self.remap.get(&row.0).unwrap_or(&row.0)
    }

    fn plane_of(&self, physical_row: u64, slot: u64) -> RowId {
        debug_assert!(slot < N_CAPS);
        RowId(physical_row * N_CAPS + slot)
    }

    fn check_row(&self, row: RowId) -> Result<(), ArchError> {
        if self.geometry.contains(row) {
            Ok(())
        } else {
            Err(ArchError::RowOutOfRange {
                row: row.0,
                rows: self.geometry.total_rows(),
            })
        }
    }

    /// Has this physical row's cell population worn out?
    fn is_dead(&self, physical_row: u64) -> bool {
        match &self.faults {
            Some(inj) if inj.spec().wear_budget > 0 => {
                self.wear.writes(RowId(physical_row)) >= inj.spec().wear_budget
            }
            _ => false,
        }
    }

    fn is_scratch(&self, row: RowId) -> bool {
        let base = self.reserved_base();
        (base + 1..=base + SCRATCH_ROWS).contains(&row.0)
    }

    fn issue(&mut self, cmd: Command) {
        self.stats.record(
            cmd.class(),
            self.latency.cycles(&cmd),
            self.energy.energy_nj(&cmd),
        );
        if let Some(log) = &mut self.command_log {
            log.push(cmd);
        }
    }

    /// Enables command-sequence logging (for inspection and tests).
    pub fn with_command_log(mut self) -> Self {
        self.command_log = Some(Vec::new());
        self
    }

    /// The logged command sequence (empty slice if logging is off).
    pub fn command_log(&self) -> &[Command] {
        self.command_log.as_deref().unwrap_or(&[])
    }

    /// Empties the command log (no-op when logging is off). Batch
    /// dispatchers call this between batches so each batch's log — and
    /// therefore its makespan replay — stands alone.
    pub fn clear_command_log(&mut self) {
        if let Some(log) = &mut self.command_log {
            log.clear();
        }
    }

    /// Records a QNRO read on a group; issues a write-back if the disturb
    /// budget is exhausted.
    fn note_read(&mut self, row: RowId) {
        let count = self.reads_since_write.entry(row.0).or_insert(0);
        *count += 1;
        if *count >= self.disturb_budget {
            *count = 0;
            self.writebacks += 1;
            // One multi-cap row write refreshes all slots of the group.
            self.issue(Command::WriteRow(row));
        }
    }

    /// Resets the disturb counter for a logical group and records wear on
    /// the physical row actually written.
    fn note_write(&mut self, logical: RowId, physical_row: u64) {
        self.reads_since_write.insert(logical.0, 0);
        self.wear.record_write(RowId(physical_row));
    }

    /// Rotates a scratch row to a fresh spare once its wear crosses the
    /// policy's fraction of the wear budget.
    fn maybe_rotate_scratch(&mut self, logical: RowId) {
        if !self.policy.rotates_scratch() || !self.is_scratch(logical) {
            return;
        }
        let physical = self.resolve(logical);
        let threshold = self.policy.scratch_rotation_fraction * self.wear.budget() as f64;
        if (self.wear.writes(RowId(physical)) as f64) < threshold {
            return;
        }
        if let Some(spare) = self.spares.pop() {
            self.remap.insert(logical.0, spare);
            self.reliability.note_scratch_rotation();
        }
        // Pool empty: keep using the worn row — retirement-on-failure is
        // still behind it as the last line of defence.
    }

    /// What slot 0 of a physical row currently holds.
    fn stored(&self, physical_row: u64) -> Result<Vec<u64>, ArchError> {
        self.planes.read(self.plane_of(physical_row, 0))
    }

    /// Commits `intended` into slot 0 of `logical`, applying the fault
    /// model (write flips, dead cells) and the degradation policy
    /// (verify-after-write, bounded retry, retirement). The op-level
    /// command cost is charged by the caller; only mitigation overhead
    /// (verify reads, retry writes) is charged here.
    fn commit_data(&mut self, logical: RowId, intended: &[u64]) -> Result<(), ArchError> {
        self.check_row(logical)?;
        self.maybe_rotate_scratch(logical);
        let mut attempts: u32 = 0;
        loop {
            let physical = self.resolve(logical);
            if self.is_dead(physical) {
                self.reliability.note_dead_row_write();
                // The cells no longer switch: stored data stays stale.
            } else if self.faults.is_some() {
                let mut written = intended.to_vec();
                if let Some(inj) = self.faults.as_mut() {
                    let flips = inj.corrupt_write(&mut written);
                    self.reliability.note_write_flips(flips);
                }
                self.planes.write(self.plane_of(physical, 0), &written)?;
            } else {
                // Fault-free: the intended data lands verbatim, straight
                // into the plane's existing buffer.
                self.planes.write(self.plane_of(physical, 0), intended)?;
            }
            self.note_write(logical, physical);
            attempts += 1;
            if !self.policy.verify_writes {
                return Ok(());
            }
            // Verify: read the row back and compare to the write buffer.
            self.issue(Command::ReadRow(logical));
            let verified = match self.planes.row(self.plane_of(physical, 0))? {
                Some(stored) => stored == intended,
                None => intended.iter().all(|&w| w == 0),
            };
            if verified {
                if attempts > 1 {
                    self.reliability.note_corrected_write();
                }
                return Ok(());
            }
            if attempts <= self.policy.max_write_retries {
                self.reliability.note_write_retry();
                self.issue(Command::WriteRow(logical));
                continue;
            }
            // Retries exhausted: retire the row to a spare, if allowed.
            if !self.policy.retire_rows {
                return Err(ArchError::UncorrectableWrite {
                    row: logical.0,
                    attempts,
                });
            }
            match self.spares.pop() {
                Some(spare) => {
                    self.remap.insert(logical.0, spare);
                    self.reliability.note_retired_row();
                    attempts = 0;
                    self.issue(Command::WriteRow(logical));
                }
                None => return Err(ArchError::SparesExhausted { row: logical.0 }),
            }
        }
    }

    /// Oracle check after a committed operation: if what ended up in
    /// storage differs from the ideal result and no error was raised,
    /// that is a silent corruption.
    fn oracle_check(&mut self, logical: RowId, truth: &[u64]) -> Result<(), ArchError> {
        if self.faults.is_none() {
            return Ok(());
        }
        let physical = self.resolve(logical);
        let matches = match self.planes.row(self.plane_of(physical, 0))? {
            Some(stored) => stored == truth,
            None => truth.iter().all(|&w| w == 0),
        };
        if !matches {
            self.reliability.note_escaped_fault();
        }
        Ok(())
    }

    /// Samples the TBA sense path: single sense by default, triple
    /// sense with majority vote under `policy.redundant_sense` (charged
    /// as two extra activate/precharge pairs).
    fn sense(&mut self, group: RowId, truth: &[u64]) -> Vec<u64> {
        let Some(inj) = self.faults.as_mut() else {
            return truth.to_vec();
        };
        if inj.spec().sense_fault_rate <= 0.0 {
            return truth.to_vec();
        }
        if self.policy.redundant_sense {
            let (voted, disagreements) = inj.vote3_sense(truth);
            self.reliability.note_sense_flips(disagreements);
            self.reliability.note_sense_corrected(disagreements);
            // Two extra senses of the already-staged group.
            self.issue(Command::TripleBitActivate(group));
            self.issue(Command::Precharge);
            self.issue(Command::TripleBitActivate(group));
            self.issue(Command::Precharge);
            voted
        } else {
            let mut sensed = truth.to_vec();
            let flips = inj.corrupt_sense(&mut sensed);
            self.reliability.note_sense_flips(flips);
            sensed
        }
    }

    /// ACP move of a source row's slot-0 data into a caller buffer,
    /// optionally complementing. 3 cycles. The caller decides whether
    /// the landing site is a staging slot (direct write) or a data row
    /// (committed through the degradation path).
    fn acp_read_into(
        &mut self,
        src: RowId,
        invert: bool,
        out: &mut Vec<u64>,
    ) -> Result<(), ArchError> {
        self.check_row(src)?;
        self.note_read(src);
        let p_src = self.plane_of(self.resolve(src), 0);
        self.planes.read_into(p_src, out)?;
        if invert {
            for w in out.iter_mut() {
                *w = !*w;
            }
        }
        Ok(())
    }

    /// The TBA-based two-operand op (MINORITY with a control plane):
    /// co-locate `b` together with the control plane, then ACP into
    /// `dst`. The sense amplifier is differential, so the COPY can drive
    /// either polarity for free: `complement = false` stores the MINORITY
    /// (NAND/NOR), `complement = true` stores the MAJORITY (AND/OR).
    /// 6 cycles, 79.0 nJ — vs 12 cycles / 182.1 nJ for the DRAM AAP chain.
    fn tba_op(
        &mut self,
        a: RowId,
        b: RowId,
        control_word: u64,
        complement: bool,
        dst: RowId,
    ) -> Result<(), ArchError> {
        self.check_row(dst)?;
        let phys_a = self.resolve(a);
        // 1. Co-locate operand B into slot 1 of group A; the same
        //    multi-cap write cycle drives the control bits into slot 2.
        let slot1 = self.plane_of(phys_a, 1);
        self.issue(Command::Activate(b));
        self.issue(Command::Copy {
            dst: slot1,
            complement: true,
        });
        self.issue(Command::Precharge);
        self.check_row(b)?;
        self.note_read(b);
        let pb0 = self.plane_of(self.resolve(b), 0);
        self.note_write(a, phys_a);
        // 2. ACP: TBA + COPY(result → dst) + PRECHARGE.
        let pd = self.plane_of(self.resolve(dst), 0);
        self.issue(Command::TripleBitActivate(a));
        self.issue(Command::Copy {
            dst: pd,
            complement,
        });
        self.issue(Command::Precharge);
        self.note_read(a);
        // Slots 1 and 2 of group A (the staged operand and control plane,
        // `slot1` above) are only ever observed by the TBA that just
        // staged them, so the functional model evaluates the minority
        // directly from the operand planes and the constant control word
        // instead of materialising the staging slots — the command stream
        // and cost accounting above are identical either way.
        let mut truth = std::mem::take(&mut self.row_buf);
        let result = (|| {
            self.planes.combine2_into(
                self.plane_of(phys_a, 0),
                pb0,
                &mut truth,
                |x, y| {
                    let m = minority_words(x, y, control_word);
                    if complement {
                        !m
                    } else {
                        m
                    }
                },
            )?;
            if self.faults.is_some() {
                let sensed = self.sense(a, &truth);
                self.commit_data(dst, &sensed)?;
                self.oracle_check(dst, &truth)
            } else {
                // Fault-free sense is the truth itself: commit directly.
                self.commit_data(dst, &truth)
            }
        })();
        self.row_buf = truth;
        result
    }
}

impl BulkBackend for FeramBackend {
    fn geometry(&self) -> &MemoryGeometry {
        &self.geometry
    }

    fn write_row(&mut self, row: RowId, data: &[u64]) -> Result<(), ArchError> {
        self.check_row(row)?;
        if data.len() != self.geometry.row_words() {
            return Err(ArchError::RowSizeMismatch {
                expected: self.geometry.row_words(),
                got: data.len(),
            });
        }
        self.issue(Command::WriteRow(row));
        self.commit_data(row, data)?;
        self.oracle_check(row, data)
    }

    fn install_row(&mut self, row: RowId, data: &[u64]) -> Result<(), ArchError> {
        self.check_row(row)?;
        let physical = self.resolve(row);
        let p = self.plane_of(physical, 0);
        self.planes.write(p, data)?;
        self.note_write(row, physical);
        Ok(())
    }

    fn read_row(&mut self, row: RowId) -> Result<Vec<u64>, ArchError> {
        self.check_row(row)?;
        self.issue(Command::ReadRow(row));
        self.note_read(row);
        let stored = self.stored(self.resolve(row))?;
        let Some(inj) = self.faults.as_mut() else {
            return Ok(stored);
        };
        if inj.spec().read_bitflip_rate <= 0.0 {
            return Ok(stored);
        }
        if self.policy.redundant_reads {
            // Two extra reads, majority vote across the three senses.
            let (voted, disagreements) = inj.vote3_read(&stored);
            self.reliability.note_read_flips(disagreements);
            self.reliability.note_read_corrected(disagreements);
            self.issue(Command::ReadRow(row));
            self.note_read(row);
            self.issue(Command::ReadRow(row));
            self.note_read(row);
            if voted != stored {
                // A double fault slipped through the vote.
                self.reliability.note_escaped_fault();
            }
            Ok(voted)
        } else {
            let mut out = stored.clone();
            let flips = inj.corrupt_read(&mut out);
            self.reliability.note_read_flips(flips);
            if out != stored {
                self.reliability.note_escaped_fault();
            }
            Ok(out)
        }
    }

    fn not(&mut self, src: RowId, dst: RowId) -> Result<(), ArchError> {
        // The QNRO sense *is* the inversion: a single ACP, no DCC rows.
        self.check_row(dst)?;
        let pd = self.plane_of(self.resolve(dst), 0);
        self.issue(Command::Activate(src));
        self.issue(Command::Copy {
            dst: pd,
            complement: false,
        });
        self.issue(Command::Precharge);
        let mut truth = std::mem::take(&mut self.row_buf);
        let result = (|| {
            self.acp_read_into(src, true, &mut truth)?;
            self.commit_data(dst, &truth)?;
            self.oracle_check(dst, &truth)
        })();
        self.row_buf = truth;
        result
    }

    fn and(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError> {
        // MAJ(a, b, 0) = a AND b: the differential COPY complements the
        // sensed MINORITY for free.
        self.tba_op(a, b, 0, true, dst)
    }

    fn or(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError> {
        self.tba_op(a, b, !0, true, dst)
    }

    fn nand(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError> {
        self.tba_op(a, b, 0, false, dst)
    }

    fn nor(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError> {
        self.tba_op(a, b, !0, false, dst)
    }

    fn copy(&mut self, src: RowId, dst: RowId) -> Result<(), ArchError> {
        self.check_row(dst)?;
        let pd = self.plane_of(self.resolve(dst), 0);
        self.issue(Command::Activate(src));
        self.issue(Command::Copy {
            dst: pd,
            complement: true,
        });
        self.issue(Command::Precharge);
        let mut truth = std::mem::take(&mut self.row_buf);
        let result = (|| {
            self.acp_read_into(src, false, &mut truth)?;
            self.commit_data(dst, &truth)?;
            self.oracle_check(dst, &truth)
        })();
        self.row_buf = truth;
        result
    }

    fn scratch_rows(&self, count: usize) -> Vec<RowId> {
        assert!(count <= SCRATCH_ROWS as usize, "at most 8 general scratch rows");
        (0..count as u64)
            .map(|i| RowId(self.reserved_base() + 1 + i))
            .collect()
    }

    fn stats(&self) -> &ExecStats {
        &self.stats
    }

    fn reliability(&self) -> Option<&ReliabilityStats> {
        Some(&self.reliability)
    }

    fn finish(&mut self) -> ExecStats {
        // Non-volatile: no refresh to settle.
        self.stats.clone()
    }

    fn tech_name(&self) -> &'static str {
        "2T-nC FeRAM (ACP/TBA)"
    }

    fn peek_row(&self, row: RowId) -> Result<Option<Vec<u64>>, ArchError> {
        self.check_row(row)?;
        let physical = self.resolve(row);
        Ok(self.planes.row(self.plane_of(physical, 0))?.map(<[u64]>::to_vec))
    }

    fn decay_row(&mut self, row: RowId, mask: &[u64]) -> Result<bool, ArchError> {
        self.check_row(row)?;
        if mask.len() != self.geometry.row_words() {
            return Err(ArchError::RowSizeMismatch {
                expected: self.geometry.row_words(),
                got: mask.len(),
            });
        }
        let physical = self.resolve(row);
        let plane = self.plane_of(physical, 0);
        // Environmental upset: flip the stored bits directly — no
        // command, no energy, no wear, no disturb-counter reset.
        let Some(stored) = self.planes.row(plane)? else {
            return Ok(false);
        };
        let decayed: Vec<u64> = stored.iter().zip(mask).map(|(w, m)| w ^ m).collect();
        self.planes.write(plane, &decayed)?;
        Ok(true)
    }

    fn wear_fraction(&self, row: RowId) -> f64 {
        let physical = self.resolve(row);
        (self.wear.writes(RowId(physical)) as f64 / self.wear.budget() as f64).clamp(0.0, 1.0)
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        use crate::snapshot::{put_u32, put_u64, put_u8};
        if self.faults.is_some() {
            // A live injector holds RNG state this codec cannot replay;
            // a restored copy would diverge from the original.
            return None;
        }
        let mut out = Vec::new();
        put_u8(&mut out, 1); // FeRAM snapshot version
        put_u64(&mut out, self.geometry.total_rows());
        put_u64(&mut out, self.geometry.row_words() as u64);
        self.planes.encode_state(&mut out);
        self.stats.encode_state(&mut out);
        let mut reads: Vec<(u64, u32)> =
            self.reads_since_write.iter().map(|(&k, &v)| (k, v)).collect();
        reads.sort_unstable_by_key(|&(k, _)| k);
        put_u64(&mut out, reads.len() as u64);
        for (row, count) in reads {
            put_u64(&mut out, row);
            put_u32(&mut out, count);
        }
        put_u32(&mut out, self.disturb_budget);
        put_u64(&mut out, self.writebacks);
        self.wear.encode_state(&mut out);
        self.policy.encode_state(&mut out);
        self.reliability.encode_state(&mut out);
        let mut remap: Vec<(u64, u64)> = self.remap.iter().map(|(&k, &v)| (k, v)).collect();
        remap.sort_unstable_by_key(|&(k, _)| k);
        put_u64(&mut out, remap.len() as u64);
        for (logical, physical) in remap {
            put_u64(&mut out, logical);
            put_u64(&mut out, physical);
        }
        // Spares pop from the back: order is state, keep it verbatim.
        put_u64(&mut out, self.spares.len() as u64);
        for &spare in &self.spares {
            put_u64(&mut out, spare);
        }
        Some(out)
    }

    fn restore_state(&mut self, snapshot: &[u8]) -> bool {
        use crate::snapshot::{take_u32, take_u64, take_u8};
        if self.faults.is_some() {
            return false;
        }
        let buf = snapshot;
        let mut pos = 0usize;
        let Some(1) = take_u8(buf, &mut pos) else {
            return false;
        };
        if take_u64(buf, &mut pos) != Some(self.geometry.total_rows())
            || take_u64(buf, &mut pos) != Some(self.geometry.row_words() as u64)
        {
            return false;
        }
        let mut planes = self.planes.clone();
        if planes.restore_state(buf, &mut pos).is_none() {
            return false;
        }
        let Some(stats) = ExecStats::decode_state(buf, &mut pos) else {
            return false;
        };
        let Some(n_reads) = take_u64(buf, &mut pos) else {
            return false;
        };
        if ((buf.len() - pos) as u64) / 12 < n_reads {
            return false;
        }
        let mut reads_since_write = HashMap::with_capacity(n_reads as usize);
        for _ in 0..n_reads {
            let (Some(row), Some(count)) = (take_u64(buf, &mut pos), take_u32(buf, &mut pos))
            else {
                return false;
            };
            reads_since_write.insert(row, count);
        }
        let (Some(disturb_budget), Some(writebacks)) =
            (take_u32(buf, &mut pos), take_u64(buf, &mut pos))
        else {
            return false;
        };
        let Some(wear) = WearTracker::decode_state(buf, &mut pos) else {
            return false;
        };
        let Some(policy) = DegradationPolicy::decode_state(buf, &mut pos) else {
            return false;
        };
        let Some(reliability) = ReliabilityStats::decode_state(buf, &mut pos) else {
            return false;
        };
        let Some(n_remap) = take_u64(buf, &mut pos) else {
            return false;
        };
        if ((buf.len() - pos) as u64) / 16 < n_remap {
            return false;
        }
        let mut remap = HashMap::with_capacity(n_remap as usize);
        for _ in 0..n_remap {
            let (Some(logical), Some(physical)) = (take_u64(buf, &mut pos), take_u64(buf, &mut pos))
            else {
                return false;
            };
            remap.insert(logical, physical);
        }
        let Some(n_spares) = take_u64(buf, &mut pos) else {
            return false;
        };
        if ((buf.len() - pos) as u64) / 8 < n_spares {
            return false;
        }
        let mut spares = Vec::with_capacity(n_spares as usize);
        for _ in 0..n_spares {
            let Some(spare) = take_u64(buf, &mut pos) else {
                return false;
            };
            spares.push(spare);
        }
        if pos != buf.len() {
            return false;
        }
        self.planes = planes;
        self.stats = stats;
        self.reads_since_write = reads_since_write;
        self.disturb_budget = disturb_budget;
        self.writebacks = writebacks;
        self.wear = wear;
        self.policy = policy;
        self.reliability = reliability;
        self.remap = remap;
        self.spares = spares;
        if let Some(log) = self.command_log.as_mut() {
            log.clear();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CommandClass;

    fn backend() -> FeramBackend {
        FeramBackend::tiny()
    }

    fn row_of(backend: &FeramBackend, word: u64) -> Vec<u64> {
        vec![word; backend.geometry().row_words()]
    }

    #[test]
    fn all_logic_ops_functional() {
        let mut m = backend();
        let (a, b, d) = (RowId(0), RowId(1), RowId(2));
        m.write_row(a, &row_of(&m, 0b1100)).unwrap();
        m.write_row(b, &row_of(&m, 0b1010)).unwrap();
        m.nand(a, b, d).unwrap();
        assert_eq!(m.read_row(d).unwrap()[0], !0b1000u64);
        m.nor(a, b, d).unwrap();
        assert_eq!(m.read_row(d).unwrap()[0], !0b1110u64);
        m.and(a, b, d).unwrap();
        assert_eq!(m.read_row(d).unwrap()[0], 0b1000);
        m.or(a, b, d).unwrap();
        assert_eq!(m.read_row(d).unwrap()[0], 0b1110);
        m.not(a, d).unwrap();
        assert_eq!(m.read_row(d).unwrap()[0], !0b1100u64);
        m.xor(a, b, d).unwrap();
        assert_eq!(m.read_row(d).unwrap()[0], 0b0110);
        m.copy(a, d).unwrap();
        assert_eq!(m.read_row(d).unwrap()[0], 0b1100);
    }

    #[test]
    fn operands_survive_logic_ops_in_place() {
        let mut m = backend();
        let (a, b, d) = (RowId(0), RowId(1), RowId(2));
        m.write_row(a, &row_of(&m, 0xAA)).unwrap();
        m.write_row(b, &row_of(&m, 0x55)).unwrap();
        m.nand(a, b, d).unwrap();
        // QNRO: A stays in place, B is only read.
        assert_eq!(m.read_row(a).unwrap()[0], 0xAA);
        assert_eq!(m.read_row(b).unwrap()[0], 0x55);
    }

    #[test]
    fn nand_costs_six_cycles() {
        let mut m = backend();
        let (a, b, d) = (RowId(0), RowId(1), RowId(2));
        m.write_row(a, &row_of(&m, 1)).unwrap();
        m.write_row(b, &row_of(&m, 2)).unwrap();
        let before = m.stats().clone();
        m.nand(a, b, d).unwrap();
        let d_cycles = m.stats().total_cycles() - before.total_cycles();
        assert_eq!(d_cycles, 6, "colocate+control ACP (3) + logic ACP (3)");
        let d_energy = m.stats().total_energy_nj() - before.total_energy_nj();
        // 2 × (16.6 + 22.6 + 0.32) = 79.04 nJ.
        assert!((d_energy - 79.04).abs() < 1e-9, "got {d_energy}");
    }

    #[test]
    fn not_costs_single_acp() {
        let mut m = backend();
        m.write_row(RowId(0), &row_of(&m, 1)).unwrap();
        let before = m.stats().total_cycles();
        m.not(RowId(0), RowId(1)).unwrap();
        assert_eq!(m.stats().total_cycles() - before, 3, "one ACP, no DCC");
    }

    #[test]
    fn feram_beats_dram_on_energy_and_cycles_per_op() {
        use crate::dram_backend::DramBackend;
        let mut f = backend();
        let mut d = DramBackend::tiny();
        let (a, b, o) = (RowId(0), RowId(1), RowId(2));
        for m in [
            &mut f as &mut dyn BulkBackend,
            &mut d as &mut dyn BulkBackend,
        ] {
            let data_a = vec![0xF0F0u64; m.geometry().row_words()];
            let data_b = vec![0x0FF0u64; m.geometry().row_words()];
            m.write_row(a, &data_a).unwrap();
            m.write_row(b, &data_b).unwrap();
            m.nand(a, b, o).unwrap();
        }
        let (fs, ds) = (f.stats(), d.stats());
        assert!(ds.total_cycles() > fs.total_cycles());
        assert!(ds.total_energy_nj() > 2.0 * fs.total_energy_nj());
        // And both computed the same result.
        assert_eq!(f.read_row(o).unwrap(), d.read_row(o).unwrap());
    }

    #[test]
    fn disturb_budget_triggers_writebacks() {
        let mut m = FeramBackend::tiny().with_disturb_budget(4);
        m.write_row(RowId(0), &row_of(&m, 1)).unwrap();
        for _ in 0..12 {
            let _ = m.read_row(RowId(0)).unwrap();
        }
        assert_eq!(m.writebacks(), 3, "12 reads / budget 4");
        let wb_writes = m.stats().count(CommandClass::Write);
        assert!(wb_writes >= 4, "write-backs issue real write commands");
    }

    #[test]
    fn writes_reset_disturb_counter() {
        let mut m = FeramBackend::tiny().with_disturb_budget(4);
        m.write_row(RowId(0), &row_of(&m, 1)).unwrap();
        for _ in 0..3 {
            let _ = m.read_row(RowId(0)).unwrap();
            m.write_row(RowId(0), &row_of(&m, 1)).unwrap();
        }
        assert_eq!(m.writebacks(), 0);
    }

    #[test]
    fn finish_adds_nothing() {
        let mut m = backend();
        m.write_row(RowId(0), &row_of(&m, 1)).unwrap();
        let before = m.stats().clone();
        let after = m.finish();
        assert_eq!(before, after, "no refresh in FeRAM");
    }

    #[test]
    fn xor_via_default_composition() {
        let mut m = backend();
        let (a, b, d) = (RowId(0), RowId(1), RowId(2));
        m.write_row(a, &row_of(&m, 0b0110)).unwrap();
        m.write_row(b, &row_of(&m, 0b0101)).unwrap();
        let before = m.stats().total_cycles();
        m.xor(a, b, d).unwrap();
        assert_eq!(m.read_row(d).unwrap()[0], 0b0011);
        // 4 NANDs at 6 cycles each.
        assert_eq!(m.stats().total_cycles() - before - 1, 24);
    }

    #[test]
    #[should_panic(expected = "disturb budget must be positive")]
    fn rejects_zero_budget() {
        let _ = FeramBackend::tiny().with_disturb_budget(0);
    }

    #[test]
    fn out_of_range_rows_are_typed_errors() {
        let mut m = backend();
        let far = RowId(m.geometry().total_rows() + 5);
        assert!(matches!(
            m.write_row(far, &row_of(&m, 1)),
            Err(ArchError::RowOutOfRange { .. })
        ));
        assert!(matches!(
            m.read_row(far),
            Err(ArchError::RowOutOfRange { .. })
        ));
        assert!(matches!(
            m.nand(RowId(0), RowId(1), far),
            Err(ArchError::RowOutOfRange { .. })
        ));
        let err = m.write_row(RowId(0), &[1, 2, 3]).unwrap_err();
        assert!(matches!(err, ArchError::RowSizeMismatch { got: 3, .. }));
    }

    #[test]
    fn fault_injection_corrupts_results_detectably() {
        let (a, b, d) = (RowId(0), RowId(1), RowId(2));
        // Clean backend: correct NAND.
        let mut clean = FeramBackend::tiny();
        clean.install_row(a, &row_of(&clean, 0xF0F0)).unwrap();
        clean.install_row(b, &row_of(&clean, 0xFF00)).unwrap();
        clean.nand(a, b, d).unwrap();
        assert_eq!(clean.read_row(d).unwrap()[0], !0xF000u64);
        // Zero rate behaves exactly like no injection.
        let mut zero = FeramBackend::tiny().with_fault_injection(0.0, 9);
        zero.install_row(a, &row_of(&zero, 0xF0F0)).unwrap();
        zero.install_row(b, &row_of(&zero, 0xFF00)).unwrap();
        zero.nand(a, b, d).unwrap();
        assert_eq!(zero.read_row(d).unwrap(), clean.read_row(d).unwrap());
        // Aggressive rate: output must differ from the oracle somewhere.
        let mut faulty = FeramBackend::tiny().with_fault_injection(0.05, 9);
        faulty.install_row(a, &row_of(&faulty, 0xF0F0)).unwrap();
        faulty.install_row(b, &row_of(&faulty, 0xFF00)).unwrap();
        faulty.nand(a, b, d).unwrap();
        assert_ne!(faulty.read_row(d).unwrap(), clean.read_row(d).unwrap());
        // The oracle saw the divergence: without a policy it escaped.
        assert!(faulty.reliability_stats().escaped_faults > 0);
        assert!(faulty.reliability_stats().injected_sense_flips > 0);
    }

    #[test]
    fn fault_injection_is_deterministic_per_seed() {
        let run = |seed| {
            let mut m = FeramBackend::tiny().with_fault_injection(0.02, seed);
            m.install_row(RowId(0), &row_of(&m, 0xAB)).unwrap();
            m.install_row(RowId(1), &row_of(&m, 0xCD)).unwrap();
            m.nand(RowId(0), RowId(1), RowId(2)).unwrap();
            m.read_row(RowId(2)).unwrap()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn wear_tracking_counts_destination_writes() {
        let mut m = FeramBackend::tiny();
        m.install_row(RowId(0), &row_of(&m, 1)).unwrap();
        m.install_row(RowId(1), &row_of(&m, 2)).unwrap();
        for _ in 0..5 {
            m.nand(RowId(0), RowId(1), RowId(2)).unwrap();
        }
        // Destination written 5x; operand group A also wears (colocation
        // writes slots 1 and 2 each op).
        assert_eq!(m.wear().writes(RowId(2)), 5);
        assert!(m.wear().writes(RowId(0)) >= 5);
        let report = m.wear().report();
        assert!(
            report.repeatable_runs.unwrap() > 1e4,
            "well inside the budget"
        );
    }

    #[test]
    #[should_panic(expected = "rate must be a probability")]
    fn rejects_bad_fault_rate() {
        let _ = FeramBackend::tiny().with_fault_injection(1.5, 0);
    }

    #[test]
    fn verify_after_write_corrects_write_flips() {
        let spec = FaultSpec {
            seed: 21,
            write_bitflip_rate: 5e-5,
            read_bitflip_rate: 0.0,
            sense_fault_rate: 0.0,
            wear_budget: 0,
        };
        let policy = DegradationPolicy {
            verify_writes: true,
            max_write_retries: 8,
            ..DegradationPolicy::none()
        };
        let mut m = FeramBackend::tiny().with_faults(spec).with_policy(policy);
        let data = row_of(&m, 0xDEAD_BEEF);
        for r in 0..20 {
            m.write_row(RowId(r), &data).unwrap();
            assert_eq!(m.read_row(RowId(r)).unwrap(), data, "row {r}");
        }
        let rel = m.reliability_stats();
        assert!(rel.injected_write_flips > 0, "flips must have been injected");
        assert!(rel.write_retries > 0, "some writes must have needed retry");
        assert_eq!(rel.escaped_faults, 0, "verification must catch everything");
    }

    #[test]
    fn unverified_write_flips_escape_and_are_counted() {
        let spec = FaultSpec {
            seed: 21,
            write_bitflip_rate: 5e-5,
            read_bitflip_rate: 0.0,
            sense_fault_rate: 0.0,
            wear_budget: 0,
        };
        let mut m = FeramBackend::tiny().with_faults(spec);
        let data = row_of(&m, 0xDEAD_BEEF);
        for r in 0..20 {
            m.write_row(RowId(r), &data).unwrap();
        }
        assert!(m.reliability_stats().escaped_faults > 0);
    }

    #[test]
    fn dead_rows_are_retired_to_spares() {
        // Tiny wear budget: rows die after 3 writes.
        let spec = FaultSpec::none(3).with_wear_budget(3);
        let policy = DegradationPolicy {
            verify_writes: true,
            max_write_retries: 1,
            retire_rows: true,
            ..DegradationPolicy::none()
        };
        let mut m = FeramBackend::tiny().with_faults(spec).with_policy(policy);
        let spares_before = m.spares_left();
        for i in 0..8u64 {
            let data = row_of(&m, i);
            m.write_row(RowId(0), &data).unwrap();
            assert_eq!(m.read_row(RowId(0)).unwrap(), data, "write {i}");
        }
        let rel = m.reliability_stats().clone();
        assert!(rel.retired_rows >= 1, "row 0 must have been retired");
        assert!(rel.dead_row_writes >= 1);
        assert_eq!(rel.escaped_faults, 0);
        assert!(m.spares_left() < spares_before);
        assert!(m.remapped_rows() >= 1);
    }

    #[test]
    fn retirement_disabled_surfaces_uncorrectable_write() {
        let spec = FaultSpec::none(3).with_wear_budget(2);
        let policy = DegradationPolicy {
            verify_writes: true,
            max_write_retries: 1,
            retire_rows: false,
            ..DegradationPolicy::none()
        };
        let mut m = FeramBackend::tiny().with_faults(spec).with_policy(policy);
        let mut saw_error = false;
        for i in 0..6u64 {
            // Vary the data so the dead row's stale contents cannot verify.
            let data = row_of(&m, i + 7);
            match m.write_row(RowId(0), &data) {
                Ok(()) => {}
                Err(ArchError::UncorrectableWrite { row: 0, .. }) => {
                    saw_error = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_error, "the dead row must surface a typed error");
    }

    #[test]
    fn spare_exhaustion_is_a_typed_error() {
        let spec = FaultSpec::none(3).with_wear_budget(1);
        let policy = DegradationPolicy {
            verify_writes: true,
            max_write_retries: 0,
            retire_rows: true,
            ..DegradationPolicy::none()
        };
        let mut m = FeramBackend::tiny().with_faults(spec).with_policy(policy);
        let mut last = Ok(());
        for i in 0..40u64 {
            // Vary the data so a dead (stale) row cannot pass verification.
            let data = row_of(&m, i + 1);
            last = m.write_row(RowId(0), &data);
            if last.is_err() {
                break;
            }
        }
        assert!(matches!(last, Err(ArchError::SparesExhausted { row: 0 })));
        assert_eq!(m.spares_left(), 0);
    }

    #[test]
    fn scratch_rotation_remaps_hot_scratch_rows() {
        let spec = FaultSpec::none(3).with_wear_budget(100);
        let policy = DegradationPolicy {
            scratch_rotation_fraction: 0.1,
            ..DegradationPolicy::none()
        };
        let mut m = FeramBackend::tiny().with_faults(spec).with_policy(policy);
        let (a, b) = (RowId(0), RowId(1));
        m.install_row(a, &row_of(&m, 0xAA)).unwrap();
        m.install_row(b, &row_of(&m, 0x55)).unwrap();
        // xor hammers the scratch rows; 10 % of a 100-write budget → the
        // scratch destinations rotate after ~10 writes each.
        for _ in 0..30 {
            m.xor(a, b, RowId(2)).unwrap();
        }
        let rel = m.reliability_stats();
        assert!(rel.scratch_rotations >= 1, "hot scratch must rotate");
        assert!(m.remapped_rows() >= 1);
        // The results stay correct throughout.
        assert_eq!(m.read_row(RowId(2)).unwrap()[0], 0xAA ^ 0x55);
    }

    #[test]
    fn redundant_sense_outvotes_transient_faults() {
        let spec = FaultSpec::sense_only(2e-4, 17);
        let policy = DegradationPolicy {
            redundant_sense: true,
            verify_writes: true,
            max_write_retries: 2,
            retire_rows: true,
            ..DegradationPolicy::none()
        };
        let mut m = FeramBackend::tiny().with_faults(spec).with_policy(policy);
        let (a, b, d) = (RowId(0), RowId(1), RowId(2));
        m.install_row(a, &row_of(&m, 0xF0F0)).unwrap();
        m.install_row(b, &row_of(&m, 0xFF00)).unwrap();
        for _ in 0..50 {
            m.nand(a, b, d).unwrap();
            assert_eq!(m.read_row(d).unwrap()[0], !0xF000u64);
        }
        let rel = m.reliability_stats();
        assert!(rel.injected_sense_flips > 0, "faults must have fired");
        assert_eq!(rel.sense_faults_corrected, rel.injected_sense_flips);
        assert_eq!(rel.escaped_faults, 0);
    }

    #[test]
    fn redundant_reads_outvote_read_flips() {
        let spec = FaultSpec {
            seed: 23,
            write_bitflip_rate: 0.0,
            read_bitflip_rate: 2e-4,
            sense_fault_rate: 0.0,
            wear_budget: 0,
        };
        let policy = DegradationPolicy {
            redundant_reads: true,
            ..DegradationPolicy::none()
        };
        let mut m = FeramBackend::tiny().with_faults(spec.clone()).with_policy(policy);
        let data = row_of(&m, 0x1234_5678_9ABC_DEF0);
        m.install_row(RowId(0), &data).unwrap();
        for _ in 0..30 {
            assert_eq!(m.read_row(RowId(0)).unwrap(), data);
        }
        let rel = m.reliability_stats();
        assert!(rel.injected_read_flips > 0);
        assert_eq!(rel.escaped_faults, 0);

        // Without redundancy the same spec corrupts host reads.
        let mut naked = FeramBackend::tiny().with_faults(spec);
        naked.install_row(RowId(0), &data).unwrap();
        let mut diverged = false;
        for _ in 0..30 {
            if naked.read_row(RowId(0)).unwrap() != data {
                diverged = true;
            }
        }
        assert!(diverged);
        assert!(naked.reliability_stats().escaped_faults > 0);
    }

    #[test]
    fn hardened_policy_keeps_costs_above_baseline() {
        // Mitigation is not free: verify reads and redundant senses must
        // show up in the cost accounting.
        let run = |policy: DegradationPolicy| {
            let mut m = FeramBackend::tiny()
                .with_faults(FaultSpec::sense_only(0.001, 3))
                .with_policy(policy);
            m.install_row(RowId(0), &row_of(&m, 0xAA)).unwrap();
            m.install_row(RowId(1), &row_of(&m, 0x55)).unwrap();
            for _ in 0..10 {
                m.nand(RowId(0), RowId(1), RowId(2)).unwrap();
            }
            m.stats().total_cycles()
        };
        let baseline = run(DegradationPolicy::none());
        let hardened = run(DegradationPolicy::hardened());
        assert!(hardened > baseline, "{hardened} vs {baseline}");
    }
}
