//! The reliability controller: SECDED + patrol scrub + drift, composed.
//!
//! [`ReliabilityController`] wraps any [`BulkBackend`] and closes the
//! storage-reliability loop that [`DegradationPolicy`](crate::fault::DegradationPolicy)
//! leaves open. The degradation policy defends the *compute path* —
//! transient sense and read-wire flips are outvoted, failed writes are
//! retried and retired. It has no answer for *storage* decay: a bit that
//! rots in place after a verified write reads back consistently wrong,
//! so a majority vote over three reads of the same rotten cell happily
//! confirms the corruption. The controller's three pieces close exactly
//! that gap:
//!
//! * **SECDED** ([`crate::ecc`]) — every row written through the
//!   controller carries a per-word (72,64) side-band. Reads repair
//!   single-bit upsets transparently; double-bit upsets escalate as
//!   [`ArchError::Uncorrectable`] instead of returning silent garbage.
//! * **drift** ([`crate::drift`]) — the physics that rots the bits:
//!   retention, imprint and read disturb, derived from `felim-ferro` and
//!   advanced by [`ReliabilityController::tick`]. Upsets land in the
//!   backing store through [`BulkBackend::decay_row`], costing nothing —
//!   the environment did it, not a command.
//! * **patrol scrub** ([`crate::scrub`]) — the repair loop: on its
//!   period the controller re-reads every protected row (real reads,
//!   real cost), rewrites any row that needed correction (real writes —
//!   which also reset the row's retention/imprint hold clocks), and
//!   proactively rewrites wear-hot scratch rows so the backend's
//!   rotation machinery moves them to spares *before* they fail.
//!
//! With the controller disabled (i.e. not constructed) nothing in this
//! module runs: backends, cost model and Fig 6 goldens are bit-identical
//! to the pre-controller stack.
//!
//! The controller is itself a [`BulkBackend`], so wrapping is the whole
//! integration — callers keep issuing the same row ops:
//!
//! ```
//! use felim_arch::{
//!     BulkBackend, ControllerConfig, DriftSpec, FeramBackend, ReliabilityController, RowId,
//! };
//!
//! let inner = FeramBackend::tiny();
//! let config = ControllerConfig::protected(DriftSpec::quiet(42), 300.0);
//! let mut mem = ReliabilityController::new(inner, config);
//!
//! let words = mem.geometry().row_words();
//! mem.write_row(RowId(7), &vec![0xDEAD_BEEF; words])?;   // encodes SECDED side-band
//! mem.tick(600.0)?;                                      // 10 min of drift + a patrol pass
//! assert_eq!(mem.read_row(RowId(7))?[0], 0xDEAD_BEEF);   // decoded (and repaired) on read
//! assert!(mem.controller_stats().scrub_passes >= 1);
//! # Ok::<(), felim_arch::ArchError>(())
//! ```

use crate::drift::{DriftProcess, DriftSpec};
use crate::ecc::RowCode;
use crate::fault::ReliabilityStats;
use crate::geometry::{MemoryGeometry, RowId};
use crate::scrub::{PatrolScrubber, ScrubConfig};
use crate::stats::ExecStats;
use crate::{ArchError, BulkBackend};
use serde::Serialize;
use std::collections::HashMap;

/// What the controller runs: ECC on/off, an optional scrub schedule, and
/// the drift environment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ControllerConfig {
    /// Keep a SECDED side-band per written row, check on every read.
    pub ecc: bool,
    /// Patrol-scrub schedule; `None` disables scrubbing.
    pub scrub: Option<ScrubConfig>,
    /// The storage fault environment.
    pub drift: DriftSpec,
}

impl ControllerConfig {
    /// Full protection: ECC plus a patrol pass every `scrub_period_s`.
    pub fn protected(drift: DriftSpec, scrub_period_s: f64) -> Self {
        Self {
            ecc: true,
            scrub: Some(ScrubConfig::every(scrub_period_s)),
            drift,
        }
    }

    /// ECC only — detect and correct, never repair in place.
    pub fn ecc_only(drift: DriftSpec) -> Self {
        Self {
            ecc: true,
            scrub: None,
            drift,
        }
    }

    /// Neither ECC nor scrub: the drift environment runs against a bare
    /// backend — the ablation baseline that quantifies silent corruption.
    pub fn unprotected(drift: DriftSpec) -> Self {
        Self {
            ecc: false,
            scrub: None,
            drift,
        }
    }
}

/// Counters kept by the controller itself (the wrapped backend keeps its
/// own [`ReliabilityStats`] and [`ExecStats`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ControllerStats {
    /// Data bits repaired by SECDED on reads and scrub passes.
    pub corrected_bits: u64,
    /// Check-bit upsets absorbed (data was never wrong).
    pub corrected_check_bits: u64,
    /// Words that decoded uncorrectable (each is also surfaced to the
    /// caller as [`ArchError::Uncorrectable`]).
    pub uncorrectable_words: u64,
    /// Completed patrol passes.
    pub scrub_passes: u64,
    /// Rows rewritten by the patrol (corrections + hot-row rotation).
    pub scrub_rewrites: u64,
    /// Drift clock ticks taken.
    pub drift_ticks: u64,
    /// Storage bits the drift process flipped.
    pub drift_flips: u64,
}

impl ControllerStats {
    fn note_corrected(&mut self, bits: u64) {
        self.corrected_bits += bits;
        felim_telemetry::counter("arch.ecc.corrected").add(bits);
    }

    fn note_uncorrectable(&mut self, words: u64) {
        self.uncorrectable_words += words;
        felim_telemetry::counter("arch.ecc.uncorrectable").add(words);
    }

    /// Appends every counter to a state snapshot, in declaration order.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use crate::snapshot::put_u64;
        for v in [
            self.corrected_bits,
            self.corrected_check_bits,
            self.uncorrectable_words,
            self.scrub_passes,
            self.scrub_rewrites,
            self.drift_ticks,
            self.drift_flips,
        ] {
            put_u64(out, v);
        }
    }

    /// Decodes counters written by [`ControllerStats::encode_state`].
    /// `None` on short input.
    pub fn decode_state(buf: &[u8], pos: &mut usize) -> Option<ControllerStats> {
        use crate::snapshot::take_u64;
        Some(ControllerStats {
            corrected_bits: take_u64(buf, pos)?,
            corrected_check_bits: take_u64(buf, pos)?,
            uncorrectable_words: take_u64(buf, pos)?,
            scrub_passes: take_u64(buf, pos)?,
            scrub_rewrites: take_u64(buf, pos)?,
            drift_ticks: take_u64(buf, pos)?,
            drift_flips: take_u64(buf, pos)?,
        })
    }
}

/// Point-in-time health of a protected memory, exported for the serving
/// layer's replica manager: failover decisions compare these signals
/// against configurable thresholds (see `felim-serve`'s
/// `ReplicationConfig`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ControllerHealth {
    /// Words that decoded uncorrectable — each one also surfaced to a
    /// caller as [`ArchError::Uncorrectable`].
    pub uncorrectable_words: u64,
    /// Data bits SECDED repaired (a leading indicator: correction load
    /// rises before escalations start).
    pub corrected_bits: u64,
    /// Rows the patrol rewrote (corrections plus hot-row rotation).
    pub scrub_rewrites: u64,
    /// Storage bits the drift environment flipped.
    pub drift_flips: u64,
    /// Worst wear fraction across all drift-tracked rows, in `[0, 1]`.
    pub max_wear_fraction: f64,
}

/// A [`BulkBackend`] wrapper that adds SECDED ECC, time-driven storage
/// drift, and patrol scrubbing. See the module docs for the division of
/// labour against [`DegradationPolicy`](crate::fault::DegradationPolicy).
#[derive(Debug, Clone)]
pub struct ReliabilityController<B: BulkBackend> {
    inner: B,
    config: ControllerConfig,
    drift: DriftProcess,
    scrubber: Option<PatrolScrubber>,
    /// SECDED side-bands for every row written through the controller.
    codes: HashMap<u64, RowCode>,
    stats: ControllerStats,
}

impl<B: BulkBackend> ReliabilityController<B> {
    /// Wraps `inner` under `config`.
    pub fn new(inner: B, config: ControllerConfig) -> Self {
        let drift = DriftProcess::new(config.drift.clone());
        let scrubber = config.scrub.map(PatrolScrubber::new);
        Self {
            inner,
            config,
            drift,
            scrubber,
            codes: HashMap::new(),
            stats: ControllerStats::default(),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Mutable access to the wrapped backend — for maintenance paths
    /// that live on the concrete type (e.g. clearing a command log
    /// between batches). Mutating row *contents* through this handle
    /// bypasses the SECDED side-band and will surface as corruption on
    /// the next protected read.
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Unwraps the controller, returning the backend.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// The configuration in force.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The controller's own counters.
    pub fn controller_stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// The drift process (clock, flip totals).
    pub fn drift(&self) -> &DriftProcess {
        &self.drift
    }

    /// The patrol scrubber, if scrubbing is enabled.
    pub fn scrubber(&self) -> Option<&PatrolScrubber> {
        self.scrubber.as_ref()
    }

    /// Current health signals, for replica managers deciding whether
    /// this memory should keep serving as a primary.
    pub fn health(&self) -> ControllerHealth {
        let mut max_wear_fraction: f64 = 0.0;
        for row in self.drift.tracked_rows() {
            max_wear_fraction = max_wear_fraction.max(self.inner.wear_fraction(row));
        }
        ControllerHealth {
            uncorrectable_words: self.stats.uncorrectable_words,
            corrected_bits: self.stats.corrected_bits,
            scrub_rewrites: self.stats.scrub_rewrites,
            drift_flips: self.stats.drift_flips,
            max_wear_fraction,
        }
    }

    /// Re-encodes the side-band for a row that now holds fresh data and
    /// restarts its drift clocks.
    fn protect(&mut self, row: RowId) -> Result<(), ArchError> {
        self.drift.note_write(row);
        if !self.config.ecc {
            return Ok(());
        }
        match self.inner.peek_row(row)? {
            Some(stored) => {
                self.codes.insert(row.0, RowCode::encode(&stored));
            }
            None => {
                // The backend either holds implicit zeros or exposes no
                // raw storage; encode over zeros in the first case and
                // drop protection in the second (`peek_row` cannot
                // distinguish them — both decode every all-zero read as
                // clean, so the conservative choice is identical).
                let zeros = vec![0u64; self.inner.geometry().row_words()];
                self.codes.insert(row.0, RowCode::encode(&zeros));
            }
        }
        Ok(())
    }

    /// Runs the SECDED check over freshly read data, repairing in place.
    /// Uncorrectable words escalate as [`ArchError::Uncorrectable`].
    fn check_read(&mut self, row: RowId, data: &mut [u64]) -> Result<(), ArchError> {
        if !self.config.ecc {
            return Ok(());
        }
        let Some(code) = self.codes.get(&row.0) else {
            return Ok(());
        };
        let outcome = code.check_row(data);
        self.stats.corrected_check_bits += outcome.corrected_check_bits;
        if outcome.corrected_bits > 0 {
            self.stats.note_corrected(outcome.corrected_bits);
        }
        if !outcome.is_correctable() {
            self.stats
                .note_uncorrectable(outcome.uncorrectable_words.len() as u64);
            return Err(ArchError::Uncorrectable {
                row: row.0,
                words: outcome.uncorrectable_words,
            });
        }
        Ok(())
    }

    /// Advances process time by `dt_s`: drift upsets land in storage,
    /// then any due patrol passes run.
    ///
    /// # Errors
    ///
    /// Propagates backend errors from the decay/scrub row traffic.
    /// Uncorrectable rows found *by the patrol* do not error — they are
    /// counted and left for the owning read to escalate.
    pub fn tick(&mut self, dt_s: f64) -> Result<(), ArchError> {
        self.drift.tick(dt_s);
        self.stats.drift_ticks += 1;
        felim_telemetry::counter("arch.drift.ticks").inc();
        let words = self.inner.geometry().row_words();
        for row in self.drift.tracked_rows() {
            let wear = self.inner.wear_fraction(row);
            if let Some(mask) = self.drift.sample_row(row, words, dt_s, wear) {
                self.inner.decay_row(row, &mask)?;
            }
        }
        self.stats.drift_flips = self.drift.flips_injected();
        if let Some(scrubber) = self.scrubber.as_mut() {
            scrubber.advance(dt_s);
            self.run_due_scrub_passes()?;
        }
        Ok(())
    }

    fn run_due_scrub_passes(&mut self) -> Result<(), ArchError> {
        loop {
            let tracked = self.drift.tracked_rows();
            let Some(scrubber) = self.scrubber.as_mut() else {
                return Ok(());
            };
            match scrubber.begin_pass(tracked.len()) {
                Some((start, count)) => {
                    for i in 0..count {
                        let row = tracked[(start + i) % tracked.len()];
                        self.scrub_row(row)?;
                    }
                }
                // Due with nothing tracked: the pass was consumed empty —
                // keep draining periods. Not due: done.
                None if scrubber.due() => continue,
                None => break,
            }
        }
        if let Some(scrubber) = self.scrubber.as_ref() {
            self.stats.scrub_passes = scrubber.passes();
            self.stats.scrub_rewrites = scrubber.rewrites();
        }
        Ok(())
    }

    /// One patrol visit: read the row (real cost), repair what SECDED
    /// can, rewrite when repair or wear-rotation calls for it.
    fn scrub_row(&mut self, row: RowId) -> Result<(), ArchError> {
        let mut data = self.inner.read_row(row)?;
        let hot = self
            .config
            .scrub
            .is_some_and(|s| self.inner.wear_fraction(row) >= s.hot_row_fraction);
        let mut rewrite = hot;
        if self.config.ecc {
            if let Some(code) = self.codes.get(&row.0) {
                let outcome = code.check_row(&mut data);
                self.stats.corrected_check_bits += outcome.corrected_check_bits;
                if outcome.corrected_bits > 0 {
                    self.stats.note_corrected(outcome.corrected_bits);
                }
                if !outcome.is_correctable() {
                    // Known-bad row: counted here, escalated by the next
                    // host read. Rewriting would bless the corruption.
                    self.stats
                        .note_uncorrectable(outcome.uncorrectable_words.len() as u64);
                    return Ok(());
                }
                rewrite |= !outcome.is_clean();
            }
        } else {
            // Without ECC the patrol cannot see rot: it degrades to a
            // refresh loop, rewriting each visited row as-read.
            rewrite = true;
        }
        if rewrite {
            self.write_row(row, &data)?;
            if let Some(scrubber) = self.scrubber.as_mut() {
                scrubber.note_rewrite();
            }
        }
        Ok(())
    }
}

impl<B: BulkBackend> BulkBackend for ReliabilityController<B> {
    fn geometry(&self) -> &MemoryGeometry {
        self.inner.geometry()
    }

    fn write_row(&mut self, row: RowId, data: &[u64]) -> Result<(), ArchError> {
        self.inner.write_row(row, data)?;
        self.protect(row)
    }

    fn install_row(&mut self, row: RowId, data: &[u64]) -> Result<(), ArchError> {
        self.inner.install_row(row, data)?;
        self.protect(row)
    }

    fn read_row(&mut self, row: RowId) -> Result<Vec<u64>, ArchError> {
        let mut data = self.inner.read_row(row)?;
        self.drift.note_read(row);
        self.check_read(row, &mut data)?;
        Ok(data)
    }

    fn not(&mut self, src: RowId, dst: RowId) -> Result<(), ArchError> {
        self.inner.not(src, dst)?;
        self.drift.note_read(src);
        self.protect(dst)
    }

    fn and(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError> {
        self.inner.and(a, b, dst)?;
        self.drift.note_read(a);
        self.drift.note_read(b);
        self.protect(dst)
    }

    fn or(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError> {
        self.inner.or(a, b, dst)?;
        self.drift.note_read(a);
        self.drift.note_read(b);
        self.protect(dst)
    }

    fn nand(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError> {
        self.inner.nand(a, b, dst)?;
        self.drift.note_read(a);
        self.drift.note_read(b);
        self.protect(dst)
    }

    fn nor(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError> {
        self.inner.nor(a, b, dst)?;
        self.drift.note_read(a);
        self.drift.note_read(b);
        self.protect(dst)
    }

    fn xor(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError> {
        // Delegate so the wrapped technology keeps its native composition
        // (and its native cost); the scratch intermediates stay outside
        // the protected set — they never outlive the op.
        self.inner.xor(a, b, dst)?;
        self.drift.note_read(a);
        self.drift.note_read(b);
        self.protect(dst)
    }

    fn xnor(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError> {
        self.inner.xnor(a, b, dst)?;
        self.drift.note_read(a);
        self.drift.note_read(b);
        self.protect(dst)
    }

    fn copy(&mut self, src: RowId, dst: RowId) -> Result<(), ArchError> {
        self.inner.copy(src, dst)?;
        self.drift.note_read(src);
        self.protect(dst)
    }

    fn scratch_rows(&self, count: usize) -> Vec<RowId> {
        self.inner.scratch_rows(count)
    }

    fn stats(&self) -> &ExecStats {
        self.inner.stats()
    }

    fn reliability(&self) -> Option<&ReliabilityStats> {
        self.inner.reliability()
    }

    fn finish(&mut self) -> ExecStats {
        self.inner.finish()
    }

    fn tech_name(&self) -> &'static str {
        self.inner.tech_name()
    }

    fn peek_row(&self, row: RowId) -> Result<Option<Vec<u64>>, ArchError> {
        self.inner.peek_row(row)
    }

    fn decay_row(&mut self, row: RowId, mask: &[u64]) -> Result<bool, ArchError> {
        self.inner.decay_row(row, mask)
    }

    fn wear_fraction(&self, row: RowId) -> f64 {
        self.inner.wear_fraction(row)
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        use crate::snapshot::{put_bool, put_bytes, put_u64, put_u8};
        let inner = self.inner.snapshot_state()?;
        let mut out = Vec::new();
        put_u8(&mut out, 1); // controller snapshot version
        put_bool(&mut out, self.config.ecc);
        self.drift.encode_state(&mut out);
        match self.scrubber.as_ref() {
            Some(s) => {
                put_bool(&mut out, true);
                s.encode_state(&mut out);
            }
            None => put_bool(&mut out, false),
        }
        let mut rows: Vec<u64> = self.codes.keys().copied().collect();
        rows.sort_unstable();
        put_u64(&mut out, rows.len() as u64);
        for row in rows {
            put_u64(&mut out, row);
            put_bytes(&mut out, self.codes[&row].checks());
        }
        self.stats.encode_state(&mut out);
        put_bytes(&mut out, &inner);
        Some(out)
    }

    fn restore_state(&mut self, snapshot: &[u8]) -> bool {
        use crate::snapshot::{take_bool, take_bytes, take_u64, take_u8};
        let buf = snapshot;
        let mut pos = 0usize;
        // Decode everything into temporaries first so a malformed
        // snapshot leaves this controller untouched.
        let Some(1) = take_u8(buf, &mut pos) else {
            return false;
        };
        if take_bool(buf, &mut pos) != Some(self.config.ecc) {
            return false;
        }
        let mut drift = self.drift.clone();
        if drift.restore_state(buf, &mut pos).is_none() {
            return false;
        }
        let scrubber = match take_bool(buf, &mut pos) {
            Some(true) => {
                let Some(mut s) = self.scrubber.clone() else {
                    return false;
                };
                if s.restore_state(buf, &mut pos).is_none() {
                    return false;
                }
                Some(s)
            }
            Some(false) => {
                if self.scrubber.is_some() {
                    return false;
                }
                None
            }
            None => return false,
        };
        let Some(n_codes) = take_u64(buf, &mut pos) else {
            return false;
        };
        // Each code entry needs at least a row key and a length prefix.
        if ((buf.len() - pos) as u64) / 16 < n_codes {
            return false;
        }
        let mut codes = HashMap::with_capacity(n_codes as usize);
        // One SECDED check byte per 64-bit word.
        let check_bytes = self.inner.geometry().row_words();
        for _ in 0..n_codes {
            let Some(row) = take_u64(buf, &mut pos) else {
                return false;
            };
            let Some(checks) = take_bytes(buf, &mut pos) else {
                return false;
            };
            if checks.len() != check_bytes {
                return false;
            }
            codes.insert(row, RowCode::from_checks(checks));
        }
        let Some(stats) = ControllerStats::decode_state(buf, &mut pos) else {
            return false;
        };
        let Some(inner_bytes) = take_bytes(buf, &mut pos) else {
            return false;
        };
        if pos != buf.len() {
            return false;
        }
        if !self.inner.restore_state(&inner_bytes) {
            return false;
        }
        self.drift = drift;
        self.scrubber = scrubber;
        self.codes = codes;
        self.stats = stats;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feram_backend::FeramBackend;

    fn row_of(words: usize, word: u64) -> Vec<u64> {
        vec![word; words]
    }

    fn protected(period_s: f64) -> ReliabilityController<FeramBackend> {
        let spec = DriftSpec::accelerated(42, 390.0, 0.0);
        ReliabilityController::new(
            FeramBackend::tiny(),
            ControllerConfig::protected(spec, period_s),
        )
    }

    #[test]
    fn clean_path_is_transparent() {
        let mut c = protected(3600.0);
        let words = c.geometry().row_words();
        let (a, b, d) = (RowId(0), RowId(1), RowId(2));
        c.write_row(a, &row_of(words, 0b1100)).unwrap();
        c.write_row(b, &row_of(words, 0b1010)).unwrap();
        c.nand(a, b, d).unwrap();
        assert_eq!(c.read_row(d).unwrap()[0], !0b1000u64);
        assert!(c.controller_stats().corrected_bits == 0);
    }

    #[test]
    fn single_bit_upsets_are_corrected_on_read() {
        let mut c = protected(3600.0);
        let words = c.geometry().row_words();
        let data = row_of(words, 0xDEAD_BEEF_F00D_CAFE);
        c.write_row(RowId(0), &data).unwrap();
        // One environmental flip.
        let mut mask = vec![0u64; words];
        mask[5] = 1 << 17;
        assert!(c.decay_row(RowId(0), &mask).unwrap());
        assert_eq!(c.read_row(RowId(0)).unwrap(), data, "repaired");
        assert_eq!(c.controller_stats().corrected_bits, 1);
    }

    #[test]
    fn double_bit_upsets_escalate_as_uncorrectable() {
        let mut c = protected(3600.0);
        let words = c.geometry().row_words();
        c.write_row(RowId(0), &row_of(words, 0xAAAA)).unwrap();
        let mut mask = vec![0u64; words];
        mask[2] = (1 << 3) | (1 << 40);
        c.decay_row(RowId(0), &mask).unwrap();
        match c.read_row(RowId(0)) {
            Err(ArchError::Uncorrectable { row: 0, words }) => assert_eq!(words, vec![2]),
            other => panic!("expected Uncorrectable, got {other:?}"),
        }
        assert_eq!(c.controller_stats().uncorrectable_words, 1);
    }

    #[test]
    fn scrub_repairs_before_upsets_accumulate() {
        // Two single-bit upsets in the same word, separated by a scrub
        // pass: each alone is correctable, together they would not be.
        let mut c = protected(10.0);
        let words = c.geometry().row_words();
        let data = row_of(words, 0x1234_5678);
        c.write_row(RowId(0), &data).unwrap();
        let mut mask = vec![0u64; words];
        mask[7] = 1 << 9;
        c.decay_row(RowId(0), &mask).unwrap();
        // The patrol pass lands between the two upsets and rewrites.
        c.tick(10.0).unwrap();
        assert!(c.scrubber().unwrap().passes() >= 1);
        assert!(c.controller_stats().scrub_rewrites >= 1);
        mask[7] = 1 << 45; // second upset, after repair
        c.decay_row(RowId(0), &mask).unwrap();
        assert_eq!(c.read_row(RowId(0)).unwrap(), data, "never two at once");
    }

    #[test]
    fn skipping_scrub_lets_upsets_accumulate() {
        // The same two upsets without the intervening patrol: double-bit.
        let spec = DriftSpec::accelerated(42, 390.0, 0.0);
        let mut c = ReliabilityController::new(
            FeramBackend::tiny(),
            ControllerConfig::ecc_only(spec),
        );
        let words = c.geometry().row_words();
        c.write_row(RowId(0), &row_of(words, 0x1234_5678)).unwrap();
        let mut mask = vec![0u64; words];
        mask[7] = 1 << 9;
        c.decay_row(RowId(0), &mask).unwrap();
        c.tick(10.0).unwrap(); // no scrubber: nothing repairs
        mask[7] = 1 << 45;
        c.decay_row(RowId(0), &mask).unwrap();
        assert!(matches!(
            c.read_row(RowId(0)),
            Err(ArchError::Uncorrectable { .. })
        ));
    }

    #[test]
    fn drift_ticks_decay_storage_through_the_backend() {
        let mut c = protected(1e9); // scrub effectively off
        let words = c.geometry().row_words();
        c.write_row(RowId(0), &row_of(words, 0xFFFF_0000_FFFF_0000)).unwrap();
        // Hours at 390 K under the accelerated spec: flips must land.
        for _ in 0..10 {
            c.tick(3600.0).unwrap();
        }
        assert!(c.drift().flips_injected() > 0);
        assert_eq!(c.controller_stats().drift_ticks, 10);
        // And the flips are visible in raw storage.
        let raw = c.peek_row(RowId(0)).unwrap().unwrap();
        assert_ne!(raw, row_of(words, 0xFFFF_0000_FFFF_0000));
    }

    #[test]
    fn controller_results_match_bare_backend_when_quiet() {
        // A quiet environment and no faults: the controller must neither
        // change results nor charge differently than the bare backend.
        let mut bare = FeramBackend::tiny();
        let mut c = ReliabilityController::new(
            FeramBackend::tiny(),
            ControllerConfig::protected(DriftSpec::quiet(7), 3600.0),
        );
        let words = bare.geometry().row_words();
        for m in [&mut bare as &mut dyn BulkBackend, &mut c] {
            m.write_row(RowId(0), &row_of(words, 0xF0F0)).unwrap();
            m.write_row(RowId(1), &row_of(words, 0x0FF0)).unwrap();
            m.xor(RowId(0), RowId(1), RowId(2)).unwrap();
        }
        assert_eq!(
            bare.read_row(RowId(2)).unwrap(),
            c.read_row(RowId(2)).unwrap()
        );
        assert_eq!(bare.stats().total_cycles(), c.stats().total_cycles());
        assert_eq!(
            bare.stats().total_energy_nj(),
            c.stats().total_energy_nj()
        );
    }

    #[test]
    fn hot_rows_are_rewritten_for_rotation() {
        use crate::fault::{DegradationPolicy, FaultSpec};
        // Tiny wear budget so scratch rows go hot fast, rotating policy.
        let backend = FeramBackend::tiny()
            .with_faults(FaultSpec::none(3).with_wear_budget(50))
            .with_policy(DegradationPolicy {
                scratch_rotation_fraction: 0.2,
                ..DegradationPolicy::none()
            });
        let mut c = ReliabilityController::new(
            backend,
            ControllerConfig::protected(DriftSpec::quiet(3), 1.0),
        );
        let words = c.geometry().row_words();
        c.write_row(RowId(0), &row_of(words, 0xAA)).unwrap();
        c.write_row(RowId(1), &row_of(words, 0x55)).unwrap();
        // Hammer a destination row hot, then let patrols rotate it.
        for _ in 0..15 {
            c.xor(RowId(0), RowId(1), RowId(2)).unwrap();
        }
        c.tick(1.0).unwrap();
        assert!(c.controller_stats().scrub_rewrites > 0, "hot rows rewritten");
        assert_eq!(c.read_row(RowId(2)).unwrap()[0], 0xAA ^ 0x55);
    }

    #[test]
    fn scrub_without_ecc_degrades_to_refresh() {
        let spec = DriftSpec::quiet(5);
        let mut c = ReliabilityController::new(FeramBackend::tiny(), ControllerConfig {
            ecc: false,
            scrub: Some(ScrubConfig::every(1.0)),
            drift: spec,
        });
        let words = c.geometry().row_words();
        c.write_row(RowId(0), &row_of(words, 1)).unwrap();
        c.write_row(RowId(1), &row_of(words, 2)).unwrap();
        c.tick(1.0).unwrap();
        // Every tracked row was rewritten blind.
        assert_eq!(c.controller_stats().scrub_rewrites, 2);
    }

    #[test]
    fn tick_composes_deterministically() {
        let run = || {
            let mut c = protected(100.0);
            let words = c.geometry().row_words();
            c.write_row(RowId(0), &row_of(words, 0xABCD)).unwrap();
            c.write_row(RowId(1), &row_of(words, 0x1234)).unwrap();
            for _ in 0..20 {
                c.tick(60.0).unwrap();
            }
            (
                c.peek_row(RowId(0)).unwrap(),
                c.controller_stats().clone(),
            )
        };
        let (a1, s1) = run();
        let (a2, s2) = run();
        assert_eq!(a1, a2);
        assert_eq!(s1, s2);
    }
}
