//! Deterministic patrol scrubbing schedule.
//!
//! A patrol scrubber walks the protected rows on a fixed period,
//! re-reading each row through the SECDED decoder and rewriting any row
//! with a correctable upset — refreshing its retention clock and
//! resetting its imprint hold time before errors can accumulate into
//! uncorrectable double-bit words. This module holds the *schedule*
//! (period, walk cursor, pass counters); the walk itself is executed by
//! [`ReliabilityController`](crate::controller::ReliabilityController),
//! which owns the backend and the ECC side-band.
//!
//! The scrubber also fronts wear-levelling: rows whose wear crosses
//! `hot_row_fraction` of the endurance budget are rewritten even when
//! clean, which routes them through the backend's scratch-rotation /
//! spare-pool machinery *before* they die and need retirement.

use serde::Serialize;

/// Patrol-scrub configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ScrubConfig {
    /// Seconds of process time between the starts of two passes.
    pub period_s: f64,
    /// Rows visited per pass; `0` means every tracked row each pass.
    pub rows_per_pass: usize,
    /// Rewrite (and thereby rotate, under a rotating policy) any row
    /// whose wear fraction exceeds this, even if it decodes clean.
    /// `>= 1.0` disables proactive hot-row rewrites.
    pub hot_row_fraction: f64,
}

impl ScrubConfig {
    /// A full-array pass every `period_s` seconds, with hot-row
    /// rotation at 50 % of the wear budget.
    ///
    /// # Panics
    ///
    /// Panics unless `period_s` is positive and finite.
    pub fn every(period_s: f64) -> Self {
        assert!(
            period_s.is_finite() && period_s > 0.0,
            "scrub period must be positive, got {period_s}"
        );
        Self {
            period_s,
            rows_per_pass: 0,
            hot_row_fraction: 0.5,
        }
    }
}

/// Schedule state of the patrol scrubber.
#[derive(Debug, Clone)]
pub struct PatrolScrubber {
    config: ScrubConfig,
    /// Process time accumulated since the last pass began.
    since_pass_s: f64,
    /// Completed passes.
    passes: u64,
    /// Rows rewritten across all passes (correctable upsets + hot rows).
    rewrites: u64,
    /// Walk cursor for partial (`rows_per_pass > 0`) passes.
    cursor: usize,
}

impl PatrolScrubber {
    /// Creates an idle scrubber; the first pass becomes due after one
    /// full period.
    pub fn new(config: ScrubConfig) -> Self {
        assert!(
            config.period_s.is_finite() && config.period_s > 0.0,
            "scrub period must be positive, got {}",
            config.period_s
        );
        Self {
            config,
            since_pass_s: 0.0,
            passes: 0,
            rewrites: 0,
            cursor: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ScrubConfig {
        &self.config
    }

    /// Completed passes.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Rows rewritten across all passes.
    pub fn rewrites(&self) -> u64 {
        self.rewrites
    }

    /// Advances the scrub clock.
    pub fn advance(&mut self, dt_s: f64) {
        assert!(dt_s.is_finite() && dt_s >= 0.0, "bad scrub dt {dt_s}");
        self.since_pass_s += dt_s;
    }

    /// Is a pass due?
    pub fn due(&self) -> bool {
        self.since_pass_s >= self.config.period_s
    }

    /// Consumes one due period and returns the slice of the row walk
    /// this pass covers, as `(start_index, count)` over a tracked-row
    /// list of length `tracked`; `count == tracked` for full passes.
    /// Returns `None` when no pass is due or there is nothing to walk.
    pub fn begin_pass(&mut self, tracked: usize) -> Option<(usize, usize)> {
        if !self.due() {
            return None;
        }
        self.since_pass_s -= self.config.period_s;
        self.passes += 1;
        felim_telemetry::counter("arch.scrub.passes").inc();
        if tracked == 0 {
            return None;
        }
        if self.config.rows_per_pass == 0 || self.config.rows_per_pass >= tracked {
            return Some((0, tracked));
        }
        let start = self.cursor % tracked;
        self.cursor = (start + self.config.rows_per_pass) % tracked;
        Some((start, self.config.rows_per_pass))
    }

    /// Records one row rewrite performed by the executing controller.
    pub fn note_rewrite(&mut self) {
        self.rewrites += 1;
        felim_telemetry::counter("arch.scrub.rewrites").inc();
    }

    /// Appends the schedule state (clock, counters, cursor) to a state
    /// snapshot. The config travels too, so a restore can verify the
    /// receiving scrubber runs the same schedule.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_f64, put_u64};
        put_f64(out, self.config.period_s);
        put_u64(out, self.config.rows_per_pass as u64);
        put_f64(out, self.config.hot_row_fraction);
        put_f64(out, self.since_pass_s);
        put_u64(out, self.passes);
        put_u64(out, self.rewrites);
        put_u64(out, self.cursor as u64);
    }

    /// Restores schedule state written by
    /// [`PatrolScrubber::encode_state`]. `None` (scrubber unchanged) on
    /// malformed input or a config that differs from this scrubber's.
    pub fn restore_state(&mut self, buf: &[u8], pos: &mut usize) -> Option<()> {
        use crate::snapshot::{take_f64, take_u64};
        let mut probe = *pos;
        let period_s = take_f64(buf, &mut probe)?;
        let rows_per_pass = take_u64(buf, &mut probe)? as usize;
        let hot_row_fraction = take_f64(buf, &mut probe)?;
        if period_s.to_bits() != self.config.period_s.to_bits()
            || rows_per_pass != self.config.rows_per_pass
            || hot_row_fraction.to_bits() != self.config.hot_row_fraction.to_bits()
        {
            return None;
        }
        let since_pass_s = take_f64(buf, &mut probe)?;
        let passes = take_u64(buf, &mut probe)?;
        let rewrites = take_u64(buf, &mut probe)?;
        let cursor = take_u64(buf, &mut probe)? as usize;
        self.since_pass_s = since_pass_s;
        self.passes = passes;
        self.rewrites = rewrites;
        self.cursor = cursor;
        *pos = probe;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_fire_on_the_period() {
        let mut s = PatrolScrubber::new(ScrubConfig::every(10.0));
        s.advance(9.9);
        assert!(!s.due());
        assert_eq!(s.begin_pass(4), None);
        s.advance(0.2);
        assert!(s.due());
        assert_eq!(s.begin_pass(4), Some((0, 4)));
        assert_eq!(s.passes(), 1);
        assert!(!s.due(), "the due period was consumed");
    }

    #[test]
    fn long_sleeps_yield_multiple_passes() {
        let mut s = PatrolScrubber::new(ScrubConfig::every(5.0));
        s.advance(17.5);
        let mut fired = 0;
        while s.begin_pass(2).is_some() {
            fired += 1;
        }
        assert_eq!(fired, 3, "17.5 s / 5 s period");
    }

    #[test]
    fn partial_passes_walk_a_rotating_window() {
        let cfg = ScrubConfig {
            rows_per_pass: 3,
            ..ScrubConfig::every(1.0)
        };
        let mut s = PatrolScrubber::new(cfg);
        s.advance(3.0);
        assert_eq!(s.begin_pass(8), Some((0, 3)));
        assert_eq!(s.begin_pass(8), Some((3, 3)));
        assert_eq!(s.begin_pass(8), Some((6, 3)));
        assert_eq!(s.begin_pass(8), None, "period consumed");
    }

    #[test]
    fn empty_walks_still_count_the_pass() {
        let mut s = PatrolScrubber::new(ScrubConfig::every(1.0));
        s.advance(1.0);
        assert_eq!(s.begin_pass(0), None);
        assert_eq!(s.passes(), 1);
    }

    #[test]
    fn rewrites_accumulate() {
        let mut s = PatrolScrubber::new(ScrubConfig::every(1.0));
        s.note_rewrite();
        s.note_rewrite();
        assert_eq!(s.rewrites(), 2);
    }

    #[test]
    #[should_panic(expected = "scrub period must be positive")]
    fn rejects_zero_period() {
        let _ = ScrubConfig::every(0.0);
    }
}
