//! Time-advancing, physics-derived storage fault processes.
//!
//! PR 1's [`FaultSpec`](crate::fault::FaultSpec) drives faults from
//! *static* per-operation rates; real FeRAM errors accumulate with
//! *time*. This module closes the device-to-architecture loop: per-row
//! flip probabilities are derived from `felim-ferro`'s calibrated
//! models instead of hand-picked constants —
//!
//! * **retention** — the stretched-exponential decay of
//!   [`RetentionModel`], applied as an incremental Weibull hazard over
//!   each tick of hold time since the row's last write
//!   ([`RetentionModel::bit_failure_hazard`]);
//! * **imprint** — the logarithmic V_c shift of [`ImprintModel`] eating
//!   the sense margin ([`ImprintModel::bit_upset_probability`]),
//!   differenced per tick the same way;
//! * **read disturb** — the QNRO tail: each sense since the last write
//!   nudges the stored minority decision, at a per-read rate that can
//!   be taken straight from a Monte-Carlo
//!   [`MarginReport`] sense tail;
//! * **wear acceleration** — rows near their Fig 4(f) endurance budget
//!   decay faster: every probability above is scaled by
//!   `1 + wear_acceleration · wear_fraction`.
//!
//! A [`DriftProcess`] owns the clock: the campaign driver (or the
//! [`ReliabilityController`](crate::controller::ReliabilityController))
//! steps it with `tick(dt)`, and the process deterministically samples
//! per-row XOR masks from one seed, so a drift campaign reproduces bit
//! for bit.

use crate::geometry::RowId;
use felim_cell::margin::MarginReport;
use felim_ferro::imprint::ImprintModel;
use felim_ferro::retention::RetentionModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::HashMap;

/// The drift environment: which physical processes run, how hot the die
/// is, and the single seed the whole fault stream derives from.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DriftSpec {
    /// Seed of the deterministic flip sampler.
    pub seed: u64,
    /// Die temperature, K (the Fig 7 stack point is 352 K).
    pub temperature_k: f64,
    /// Retention decay model (stretched-exponential, Arrhenius).
    pub retention: RetentionModel,
    /// Fraction of remanent polarization below which a bit no longer
    /// senses — feeds the retention hazard.
    pub sense_floor: f64,
    /// Imprint (V_c shift) model.
    pub imprint: ImprintModel,
    /// Sense margin the imprint shift competes against, V.
    pub sense_margin_v: f64,
    /// Per-bit flip probability for each QNRO sense since the last
    /// write — the Monte-Carlo margin study's sense-failure tail.
    pub disturb_per_read: f64,
    /// Extra decay multiplier at full wear: probabilities scale by
    /// `1 + wear_acceleration · wear_fraction`.
    pub wear_acceleration: f64,
}

impl DriftSpec {
    /// A quiet environment: calibrated HfO₂ models at room temperature,
    /// no disturb tail. At realistic timescales this injects nothing —
    /// the paper's reliability claims, restated as a fault process.
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            temperature_k: 300.0,
            retention: RetentionModel::hfo2_default(),
            sense_floor: 0.5,
            imprint: ImprintModel::hfo2_default(),
            sense_margin_v: 0.4,
            disturb_per_read: 0.0,
            wear_acceleration: 1.0,
        }
    }

    /// An accelerated-stress environment for campaigns: the same model
    /// *shapes*, but with the retention constant compressed so that
    /// decades of decay happen over simulated seconds, the die held at
    /// `temperature_k`, and a nonzero QNRO disturb tail. This is the
    /// lab's bake-oven protocol, not a different physics.
    pub fn accelerated(seed: u64, temperature_k: f64, disturb_per_read: f64) -> Self {
        Self {
            seed,
            temperature_k,
            retention: RetentionModel {
                // Compress τ(300 K) from ~8·10¹¹ s to 2·10⁹ s: at a
                // 390 K bake the per-bit retention figure of merit drops
                // to ~12 simulated hours, so hour-scale ticks sit on the
                // rising part of the failure CDF instead of decades out.
                tau_300k_s: 2e9,
                ..RetentionModel::hfo2_default()
            },
            sense_floor: 0.5,
            imprint: ImprintModel {
                // Imprint onset compressed to match.
                onset_s: 1e-3,
                ..ImprintModel::hfo2_default()
            },
            sense_margin_v: 0.4,
            disturb_per_read: disturb_per_read.clamp(0.0, 1.0),
            wear_acceleration: 4.0,
        }
    }

    /// Sets the disturb tail from a Monte-Carlo margin study: the
    /// worst-case sense-failure rate becomes the per-read flip
    /// probability.
    pub fn with_margin_tail(mut self, report: &MarginReport) -> Self {
        self.disturb_per_read = report.sense_failure_rate().clamp(0.0, 1.0);
        self
    }
}

/// Per-row drift bookkeeping.
#[derive(Debug, Clone, Default)]
struct RowDrift {
    /// Process-clock time of the row's last write, s.
    last_write_s: f64,
    /// QNRO senses absorbed since the last write.
    reads_since_write: u64,
    /// Reads already charged to the disturb process.
    reads_charged: u64,
}

/// The seeded, time-stepped storage fault process.
///
/// Rows become *tracked* when [`DriftProcess::note_write`] is called
/// (they now hold data that can decay); [`DriftProcess::tick`] advances
/// the clock, and [`DriftProcess::sample_row`] draws each tracked row's
/// XOR upset mask for the elapsed interval.
#[derive(Debug, Clone)]
pub struct DriftProcess {
    spec: DriftSpec,
    rng: StdRng,
    /// Bernoulli draws consumed from `rng` so far. The RNG itself cannot
    /// be serialised, but the stream is pure `seed → draws`, so a state
    /// snapshot stores this count and a restore replays it: reseed, then
    /// discard exactly this many draws. Every RNG consumption MUST go
    /// through [`DriftProcess::bernoulli`] to keep the count exact.
    draws: u64,
    now_s: f64,
    rows: HashMap<u64, RowDrift>,
    ticks: u64,
    flips_injected: u64,
}

impl DriftProcess {
    /// Creates a process at `t = 0` with no tracked rows.
    ///
    /// # Panics
    ///
    /// Panics unless `disturb_per_read` is a probability and
    /// `sense_floor ∈ (0, 1)`.
    pub fn new(spec: DriftSpec) -> Self {
        assert!(
            (0.0..=1.0).contains(&spec.disturb_per_read),
            "disturb rate must be a probability"
        );
        assert!(
            spec.sense_floor > 0.0 && spec.sense_floor < 1.0,
            "sense floor must be in (0, 1)"
        );
        let rng = StdRng::seed_from_u64(spec.seed);
        Self {
            spec,
            rng,
            draws: 0,
            now_s: 0.0,
            rows: HashMap::new(),
            ticks: 0,
            flips_injected: 0,
        }
    }

    /// One counted Bernoulli draw. Mirrors `Rng::gen_bool` exactly:
    /// `p >= 1` is certainly true *without* consuming the stream (the
    /// `Bernoulli` always-true fast path), anything else costs one
    /// 64-bit draw.
    fn bernoulli(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        self.draws += 1;
        self.rng.gen_bool(p)
    }

    /// The spec in force.
    pub fn spec(&self) -> &DriftSpec {
        &self.spec
    }

    /// Process-clock time, s.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Ticks taken so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Total storage bits flipped by the process so far.
    pub fn flips_injected(&self) -> u64 {
        self.flips_injected
    }

    /// Marks `row` as freshly written: its hold time and disturb count
    /// restart, and it is tracked from now on.
    pub fn note_write(&mut self, row: RowId) {
        let state = self.rows.entry(row.0).or_default();
        state.last_write_s = self.now_s;
        state.reads_since_write = 0;
        state.reads_charged = 0;
    }

    /// Records one QNRO sense of `row` (only tracked rows accumulate
    /// disturb — an unwritten row has nothing to disturb).
    pub fn note_read(&mut self, row: RowId) {
        if let Some(state) = self.rows.get_mut(&row.0) {
            state.reads_since_write += 1;
        }
    }

    /// Tracked rows in ascending order — the deterministic iteration
    /// order every sampling pass must use.
    pub fn tracked_rows(&self) -> Vec<RowId> {
        let mut rows: Vec<RowId> = self.rows.keys().map(|&r| RowId(r)).collect();
        rows.sort();
        rows
    }

    /// Advances the process clock by `dt_s`. The caller then samples
    /// each tracked row (in [`DriftProcess::tracked_rows`] order) with
    /// [`DriftProcess::sample_row`] for the upset mask of this interval.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is negative or non-finite.
    pub fn tick(&mut self, dt_s: f64) {
        assert!(dt_s.is_finite() && dt_s >= 0.0, "bad tick dt {dt_s}");
        self.now_s += dt_s;
        self.ticks += 1;
    }

    /// The per-bit upset probability `row` accumulated over the last
    /// tick interval `(now − dt, now]`, given its current wear
    /// fraction. Pure — the sampling draw happens in
    /// [`DriftProcess::sample_row`].
    pub fn row_flip_probability(&self, row: RowId, dt_s: f64, wear_fraction: f64) -> f64 {
        let Some(state) = self.rows.get(&row.0) else {
            return 0.0;
        };
        let t_k = self.spec.temperature_k;
        let hold_end = (self.now_s - state.last_write_s).max(0.0);
        let hold_start = (hold_end - dt_s).max(0.0);
        // Retention: incremental Weibull hazard over the tick.
        let p_ret = self.spec.retention.bit_failure_hazard(
            hold_start,
            hold_end,
            t_k,
            self.spec.sense_floor,
        );
        // Imprint: the V_c-shift tail differenced over the tick.
        let p_imp_end = self
            .spec
            .imprint
            .bit_upset_probability(hold_end, t_k, self.spec.sense_margin_v);
        let p_imp_start = self
            .spec
            .imprint
            .bit_upset_probability(hold_start, t_k, self.spec.sense_margin_v);
        let p_imp = (p_imp_end - p_imp_start).max(0.0);
        // QNRO disturb: every not-yet-charged sense contributes.
        let new_reads = state.reads_since_write - state.reads_charged;
        let p_disturb = 1.0 - (1.0 - self.spec.disturb_per_read).powi(new_reads.min(1 << 30) as i32);
        // Independent processes compose as survival products; wear
        // acceleration scales the combined hazard.
        let survive = (1.0 - p_ret) * (1.0 - p_imp) * (1.0 - p_disturb);
        let p = 1.0 - survive;
        let wear_scale = 1.0 + self.spec.wear_acceleration * wear_fraction.clamp(0.0, 1.0);
        (p * wear_scale).clamp(0.0, 1.0)
    }

    /// Draws the upset XOR mask for one tracked row over the last tick:
    /// each of the row's `words × 64` bits flips with
    /// [`DriftProcess::row_flip_probability`]. Returns `None` when no
    /// bit flipped (the overwhelmingly common case). Marks the row's
    /// pending disturb reads as charged.
    pub fn sample_row(
        &mut self,
        row: RowId,
        words: usize,
        dt_s: f64,
        wear_fraction: f64,
    ) -> Option<Vec<u64>> {
        let p = self.row_flip_probability(row, dt_s, wear_fraction);
        if let Some(state) = self.rows.get_mut(&row.0) {
            state.reads_charged = state.reads_since_write;
        }
        if p <= 0.0 {
            return None;
        }
        let mut mask = vec![0u64; words];
        let mut flips = 0u64;
        for word in &mut mask {
            for bit in 0..64 {
                if self.bernoulli(p) {
                    *word |= 1 << bit;
                    flips += 1;
                }
            }
        }
        if flips == 0 {
            return None;
        }
        self.flips_injected += flips;
        felim_telemetry::counter("arch.drift.flips").add(flips);
        Some(mask)
    }

    /// Appends the full process state (clock, counters, per-row
    /// bookkeeping sorted by row, and the RNG draw count) to a state
    /// snapshot. The spec seed travels for validation; the restored
    /// process must have been built from the same spec.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_f64, put_u64};
        put_u64(out, self.spec.seed);
        put_u64(out, self.draws);
        put_f64(out, self.now_s);
        put_u64(out, self.ticks);
        put_u64(out, self.flips_injected);
        let mut keys: Vec<u64> = self.rows.keys().copied().collect();
        keys.sort_unstable();
        put_u64(out, keys.len() as u64);
        for k in keys {
            let state = &self.rows[&k];
            put_u64(out, k);
            put_f64(out, state.last_write_s);
            put_u64(out, state.reads_since_write);
            put_u64(out, state.reads_charged);
        }
    }

    /// Restores state written by [`DriftProcess::encode_state`]: the RNG
    /// is reseeded from the spec and fast-forwarded by the recorded draw
    /// count, so subsequent [`DriftProcess::sample_row`] calls produce
    /// masks bit-identical to the snapshotted process's. `None` (process
    /// unchanged) on malformed input or a seed mismatch.
    pub fn restore_state(&mut self, buf: &[u8], pos: &mut usize) -> Option<()> {
        use crate::snapshot::{take_f64, take_u64};
        let mut probe = *pos;
        if take_u64(buf, &mut probe)? != self.spec.seed {
            return None;
        }
        let draws = take_u64(buf, &mut probe)?;
        let now_s = take_f64(buf, &mut probe)?;
        let ticks = take_u64(buf, &mut probe)?;
        let flips_injected = take_u64(buf, &mut probe)?;
        let n = take_u64(buf, &mut probe)?;
        if ((buf.len() - probe) as u64) / 32 < n {
            return None;
        }
        let mut rows = HashMap::with_capacity(n as usize);
        for _ in 0..n {
            let key = take_u64(buf, &mut probe)?;
            let state = RowDrift {
                last_write_s: take_f64(buf, &mut probe)?,
                reads_since_write: take_u64(buf, &mut probe)?,
                reads_charged: take_u64(buf, &mut probe)?,
            };
            rows.insert(key, state);
        }
        let mut rng = StdRng::seed_from_u64(self.spec.seed);
        for _ in 0..draws {
            let _: u64 = rng.gen();
        }
        self.rng = rng;
        self.draws = draws;
        self.now_s = now_s;
        self.ticks = ticks;
        self.flips_injected = flips_injected;
        self.rows = rows;
        *pos = probe;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot(seed: u64) -> DriftSpec {
        DriftSpec::accelerated(seed, 390.0, 1e-4)
    }

    #[test]
    fn quiet_spec_injects_nothing_at_operating_conditions() {
        let mut p = DriftProcess::new(DriftSpec::quiet(1));
        p.note_write(RowId(0));
        // A full simulated day at 300 K.
        p.tick(86_400.0);
        assert_eq!(p.sample_row(RowId(0), 16, 86_400.0, 0.0), None);
        assert_eq!(p.flips_injected(), 0);
    }

    #[test]
    fn accelerated_spec_decays_held_rows() {
        let mut p = DriftProcess::new(hot(7));
        p.note_write(RowId(3));
        // Hours at 390 K under the compressed τ: decay must fire.
        let mut total = 0u64;
        for _ in 0..10 {
            p.tick(3600.0);
            if let Some(mask) = p.sample_row(RowId(3), 16, 3600.0, 0.0) {
                total += mask.iter().map(|w| w.count_ones() as u64).sum::<u64>();
            }
        }
        assert!(total > 0, "accelerated retention must flip bits");
        assert_eq!(p.flips_injected(), total);
        assert_eq!(p.ticks(), 10);
    }

    #[test]
    fn untracked_rows_never_flip() {
        let mut p = DriftProcess::new(hot(3));
        p.tick(1e6);
        assert_eq!(p.row_flip_probability(RowId(9), 1e6, 1.0), 0.0);
        assert_eq!(p.sample_row(RowId(9), 16, 1e6, 1.0), None);
    }

    #[test]
    fn rewrites_reset_the_hold_clock() {
        let mut p = DriftProcess::new(hot(5));
        p.note_write(RowId(0));
        p.tick(7200.0);
        let aged = p.row_flip_probability(RowId(0), 7200.0, 0.0);
        assert!(aged > 0.0);
        p.note_write(RowId(0)); // refresh
        p.tick(1.0);
        let fresh = p.row_flip_probability(RowId(0), 1.0, 0.0);
        assert!(fresh < aged / 10.0, "{fresh} vs {aged}");
    }

    #[test]
    fn reads_accumulate_disturb_and_are_charged_once() {
        let mut p = DriftProcess::new(DriftSpec {
            disturb_per_read: 0.01,
            ..DriftSpec::quiet(11)
        });
        p.note_write(RowId(0));
        for _ in 0..50 {
            p.note_read(RowId(0));
        }
        p.tick(1e-9);
        let with_reads = p.row_flip_probability(RowId(0), 1e-9, 0.0);
        assert!(with_reads > 0.3, "50 reads at 1 % each: {with_reads}");
        let _ = p.sample_row(RowId(0), 4, 1e-9, 0.0);
        // Charged: the next tick sees no *new* reads.
        p.tick(1e-9);
        assert!(p.row_flip_probability(RowId(0), 1e-9, 0.0) < 1e-6);
    }

    #[test]
    fn wear_accelerates_decay() {
        let mut p = DriftProcess::new(hot(13));
        p.note_write(RowId(0));
        p.tick(3600.0);
        let fresh = p.row_flip_probability(RowId(0), 3600.0, 0.0);
        let worn = p.row_flip_probability(RowId(0), 3600.0, 1.0);
        assert!(worn > 2.0 * fresh, "{worn} vs {fresh}");
    }

    #[test]
    fn process_is_deterministic_per_seed() {
        let run = |seed| {
            let mut p = DriftProcess::new(hot(seed));
            p.note_write(RowId(0));
            p.note_write(RowId(1));
            let mut masks = Vec::new();
            for _ in 0..5 {
                p.tick(3600.0);
                for row in p.tracked_rows() {
                    masks.push(p.sample_row(row, 16, 3600.0, 0.2));
                }
            }
            masks
        };
        assert_eq!(run(2), run(2));
        assert_ne!(run(2), run(3));
    }

    #[test]
    fn margin_tail_feeds_disturb() {
        use felim_cell::margin::MarginReport;
        let report = MarginReport {
            samples: 100,
            tba_yield: 0.995,
            not_yield: 0.999,
            worst_level_separation: 1.5,
            mean_level_separation: 2.0,
        };
        let spec = DriftSpec::quiet(1).with_margin_tail(&report);
        assert!((spec.disturb_per_read - 0.005).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bad tick dt")]
    fn rejects_negative_ticks() {
        DriftProcess::new(DriftSpec::quiet(0)).tick(-1.0);
    }

    #[test]
    fn restored_process_replays_identical_masks() {
        // Age a process far enough that its RNG stream has been consumed,
        // snapshot it, restore into a fresh process, then run both
        // forward: every subsequent mask must match bit for bit.
        let mut original = DriftProcess::new(hot(21));
        original.note_write(RowId(0));
        original.note_write(RowId(5));
        for _ in 0..6 {
            original.tick(3600.0);
            for row in original.tracked_rows() {
                let _ = original.sample_row(row, 16, 3600.0, 0.1);
            }
        }
        let mut snap = Vec::new();
        original.encode_state(&mut snap);

        let mut restored = DriftProcess::new(hot(21));
        let mut pos = 0;
        restored.restore_state(&snap, &mut pos).expect("restore");
        assert_eq!(pos, snap.len(), "consume exactly what was written");
        assert_eq!(restored.now_s(), original.now_s());
        assert_eq!(restored.ticks(), original.ticks());
        assert_eq!(restored.flips_injected(), original.flips_injected());

        for _ in 0..6 {
            original.tick(3600.0);
            restored.tick(3600.0);
            for row in original.tracked_rows() {
                assert_eq!(
                    original.sample_row(row, 16, 3600.0, 0.1),
                    restored.sample_row(row, 16, 3600.0, 0.1),
                    "row {row:?} diverged after restore"
                );
            }
        }

        // A seed mismatch must refuse, leaving the target untouched.
        let mut wrong = DriftProcess::new(hot(22));
        let mut pos = 0;
        assert!(wrong.restore_state(&snap, &mut pos).is_none());
        assert_eq!(pos, 0);
    }
}
