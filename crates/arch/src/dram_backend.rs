//! Ambit-style in-DRAM bulk-bitwise execution.
//!
//! Logic runs in designated compute rows (`T0`–`T2`), control rows (`C0` =
//! all zeros, `C1` = all ones) and dual-contact-cell rows (`DCC`), exactly
//! as in Seshadri et al.: because TRA destroys its operands and only works
//! in the designated rows, every logic operation pays AAP copies to stage
//! its operands — the overhead the paper's 2T-nC design eliminates.
//!
//! Cost model (from Section VI): `AAP = ACTIVATE + ACTIVATE + PRECHARGE`,
//! 22.6 nJ per activate, 0.32 nJ per precharge, 1 cycle per primitive,
//! plus whole-region refresh every 64 ms.

use crate::command::Command;
use crate::energy::{EnergyModel, LatencyModel};
use crate::engine::{majority_words, RowStore};
use crate::geometry::{MemoryGeometry, RowId};
use crate::stats::ExecStats;
use crate::{ArchError, BulkBackend};

/// Number of rows reserved at the top of the address space for compute
/// (T0–T2), control (C0, C1), DCC and general scratch.
const RESERVED_ROWS: u64 = 16;

/// The Ambit-style DRAM backend.
#[derive(Debug, Clone)]
pub struct DramBackend {
    geometry: MemoryGeometry,
    store: RowStore,
    energy: EnergyModel,
    latency: LatencyModel,
    stats: ExecStats,
    refreshed: bool,
    command_log: Option<Vec<Command>>,
}

impl DramBackend {
    /// Creates a backend over the given geometry with the paper's energy
    /// and latency constants.
    pub fn new(geometry: MemoryGeometry) -> Self {
        let mut store = RowStore::new(geometry);
        let mut backend = Self {
            geometry,
            energy: EnergyModel::dram(),
            latency: LatencyModel::paper_default(),
            stats: ExecStats::new(),
            refreshed: false,
            store: RowStore::new(geometry),
            command_log: None,
        };
        // Control rows hold their constants from initialisation on.
        store
            .fill(backend.c0(), 0)
            .expect("control row C0 in range");
        store
            .fill(backend.c1(), !0)
            .expect("control row C1 in range");
        backend.store = store;
        backend
    }

    /// The paper's 8 GB configuration.
    pub fn default_8gb() -> Self {
        Self::new(MemoryGeometry::paper_8gb())
    }

    /// A small instance for tests.
    pub fn tiny() -> Self {
        Self::new(MemoryGeometry::tiny())
    }

    fn reserved_base(&self) -> u64 {
        self.geometry.total_rows() - RESERVED_ROWS
    }

    fn t(&self, i: u64) -> RowId {
        RowId(self.reserved_base() + i) // T0..T2
    }

    fn c0(&self) -> RowId {
        RowId(self.reserved_base() + 3)
    }

    fn c1(&self) -> RowId {
        RowId(self.reserved_base() + 4)
    }

    fn dcc(&self) -> RowId {
        RowId(self.reserved_base() + 5)
    }

    /// First data row that user code must not exceed.
    pub fn first_reserved_row(&self) -> RowId {
        RowId(self.reserved_base())
    }

    fn issue(&mut self, cmd: Command) {
        self.stats.record(
            cmd.class(),
            self.latency.cycles(&cmd),
            self.energy.energy_nj(&cmd),
        );
        if let Some(log) = &mut self.command_log {
            log.push(cmd);
        }
    }

    /// Enables command-sequence logging (for inspection and tests).
    pub fn with_command_log(mut self) -> Self {
        self.command_log = Some(Vec::new());
        self
    }

    /// The logged command sequence (empty slice if logging is off).
    pub fn command_log(&self) -> &[Command] {
        self.command_log.as_deref().unwrap_or(&[])
    }

    /// Empties the command log (no-op when logging is off). Batch
    /// dispatchers call this between batches so each batch's log — and
    /// therefore its makespan replay — stands alone.
    pub fn clear_command_log(&mut self) {
        if let Some(log) = &mut self.command_log {
            log.clear();
        }
    }

    /// AAP copy: ACTIVATE(src) + RowClone(dst) + PRECHARGE.
    fn aap_copy(&mut self, src: RowId, dst: RowId) -> Result<(), ArchError> {
        self.issue(Command::Activate(src));
        self.issue(Command::RowClone { dst });
        self.issue(Command::Precharge);
        self.store.copy_row(src, dst)
    }

    /// AAP with TRA: MAJORITY of (T0,T1,T2) cloned into `dst`; all three
    /// compute rows are destroyed (left holding the result).
    fn aap_tra(&mut self, dst: RowId) -> Result<(), ArchError> {
        let (t0, t1, t2) = (self.t(0), self.t(1), self.t(2));
        self.issue(Command::TripleRowActivate(t0, t1, t2));
        self.issue(Command::RowClone { dst });
        self.issue(Command::Precharge);
        self.store.combine3(t0, t1, t2, dst, majority_words)?;
        for t in [t0, t1, t2] {
            self.store.copy_row(dst, t)?;
        }
        Ok(())
    }

    /// The MAJ-based two-operand op: stage `a`, `b` and the control row,
    /// then TRA into `dst` — 4 AAPs total (12 cycles, 182.1 nJ).
    fn maj_op(&mut self, a: RowId, b: RowId, control: RowId, dst: RowId) -> Result<(), ArchError> {
        self.aap_copy(a, self.t(0))?;
        self.aap_copy(b, self.t(1))?;
        self.aap_copy(control, self.t(2))?;
        self.aap_tra(dst)
    }

    /// Refresh statistics for a full-scale run of `runtime_s` seconds over
    /// `live_rows` materialised rows: one whole-region refresh sweep per
    /// elapsed 64 ms window. Exposed separately so workload drivers can
    /// apply refresh to *extrapolated* runtimes.
    pub fn refresh_stats(
        energy: &EnergyModel,
        latency: &LatencyModel,
        runtime_s: f64,
        live_rows: u64,
    ) -> ExecStats {
        let mut stats = ExecStats::new();
        let windows = (runtime_s / latency.refresh_interval_s()).floor() as u64;
        if windows > 0 && live_rows > 0 {
            let cmd = Command::Refresh { rows: live_rows };
            for _ in 0..windows {
                stats.record(cmd.class(), latency.cycles(&cmd), energy.energy_nj(&cmd));
            }
        }
        stats
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// The latency model in use.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Rows materialised so far (the refresh-liable region).
    pub fn live_rows(&self) -> u64 {
        self.store.touched_rows()
    }
}

impl BulkBackend for DramBackend {
    fn geometry(&self) -> &MemoryGeometry {
        &self.geometry
    }

    fn write_row(&mut self, row: RowId, data: &[u64]) -> Result<(), ArchError> {
        self.issue(Command::WriteRow(row));
        self.store.write(row, data)
    }

    fn install_row(&mut self, row: RowId, data: &[u64]) -> Result<(), ArchError> {
        self.store.write(row, data)
    }

    fn read_row(&mut self, row: RowId) -> Result<Vec<u64>, ArchError> {
        self.issue(Command::ReadRow(row));
        self.store.read(row)
    }

    fn not(&mut self, src: RowId, dst: RowId) -> Result<(), ArchError> {
        // AAP(src → DCC); AAP(DCC̄ → dst): the dual-contact cell exposes
        // the complemented plate on the second activation.
        self.aap_copy(src, self.dcc())?;
        let dcc = self.dcc();
        self.issue(Command::Activate(dcc));
        self.issue(Command::RowClone { dst });
        self.issue(Command::Precharge);
        self.store.map(dcc, dst, |w| !w)
    }

    fn and(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError> {
        self.maj_op(a, b, self.c0(), dst)
    }

    fn or(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError> {
        self.maj_op(a, b, self.c1(), dst)
    }

    fn nand(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError> {
        let t3 = RowId(self.reserved_base() + 6);
        self.and(a, b, t3)?;
        self.not(t3, dst)
    }

    fn nor(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError> {
        let t3 = RowId(self.reserved_base() + 6);
        self.or(a, b, t3)?;
        self.not(t3, dst)
    }

    fn xor(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError> {
        // or(and(a, !b), and(!a, b)) — Ambit's composition.
        let na = RowId(self.reserved_base() + 7);
        let nb = RowId(self.reserved_base() + 8);
        let x = RowId(self.reserved_base() + 9);
        let y = RowId(self.reserved_base() + 10);
        self.not(a, na)?;
        self.not(b, nb)?;
        self.and(a, nb, x)?;
        self.and(na, b, y)?;
        self.or(x, y, dst)
    }

    fn copy(&mut self, src: RowId, dst: RowId) -> Result<(), ArchError> {
        self.aap_copy(src, dst)
    }

    fn scratch_rows(&self, count: usize) -> Vec<RowId> {
        assert!(count <= 5, "at most 5 general scratch rows");
        (0..count as u64)
            .map(|i| RowId(self.reserved_base() + 11 + i))
            .collect()
    }

    fn stats(&self) -> &ExecStats {
        &self.stats
    }

    fn finish(&mut self) -> ExecStats {
        if !self.refreshed {
            let runtime = self.latency.seconds(self.stats.total_cycles());
            let refresh = Self::refresh_stats(
                &self.energy,
                &self.latency,
                runtime,
                self.store.touched_rows(),
            );
            self.stats.merge(&refresh);
            self.refreshed = true;
        }
        self.stats.clone()
    }

    fn tech_name(&self) -> &'static str {
        "1T-1C DRAM (Ambit AAP)"
    }

    fn peek_row(&self, row: RowId) -> Result<Option<Vec<u64>>, ArchError> {
        Ok(self.store.row(row)?.map(<[u64]>::to_vec))
    }

    fn decay_row(&mut self, row: RowId, mask: &[u64]) -> Result<bool, ArchError> {
        if mask.len() != self.geometry.row_words() {
            return Err(ArchError::RowSizeMismatch {
                expected: self.geometry.row_words(),
                got: mask.len(),
            });
        }
        // Charge-leakage upset: flip the stored bits without issuing any
        // command or charging the cost model.
        let Some(stored) = self.store.row(row)? else {
            return Ok(false);
        };
        let decayed: Vec<u64> = stored.iter().zip(mask).map(|(w, m)| w ^ m).collect();
        self.store.write(row, &decayed)?;
        Ok(true)
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        use crate::snapshot::{put_bool, put_u64, put_u8};
        let mut out = Vec::new();
        put_u8(&mut out, 1); // DRAM snapshot version
        put_u64(&mut out, self.geometry.total_rows());
        put_u64(&mut out, self.geometry.row_words() as u64);
        self.store.encode_state(&mut out);
        self.stats.encode_state(&mut out);
        put_bool(&mut out, self.refreshed);
        Some(out)
    }

    fn restore_state(&mut self, snapshot: &[u8]) -> bool {
        use crate::snapshot::{take_bool, take_u64, take_u8};
        let buf = snapshot;
        let mut pos = 0usize;
        let Some(1) = take_u8(buf, &mut pos) else {
            return false;
        };
        if take_u64(buf, &mut pos) != Some(self.geometry.total_rows())
            || take_u64(buf, &mut pos) != Some(self.geometry.row_words() as u64)
        {
            return false;
        }
        let mut store = self.store.clone();
        if store.restore_state(buf, &mut pos).is_none() {
            return false;
        }
        let Some(stats) = ExecStats::decode_state(buf, &mut pos) else {
            return false;
        };
        let Some(refreshed) = take_bool(buf, &mut pos) else {
            return false;
        };
        if pos != buf.len() {
            return false;
        }
        self.store = store;
        self.stats = stats;
        self.refreshed = refreshed;
        if let Some(log) = self.command_log.as_mut() {
            log.clear();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CommandClass;

    fn backend() -> DramBackend {
        DramBackend::tiny()
    }

    fn row_of(backend: &DramBackend, word: u64) -> Vec<u64> {
        vec![word; backend.geometry().row_words()]
    }

    #[test]
    fn and_or_not_functional() {
        let mut m = backend();
        let (a, b, d) = (RowId(0), RowId(1), RowId(2));
        m.write_row(a, &row_of(&m, 0b1100)).unwrap();
        m.write_row(b, &row_of(&m, 0b1010)).unwrap();
        m.and(a, b, d).unwrap();
        assert_eq!(m.read_row(d).unwrap()[0], 0b1000);
        m.or(a, b, d).unwrap();
        assert_eq!(m.read_row(d).unwrap()[0], 0b1110);
        m.not(a, d).unwrap();
        assert_eq!(m.read_row(d).unwrap()[0], !0b1100u64);
        m.nand(a, b, d).unwrap();
        assert_eq!(m.read_row(d).unwrap()[0], !0b1000u64);
        m.nor(a, b, d).unwrap();
        assert_eq!(m.read_row(d).unwrap()[0], !0b1110u64);
        m.xor(a, b, d).unwrap();
        assert_eq!(m.read_row(d).unwrap()[0], 0b0110);
    }

    #[test]
    fn operands_survive_logic_ops() {
        // The whole point of the AAP staging: user rows are only read.
        let mut m = backend();
        let (a, b, d) = (RowId(0), RowId(1), RowId(2));
        m.write_row(a, &row_of(&m, 0xDEAD)).unwrap();
        m.write_row(b, &row_of(&m, 0xBEEF)).unwrap();
        m.and(a, b, d).unwrap();
        assert_eq!(m.read_row(a).unwrap()[0], 0xDEAD);
        assert_eq!(m.read_row(b).unwrap()[0], 0xBEEF);
    }

    #[test]
    fn and_costs_four_aaps() {
        let mut m = backend();
        let (a, b, d) = (RowId(0), RowId(1), RowId(2));
        m.write_row(a, &row_of(&m, 1)).unwrap();
        m.write_row(b, &row_of(&m, 2)).unwrap();
        let before = m.stats().clone();
        m.and(a, b, d).unwrap();
        let act = m.stats().count(CommandClass::Activate) - before.count(CommandClass::Activate);
        let pre = m.stats().count(CommandClass::Precharge) - before.count(CommandClass::Precharge);
        assert_eq!(act, 8, "4 AAPs = 8 activates");
        assert_eq!(pre, 4);
        let d_cycles = m.stats().total_cycles() - before.total_cycles();
        assert_eq!(d_cycles, 12);
        let d_energy = m.stats().total_energy_nj() - before.total_energy_nj();
        assert!((d_energy - 4.0 * 45.52).abs() < 1e-9, "got {d_energy}");
    }

    #[test]
    fn not_costs_two_aaps() {
        let mut m = backend();
        m.write_row(RowId(0), &row_of(&m, 1)).unwrap();
        let before = m.stats().total_cycles();
        m.not(RowId(0), RowId(1)).unwrap();
        assert_eq!(m.stats().total_cycles() - before, 6);
    }

    #[test]
    fn copy_costs_one_aap() {
        let mut m = backend();
        m.write_row(RowId(0), &row_of(&m, 7)).unwrap();
        let before = m.stats().total_cycles();
        m.copy(RowId(0), RowId(1)).unwrap();
        assert_eq!(m.stats().total_cycles() - before, 3);
        assert_eq!(m.read_row(RowId(1)).unwrap()[0], 7);
    }

    #[test]
    fn refresh_charged_per_window() {
        let e = EnergyModel::dram();
        let l = LatencyModel::paper_default();
        // 0.5 s runtime → 7 windows of 64 ms; 100 live rows.
        let s = DramBackend::refresh_stats(&e, &l, 0.5, 100);
        assert_eq!(s.count(CommandClass::Refresh), 7);
        assert!((s.total_energy_nj() - 7.0 * 100.0 * 22.92).abs() < 1e-6);
        // Short runs refresh nothing.
        let s = DramBackend::refresh_stats(&e, &l, 0.01, 100);
        assert_eq!(s.total_cycles(), 0);
    }

    #[test]
    fn finish_adds_refresh_once() {
        let mut m = backend();
        m.write_row(RowId(0), &row_of(&m, 1)).unwrap();
        let s1 = m.finish();
        let s2 = m.finish();
        assert_eq!(s1, s2, "finish must be idempotent");
    }

    #[test]
    fn scratch_rows_are_reserved_and_disjoint() {
        let m = backend();
        let s = m.scratch_rows(5);
        assert_eq!(s.len(), 5);
        for r in &s {
            assert!(r.0 >= m.first_reserved_row().0);
            assert!(m.geometry().contains(*r));
        }
    }

    #[test]
    fn out_of_range_rows_are_typed_errors() {
        let mut m = backend();
        let far = RowId(m.geometry().total_rows() + 1);
        assert!(matches!(
            m.write_row(far, &row_of(&m, 0)),
            Err(ArchError::RowOutOfRange { .. })
        ));
        assert!(matches!(
            m.and(RowId(0), RowId(1), far),
            Err(ArchError::RowOutOfRange { .. })
        ));
    }

    #[test]
    fn tech_name_mentions_dram() {
        assert!(backend().tech_name().contains("DRAM"));
    }
}
