//! Memory geometry and row addressing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one memory row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RowId(pub u64);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row#{}", self.0)
    }
}

// Maps keyed by `RowId` serialize with the same stringified-number keys
// as maps keyed by the raw `u64`.
impl serde::JsonKey for RowId {
    fn write_key(&self, out: &mut String) {
        serde::JsonKey::write_key(&self.0, out);
    }
}

/// Geometry of the simulated memory.
///
/// The paper's configuration: 8 GB capacity, 8 KB rows, subarrays of 512
/// rows (the granularity at which compute rows are reserved and at which
/// the thermal model applies power).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Row size in bytes.
    pub row_bytes: u64,
    /// Rows per subarray.
    pub rows_per_subarray: u64,
}

impl MemoryGeometry {
    /// The paper's 8 GB / 8 KB-row configuration.
    pub fn paper_8gb() -> Self {
        Self {
            capacity_bytes: 8 << 30,
            row_bytes: 8 << 10,
            rows_per_subarray: 512,
        }
    }

    /// A small geometry for unit tests (1 MB, 1 KB rows).
    pub fn tiny() -> Self {
        Self {
            capacity_bytes: 1 << 20,
            row_bytes: 1 << 10,
            rows_per_subarray: 64,
        }
    }

    /// Validates divisibility constraints.
    ///
    /// # Errors
    ///
    /// Returns a message when the geometry is inconsistent.
    pub fn validate(&self) -> Result<(), String> {
        if self.row_bytes == 0 || !self.row_bytes.is_multiple_of(8) {
            return Err(format!(
                "row size must be a positive multiple of 8 bytes, got {}",
                self.row_bytes
            ));
        }
        if !self.capacity_bytes.is_multiple_of(self.row_bytes) {
            return Err("capacity must be a whole number of rows".into());
        }
        if self.rows_per_subarray == 0 || !self.total_rows().is_multiple_of(self.rows_per_subarray)
        {
            return Err("rows must divide evenly into subarrays".into());
        }
        Ok(())
    }

    /// Total number of rows.
    pub fn total_rows(&self) -> u64 {
        self.capacity_bytes / self.row_bytes
    }

    /// Number of 64-bit words per row.
    pub fn row_words(&self) -> usize {
        (self.row_bytes / 8) as usize
    }

    /// Number of bits per row.
    pub fn row_bits(&self) -> u64 {
        self.row_bytes * 8
    }

    /// Number of subarrays.
    pub fn subarrays(&self) -> u64 {
        self.total_rows() / self.rows_per_subarray
    }

    /// The subarray containing `row`.
    pub fn subarray_of(&self, row: RowId) -> u64 {
        row.0 / self.rows_per_subarray
    }

    /// Is `row` a valid address?
    pub fn contains(&self, row: RowId) -> bool {
        row.0 < self.total_rows()
    }

    /// Rows needed to hold `bytes` of data.
    pub fn rows_for_bytes(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.row_bytes)
    }
}

impl Default for MemoryGeometry {
    fn default() -> Self {
        Self::paper_8gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_section_vi() {
        let g = MemoryGeometry::paper_8gb();
        g.validate().unwrap();
        assert_eq!(g.capacity_bytes, 8 * 1024 * 1024 * 1024);
        assert_eq!(g.row_bytes, 8192);
        assert_eq!(g.total_rows(), 1 << 20); // 1 Mi rows
        assert_eq!(g.row_words(), 1024);
        assert_eq!(g.row_bits(), 65536);
        assert_eq!(g.subarrays(), 2048);
    }

    #[test]
    fn tiny_geometry_validates() {
        let g = MemoryGeometry::tiny();
        g.validate().unwrap();
        assert_eq!(g.total_rows(), 1024);
        assert_eq!(g.row_words(), 128);
    }

    #[test]
    fn subarray_mapping() {
        let g = MemoryGeometry::tiny();
        assert_eq!(g.subarray_of(RowId(0)), 0);
        assert_eq!(g.subarray_of(RowId(63)), 0);
        assert_eq!(g.subarray_of(RowId(64)), 1);
    }

    #[test]
    fn bounds_and_sizing() {
        let g = MemoryGeometry::tiny();
        assert!(g.contains(RowId(1023)));
        assert!(!g.contains(RowId(1024)));
        assert_eq!(g.rows_for_bytes(0), 0);
        assert_eq!(g.rows_for_bytes(1), 1);
        assert_eq!(g.rows_for_bytes(1024), 1);
        assert_eq!(g.rows_for_bytes(1025), 2);
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        let mut g = MemoryGeometry::tiny();
        g.row_bytes = 12;
        assert!(g.validate().is_err());
        let mut g = MemoryGeometry::tiny();
        g.capacity_bytes = 1000;
        assert!(g.validate().is_err());
        let mut g = MemoryGeometry::tiny();
        g.rows_per_subarray = 7;
        assert!(g.validate().is_err());
    }

    #[test]
    fn row_display() {
        assert_eq!(RowId(5).to_string(), "row#5");
    }
}
