//! Write-endurance wear tracking.
//!
//! Ferroelectric capacitors endure ~10⁶–10⁸ full write cycles (Fig 4(f));
//! a bulk-bitwise engine that funnels every result through the same
//! scratch rows would wear them out orders of magnitude before the data
//! rows. This module tracks per-row write counts and grades them against
//! an endurance budget, so workloads can check their wear profile and
//! future controllers could rotate scratch rows.

use crate::geometry::RowId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-row write counters with an endurance budget.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WearTracker {
    writes: HashMap<RowId, u64>,
    endurance_budget: u64,
}

/// Summary of a wear profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WearReport {
    /// Distinct rows ever written.
    pub rows_written: u64,
    /// Total writes recorded.
    pub total_writes: u64,
    /// Largest per-row write count.
    pub max_row_writes: u64,
    /// Fraction of the endurance budget consumed by the hottest row.
    pub worst_budget_fraction: f64,
    /// How many times the observed workload could repeat before the
    /// hottest row reaches the budget; `None` when nothing was written
    /// (an unbounded figure — JSON has no representation for infinity,
    /// so the report uses `null` rather than a sentinel number).
    pub repeatable_runs: Option<f64>,
}

impl WearTracker {
    /// A tracker with the paper's demonstrated 10⁶-cycle budget.
    pub fn new() -> Self {
        Self::with_budget(1_000_000)
    }

    /// A tracker with a custom endurance budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget is zero.
    pub fn with_budget(endurance_budget: u64) -> Self {
        assert!(endurance_budget > 0, "endurance budget must be positive");
        Self {
            writes: HashMap::new(),
            endurance_budget,
        }
    }

    /// Records one full write of `row`.
    pub fn record_write(&mut self, row: RowId) {
        *self.writes.entry(row).or_insert(0) += 1;
    }

    /// Write count of a row.
    pub fn writes(&self, row: RowId) -> u64 {
        self.writes.get(&row).copied().unwrap_or(0)
    }

    /// The endurance budget.
    pub fn budget(&self) -> u64 {
        self.endurance_budget
    }

    /// Builds the wear report.
    pub fn report(&self) -> WearReport {
        let max = self.writes.values().copied().max().unwrap_or(0);
        let total: u64 = self.writes.values().sum();
        WearReport {
            rows_written: self.writes.len() as u64,
            total_writes: total,
            max_row_writes: max,
            worst_budget_fraction: max as f64 / self.endurance_budget as f64,
            repeatable_runs: if max == 0 {
                None
            } else {
                Some(self.endurance_budget as f64 / max as f64)
            },
        }
    }

    /// Appends budget and per-row counters (sorted by row) to a state
    /// snapshot.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use crate::snapshot::put_u64;
        put_u64(out, self.endurance_budget);
        let mut rows: Vec<(RowId, u64)> = self.writes.iter().map(|(&r, &n)| (r, n)).collect();
        rows.sort();
        put_u64(out, rows.len() as u64);
        for (row, n) in rows {
            put_u64(out, row.0);
            put_u64(out, n);
        }
    }

    /// Decodes a tracker written by [`WearTracker::encode_state`].
    /// `None` on malformed input (including a zero budget).
    pub fn decode_state(buf: &[u8], pos: &mut usize) -> Option<WearTracker> {
        use crate::snapshot::take_u64;
        let endurance_budget = take_u64(buf, pos)?;
        if endurance_budget == 0 {
            return None;
        }
        let n = take_u64(buf, pos)?;
        if ((buf.len() - *pos) as u64) / 16 < n {
            return None;
        }
        let mut writes = HashMap::with_capacity(n as usize);
        for _ in 0..n {
            let row = RowId(take_u64(buf, pos)?);
            writes.insert(row, take_u64(buf, pos)?);
        }
        Some(WearTracker {
            writes,
            endurance_budget,
        })
    }

    /// Rows whose write count exceeds `fraction` of the budget — the
    /// candidates for wear-levelling rotation.
    pub fn hot_rows(&self, fraction: f64) -> Vec<RowId> {
        let threshold = (self.endurance_budget as f64 * fraction) as u64;
        let mut rows: Vec<RowId> = self
            .writes
            .iter()
            .filter(|(_, &n)| n > threshold)
            .map(|(&r, _)| r)
            .collect();
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_reports() {
        let mut w = WearTracker::with_budget(100);
        for _ in 0..10 {
            w.record_write(RowId(1));
        }
        w.record_write(RowId(2));
        assert_eq!(w.writes(RowId(1)), 10);
        assert_eq!(w.writes(RowId(3)), 0);
        let r = w.report();
        assert_eq!(r.rows_written, 2);
        assert_eq!(r.total_writes, 11);
        assert_eq!(r.max_row_writes, 10);
        assert!((r.worst_budget_fraction - 0.1).abs() < 1e-12);
        assert!((r.repeatable_runs.unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_is_immortal() {
        let w = WearTracker::new();
        let r = w.report();
        assert_eq!(r.max_row_writes, 0);
        assert_eq!(r.repeatable_runs, None);
        assert_eq!(w.budget(), 1_000_000);
    }

    #[test]
    fn wear_report_json_round_trips() {
        // Regression: `repeatable_runs` used to be a bare f64 that held
        // `f64::INFINITY` for an empty tracker — which serializes to JSON
        // `null` and then failed to parse back as a number. The unbounded
        // case must round-trip as an explicit null.
        let empty = WearTracker::new().report();
        let json = serde_json::to_string(&empty).unwrap();
        let value: serde_json::Value =
            serde_json::from_str(&json).expect("report JSON must parse");
        assert!(
            value
                .get("repeatable_runs")
                .is_some_and(|v| matches!(v, serde_json::Value::Null)),
            "unbounded runs must be an explicit null: {json}"
        );

        let mut w = WearTracker::with_budget(100);
        w.record_write(RowId(4));
        let bounded = w.report();
        let json = serde_json::to_string(&bounded).unwrap();
        let value: serde_json::Value =
            serde_json::from_str(&json).expect("report JSON must parse");
        assert_eq!(
            value.get("repeatable_runs").and_then(|v| v.as_f64()),
            Some(100.0)
        );
        assert_eq!(value.get("total_writes").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn tracker_json_uses_stringified_row_keys() {
        // The map moved from `u64` to `RowId` keys; the JSON shape must
        // not change (stringified numeric keys).
        let mut w = WearTracker::with_budget(10);
        w.record_write(RowId(3));
        w.record_write(RowId(3));
        let json = serde_json::to_string(&w).unwrap();
        assert!(json.contains(r#""writes":{"3":2}"#), "got {json}");
    }

    #[test]
    fn hot_rows_are_sorted_and_thresholded() {
        let mut w = WearTracker::with_budget(10);
        for _ in 0..9 {
            w.record_write(RowId(7));
        }
        for _ in 0..9 {
            w.record_write(RowId(3));
        }
        w.record_write(RowId(5));
        assert_eq!(w.hot_rows(0.5), vec![RowId(3), RowId(7)]);
        assert!(w.hot_rows(0.95).is_empty());
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn rejects_zero_budget() {
        let _ = WearTracker::with_budget(0);
    }
}
