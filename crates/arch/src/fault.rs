//! Deterministic fault injection and graceful-degradation policy.
//!
//! The paper's reliability story rests on the sense-margin study
//! (`felim-cell::margin`) and the endurance budget (Fig 4(f)). This
//! module turns those cell-level numbers into architecture-level fault
//! processes so the *system's* response can be exercised:
//!
//! * [`FaultSpec`] — the fault environment: per-bit flip probabilities on
//!   the write path, the host read path and the TBA sense path, plus a
//!   wear budget after which a row's cells die permanently. Everything is
//!   driven by one seed, so a campaign reproduces bit-for-bit.
//! * [`FaultInjector`] — the seeded sampler that applies a [`FaultSpec`]
//!   to row data.
//! * [`DegradationPolicy`] — what the memory controller does about
//!   faults: verify-after-write with bounded retry, triple-modular
//!   sensing/reading with majority vote, scratch-row rotation once wear
//!   crosses a configurable fraction of the budget, and row retirement
//!   with remapping into a spare pool.
//! * [`ReliabilityStats`] — ground-truth bookkeeping. Because the
//!   simulator computes the ideal result of every operation functionally,
//!   it can tell *exactly* which injected faults were corrected, which
//!   were surfaced as typed errors, and which escaped silently.
//!
//! The default policy ([`DegradationPolicy::none`]) disables every
//! mitigation, so the calibrated cost model is untouched; campaigns use
//! [`DegradationPolicy::hardened`].

use felim_cell::margin::MarginReport;
use felim_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// The fault environment for a backend, fully determined by `seed`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultSpec {
    /// Seed for the injector's deterministic noise source.
    pub seed: u64,
    /// Per-bit flip probability on every charged host/controller write.
    pub write_bitflip_rate: f64,
    /// Per-bit flip probability on every host read (transient — the
    /// stored data is unaffected).
    pub read_bitflip_rate: f64,
    /// Per-bit flip probability on each TBA sense (the minority decision
    /// landing on the wrong side of the reference — the failure mode the
    /// Monte-Carlo margin study quantifies).
    pub sense_fault_rate: f64,
    /// Writes a row survives before its cells die permanently
    /// (subsequent writes silently fail to take). `0` disables wear-out.
    pub wear_budget: u64,
}

impl FaultSpec {
    /// A fault-free environment (the injector becomes a no-op).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            write_bitflip_rate: 0.0,
            read_bitflip_rate: 0.0,
            sense_fault_rate: 0.0,
            wear_budget: 0,
        }
    }

    /// Sense faults only, at the given per-bit rate — the legacy
    /// `with_fault_injection` behaviour.
    pub fn sense_only(rate: f64, seed: u64) -> Self {
        Self {
            sense_fault_rate: rate,
            ..Self::none(seed)
        }
    }

    /// Derives a spec from a measured sense-failure rate (e.g.
    /// `1 - tba_yield` out of `felim-cell`'s `monte_carlo_margin`): the
    /// per-cell failure probability feeds the TBA sense path, a small
    /// fraction of it models the weaker disturbances on the read and
    /// write paths.
    pub fn from_failure_rate(sense_failure_rate: f64, seed: u64) -> Self {
        let p = sense_failure_rate.clamp(0.0, 1.0);
        Self {
            seed,
            write_bitflip_rate: p / 10.0,
            read_bitflip_rate: p / 10.0,
            sense_fault_rate: p,
            wear_budget: 0,
        }
    }

    /// Derives a spec from a cell-level Monte-Carlo margin study: the
    /// report's sense-failure rate (worst of the TBA and NOT yields)
    /// feeds [`FaultSpec::from_failure_rate`].
    pub fn from_margin(report: &MarginReport, seed: u64) -> Self {
        Self::from_failure_rate(report.sense_failure_rate(), seed)
    }

    /// Sets the wear budget (writes per row before permanent death).
    pub fn with_wear_budget(mut self, budget: u64) -> Self {
        self.wear_budget = budget;
        self
    }

    /// Is there anything to inject?
    pub fn is_active(&self) -> bool {
        self.write_bitflip_rate > 0.0
            || self.read_bitflip_rate > 0.0
            || self.sense_fault_rate > 0.0
            || self.wear_budget > 0
    }
}

/// The seeded sampler applying a [`FaultSpec`] to row data.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    spec: FaultSpec,
    rng: StdRng,
}

impl FaultInjector {
    /// Creates an injector; the noise stream is determined by
    /// `spec.seed`.
    ///
    /// # Panics
    ///
    /// Panics unless every rate in the spec satisfies `0 <= rate <= 1`.
    pub fn new(spec: FaultSpec) -> Self {
        for rate in [
            spec.write_bitflip_rate,
            spec.read_bitflip_rate,
            spec.sense_fault_rate,
        ] {
            assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        }
        let rng = StdRng::seed_from_u64(spec.seed);
        Self { spec, rng }
    }

    /// The spec in force.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Flips each bit of `data` with probability `rate`; returns the
    /// number of bits flipped.
    fn corrupt(&mut self, data: &mut [u64], rate: f64) -> u64 {
        if rate <= 0.0 {
            return 0;
        }
        let mut flips = 0;
        for word in data.iter_mut() {
            for bit in 0..64 {
                if self.rng.gen_bool(rate) {
                    *word ^= 1 << bit;
                    flips += 1;
                }
            }
        }
        flips
    }

    /// Applies write-path corruption in place; returns bits flipped.
    pub fn corrupt_write(&mut self, data: &mut [u64]) -> u64 {
        let rate = self.spec.write_bitflip_rate;
        self.corrupt(data, rate)
    }

    /// Applies read-path corruption in place; returns bits flipped.
    pub fn corrupt_read(&mut self, data: &mut [u64]) -> u64 {
        let rate = self.spec.read_bitflip_rate;
        self.corrupt(data, rate)
    }

    /// Applies TBA sense corruption in place; returns bits flipped.
    pub fn corrupt_sense(&mut self, data: &mut [u64]) -> u64 {
        let rate = self.spec.sense_fault_rate;
        self.corrupt(data, rate)
    }

    /// Triple-modular sampling: draws three independently corrupted
    /// copies of `truth` at `rate` and majority-votes them per bit.
    /// Returns `(voted, disagreeing_bits)` — a nonzero disagreement count
    /// means at least one transient fault was outvoted.
    fn vote3(&mut self, truth: &[u64], rate: f64) -> (Vec<u64>, u64) {
        if rate <= 0.0 {
            return (truth.to_vec(), 0);
        }
        let mut a = truth.to_vec();
        let mut b = truth.to_vec();
        let mut c = truth.to_vec();
        self.corrupt(&mut a, rate);
        self.corrupt(&mut b, rate);
        self.corrupt(&mut c, rate);
        let mut disagreements = 0;
        let voted: Vec<u64> = (0..truth.len())
            .map(|i| {
                disagreements += ((a[i] ^ b[i]) | (a[i] ^ c[i])).count_ones() as u64;
                (a[i] & b[i]) | (b[i] & c[i]) | (a[i] & c[i])
            })
            .collect();
        (voted, disagreements)
    }

    /// Majority-of-three on the TBA sense path.
    pub fn vote3_sense(&mut self, truth: &[u64]) -> (Vec<u64>, u64) {
        let rate = self.spec.sense_fault_rate;
        self.vote3(truth, rate)
    }

    /// Majority-of-three on the host read path.
    pub fn vote3_read(&mut self, truth: &[u64]) -> (Vec<u64>, u64) {
        let rate = self.spec.read_bitflip_rate;
        self.vote3(truth, rate)
    }
}

/// What the memory controller does about faults. The default
/// ([`DegradationPolicy::none`]) disables every mitigation so the
/// calibrated cycle/energy pins are untouched.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DegradationPolicy {
    /// Read back every committed row and compare against the write
    /// buffer, retrying on mismatch.
    pub verify_writes: bool,
    /// Write retries before the row is retired (or the op fails).
    pub max_write_retries: u32,
    /// Sense each TBA result three times and majority-vote.
    pub redundant_sense: bool,
    /// Issue each host read three times and majority-vote.
    pub redundant_reads: bool,
    /// Remap rows that keep failing verification into the spare pool.
    pub retire_rows: bool,
    /// Rotate a scratch row to a fresh spare once its wear crosses this
    /// fraction of the wear budget (`>= 1.0` disables rotation).
    pub scratch_rotation_fraction: f64,
}

impl DegradationPolicy {
    /// No mitigation at all: faults land where they fall. This is the
    /// default, and it leaves the cost model bit-identical to a backend
    /// without any fault machinery.
    pub fn none() -> Self {
        Self {
            verify_writes: false,
            max_write_retries: 0,
            redundant_sense: false,
            redundant_reads: false,
            retire_rows: false,
            scratch_rotation_fraction: 1.0,
        }
    }

    /// Every mitigation on: verify-after-write with 2 retries, triple
    /// sensing and reading, row retirement, scratch rotation at half the
    /// wear budget.
    pub fn hardened() -> Self {
        Self {
            verify_writes: true,
            max_write_retries: 2,
            redundant_sense: true,
            redundant_reads: true,
            retire_rows: true,
            scratch_rotation_fraction: 0.5,
        }
    }

    /// Does this policy rotate scratch rows?
    pub fn rotates_scratch(&self) -> bool {
        self.scratch_rotation_fraction < 1.0
    }

    /// Appends every knob to a state snapshot.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_bool, put_f64, put_u32};
        put_bool(out, self.verify_writes);
        put_u32(out, self.max_write_retries);
        put_bool(out, self.redundant_sense);
        put_bool(out, self.redundant_reads);
        put_bool(out, self.retire_rows);
        put_f64(out, self.scratch_rotation_fraction);
    }

    /// Decodes a policy written by [`DegradationPolicy::encode_state`].
    /// `None` on malformed input.
    pub fn decode_state(buf: &[u8], pos: &mut usize) -> Option<DegradationPolicy> {
        use crate::snapshot::{take_bool, take_f64, take_u32};
        Some(DegradationPolicy {
            verify_writes: take_bool(buf, pos)?,
            max_write_retries: take_u32(buf, pos)?,
            redundant_sense: take_bool(buf, pos)?,
            redundant_reads: take_bool(buf, pos)?,
            retire_rows: take_bool(buf, pos)?,
            scratch_rotation_fraction: take_f64(buf, pos)?,
        })
    }
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// Ground-truth reliability bookkeeping for one backend run.
///
/// Because the functional model knows the ideal result of every
/// operation, the backend can classify each fault precisely; in
/// particular [`ReliabilityStats::escaped_faults`] counts operations
/// whose committed state diverged from the ideal result *without* an
/// error being raised — the silent corruptions a campaign must drive to
/// zero.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct ReliabilityStats {
    /// Bits flipped by the injector on the write path.
    pub injected_write_flips: u64,
    /// Bits flipped by the injector on the host read path.
    pub injected_read_flips: u64,
    /// Bits flipped by the injector on the TBA sense path.
    pub injected_sense_flips: u64,
    /// Sense-path flips outvoted by triple sensing.
    pub sense_faults_corrected: u64,
    /// Read-path flips outvoted by triple reading.
    pub read_faults_corrected: u64,
    /// Write retries issued after a failed verification.
    pub write_retries: u64,
    /// Writes that verified clean only after at least one retry.
    pub corrected_writes: u64,
    /// Rows remapped to spares after persistent verification failure.
    pub retired_rows: u64,
    /// Scratch rows rotated to spares on wear.
    pub scratch_rotations: u64,
    /// Writes attempted on wear-dead rows (the write did not take).
    pub dead_row_writes: u64,
    /// Operations whose committed state diverged from the ideal result
    /// without an error being raised — silent corruptions.
    pub escaped_faults: u64,
}

impl ReliabilityStats {
    /// Records injected write-path flips (mirrored to telemetry).
    pub(crate) fn note_write_flips(&mut self, n: u64) {
        self.injected_write_flips += n;
        telemetry::counter("arch.reliability.injected_write_flips").add(n);
    }

    /// Records injected host-read-path flips (mirrored to telemetry).
    pub(crate) fn note_read_flips(&mut self, n: u64) {
        self.injected_read_flips += n;
        telemetry::counter("arch.reliability.injected_read_flips").add(n);
    }

    /// Records injected sense-path flips (mirrored to telemetry).
    pub(crate) fn note_sense_flips(&mut self, n: u64) {
        self.injected_sense_flips += n;
        telemetry::counter("arch.reliability.injected_sense_flips").add(n);
    }

    /// Records sense flips outvoted by triple sensing.
    pub(crate) fn note_sense_corrected(&mut self, n: u64) {
        self.sense_faults_corrected += n;
        telemetry::counter("arch.reliability.sense_faults_corrected").add(n);
    }

    /// Records read flips outvoted by triple reading.
    pub(crate) fn note_read_corrected(&mut self, n: u64) {
        self.read_faults_corrected += n;
        telemetry::counter("arch.reliability.read_faults_corrected").add(n);
    }

    /// Records one write retry after a failed verification.
    pub(crate) fn note_write_retry(&mut self) {
        self.write_retries += 1;
        telemetry::counter("arch.reliability.write_retries").inc();
    }

    /// Records a write that verified clean after at least one retry.
    pub(crate) fn note_corrected_write(&mut self) {
        self.corrected_writes += 1;
        telemetry::counter("arch.reliability.corrected_writes").inc();
    }

    /// Records a row remapped to a spare.
    pub(crate) fn note_retired_row(&mut self) {
        self.retired_rows += 1;
        telemetry::counter("arch.reliability.retired_rows").inc();
    }

    /// Records a worn scratch row rotated to a spare.
    pub(crate) fn note_scratch_rotation(&mut self) {
        self.scratch_rotations += 1;
        telemetry::counter("arch.reliability.scratch_rotations").inc();
    }

    /// Records a write attempted on a wear-dead row.
    pub(crate) fn note_dead_row_write(&mut self) {
        self.dead_row_writes += 1;
        telemetry::counter("arch.reliability.dead_row_writes").inc();
    }

    /// Records a silent corruption that escaped every mitigation.
    pub(crate) fn note_escaped_fault(&mut self) {
        self.escaped_faults += 1;
        telemetry::counter("arch.reliability.escaped_faults").inc();
    }

    /// Appends every counter to a state snapshot, in declaration order.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use crate::snapshot::put_u64;
        for v in [
            self.injected_write_flips,
            self.injected_read_flips,
            self.injected_sense_flips,
            self.sense_faults_corrected,
            self.read_faults_corrected,
            self.write_retries,
            self.corrected_writes,
            self.retired_rows,
            self.scratch_rotations,
            self.dead_row_writes,
            self.escaped_faults,
        ] {
            put_u64(out, v);
        }
    }

    /// Decodes counters written by [`ReliabilityStats::encode_state`].
    /// `None` on short input.
    pub fn decode_state(buf: &[u8], pos: &mut usize) -> Option<ReliabilityStats> {
        use crate::snapshot::take_u64;
        Some(ReliabilityStats {
            injected_write_flips: take_u64(buf, pos)?,
            injected_read_flips: take_u64(buf, pos)?,
            injected_sense_flips: take_u64(buf, pos)?,
            sense_faults_corrected: take_u64(buf, pos)?,
            read_faults_corrected: take_u64(buf, pos)?,
            write_retries: take_u64(buf, pos)?,
            corrected_writes: take_u64(buf, pos)?,
            retired_rows: take_u64(buf, pos)?,
            scratch_rotations: take_u64(buf, pos)?,
            dead_row_writes: take_u64(buf, pos)?,
            escaped_faults: take_u64(buf, pos)?,
        })
    }

    /// Total injected fault events (bit flips plus dead-row writes).
    pub fn injected(&self) -> u64 {
        self.injected_write_flips
            + self.injected_read_flips
            + self.injected_sense_flips
            + self.dead_row_writes
    }

    /// Total fault events the degradation machinery absorbed.
    pub fn corrected(&self) -> u64 {
        self.sense_faults_corrected
            + self.read_faults_corrected
            + self.corrected_writes
            + self.retired_rows
            + self.scratch_rotations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_deterministic_per_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(FaultSpec::sense_only(0.01, seed));
            let mut data = vec![0u64; 16];
            inj.corrupt_sense(&mut data);
            data
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let mut inj = FaultInjector::new(FaultSpec::none(1));
        let mut data = vec![0xAAu64; 8];
        assert_eq!(inj.corrupt_write(&mut data), 0);
        assert_eq!(inj.corrupt_read(&mut data), 0);
        assert_eq!(inj.corrupt_sense(&mut data), 0);
        assert!(data.iter().all(|&w| w == 0xAA));
        assert!(!FaultSpec::none(1).is_active());
    }

    #[test]
    fn corruption_count_matches_flips() {
        let mut inj = FaultInjector::new(FaultSpec::sense_only(0.05, 7));
        let mut data = vec![0u64; 64];
        let flips = inj.corrupt_sense(&mut data);
        let set_bits: u64 = data.iter().map(|w| w.count_ones() as u64).sum();
        assert_eq!(flips, set_bits);
        assert!(flips > 0, "at ~205 expected flips, zero is implausible");
    }

    #[test]
    fn vote3_outvotes_single_faults() {
        // With a modest rate, double faults on the same bit are rare, so
        // the vote should recover the truth almost always — and report
        // every disagreement it saw.
        let mut inj = FaultInjector::new(FaultSpec::sense_only(0.01, 11));
        let truth = vec![0x5555_5555_5555_5555u64; 32];
        let (voted, disagreements) = inj.vote3_sense(&truth);
        assert!(disagreements > 0, "some transient faults must occur");
        let wrong: u64 = voted
            .iter()
            .zip(&truth)
            .map(|(v, t)| (v ^ t).count_ones() as u64)
            .sum();
        assert!(
            wrong * 50 < disagreements,
            "vote must fix the vast majority ({wrong} wrong of {disagreements} seen)"
        );
    }

    #[test]
    fn from_failure_rate_clamps_and_scales() {
        let spec = FaultSpec::from_failure_rate(0.2, 9);
        assert!((spec.sense_fault_rate - 0.2).abs() < 1e-12);
        assert!((spec.write_bitflip_rate - 0.02).abs() < 1e-12);
        let spec = FaultSpec::from_failure_rate(7.0, 9);
        assert!(spec.sense_fault_rate <= 1.0);
    }

    #[test]
    #[should_panic(expected = "rate must be a probability")]
    fn rejects_bad_rates() {
        let _ = FaultInjector::new(FaultSpec::sense_only(1.5, 0));
    }

    #[test]
    fn policy_defaults_are_inert() {
        let p = DegradationPolicy::default();
        assert_eq!(p, DegradationPolicy::none());
        assert!(!p.verify_writes && !p.redundant_sense && !p.redundant_reads);
        assert!(!p.rotates_scratch());
        let h = DegradationPolicy::hardened();
        assert!(h.verify_writes && h.retire_rows && h.rotates_scratch());
    }

    #[test]
    fn reliability_stats_aggregate() {
        let stats = ReliabilityStats {
            injected_write_flips: 2,
            injected_read_flips: 3,
            injected_sense_flips: 5,
            dead_row_writes: 1,
            sense_faults_corrected: 4,
            corrected_writes: 2,
            ..Default::default()
        };
        assert_eq!(stats.injected(), 11);
        assert_eq!(stats.corrected(), 6);
    }
}
