//! # felim-arch — memory + processing-in-memory architecture simulator
//!
//! The paper's Section VI evaluation extends the pLUTo simulator with a
//! 2T-nC FeRAM model and a 64 ms-refresh DRAM model, then runs eight
//! bulk-bitwise workloads on an 8 GB memory with 8 KB rows. This crate is
//! that simulator, rebuilt from scratch:
//!
//! * [`geometry`] — capacity/row addressing (8 GB, 8 KB rows by default),
//! * [`command`] — the row-level command vocabulary (ACTIVATE, PRECHARGE,
//!   COPY, TRA, TBA, RowClone, refresh),
//! * [`energy`] — the per-command energy/latency constants from the
//!   paper's cell-level SPICE study (22.6 nJ vs 16.6 nJ ACTIVATE,
//!   0.32 nJ PRECHARGE, 1 cycle per primitive),
//! * [`engine`] — a bit-accurate functional row store, so every simulated
//!   primitive also computes its real result (verified against software),
//! * [`dram_backend`] — Ambit-style execution: logic via triple-row
//!   activation (MAJORITY) with operand copies through RowClone AAPs,
//!   DCC-based NOT, and periodic refresh,
//! * [`feram_backend`] — 2T-nC execution: in-place TBA (MINORITY) via the
//!   ACP primitive, free inverting reads, no refresh, QNRO disturb
//!   tracking with occasional write-backs,
//! * [`fault`] — deterministic fault injection (bit-flips on the read,
//!   write and TBA sense paths, wear-out cell death) plus the graceful-
//!   degradation policy knobs (verify-after-write, redundant sensing,
//!   scratch-row rotation, row retirement),
//! * [`stats`] — cycle and energy accounting with per-command breakdowns.
//!
//! Both backends implement the [`BulkBackend`] trait so workloads are
//! written once and executed on either technology. Every operation is
//! fallible: out-of-range rows, uncorrectable writes and spare-pool
//! exhaustion surface as typed [`ArchError`]s instead of panics.
//!
//! ## Quickstart
//!
//! ```
//! use felim_arch::{BulkBackend, feram_backend::FeramBackend, geometry::RowId};
//!
//! # fn main() -> Result<(), felim_arch::ArchError> {
//! let mut mem = FeramBackend::default_8gb();
//! let a = RowId(0);
//! let b = RowId(1);
//! let d = RowId(2);
//! mem.write_row(a, &vec![0b1100; 1024])?;
//! mem.write_row(b, &vec![0b1010; 1024])?;
//! mem.nand(a, b, d)?;
//! assert_eq!(mem.read_row(d)?[0], !0b1000u64);
//! assert!(mem.stats().total_energy_nj() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bandwidth;
pub mod batch;
pub mod command;
pub mod controller;
pub mod dram_backend;
pub mod drift;
pub mod ecc;
pub mod energy;
pub mod engine;
pub mod fault;
pub mod feram_backend;
pub mod geometry;
pub mod schedule;
pub mod scrub;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod wear;

pub use bandwidth::{compute_bandwidth, ComputeBandwidth};
pub use batch::{execute_batch, BatchReport, RowOp, RowOpOutput};
pub use command::Command;
pub use controller::{ControllerConfig, ControllerHealth, ControllerStats, ReliabilityController};
pub use dram_backend::DramBackend;
pub use drift::{DriftProcess, DriftSpec};
pub use ecc::{RowCheck, RowCode, WordDecode};
pub use energy::{EnergyModel, LatencyModel};
pub use fault::{DegradationPolicy, FaultInjector, FaultSpec, ReliabilityStats};
pub use feram_backend::FeramBackend;
pub use geometry::{MemoryGeometry, RowId};
pub use schedule::{schedule, ScheduleReport};
pub use scrub::{PatrolScrubber, ScrubConfig};
pub use shard::{ShardId, ShardMap};
pub use stats::{CommandClass, ExecStats};
pub use wear::{WearReport, WearTracker};

/// A technology-agnostic bulk-bitwise row-operation interface.
///
/// Rows are full memory rows (8 KB by default — 65536 bits); all logic
/// operations are bitwise across entire rows. Implementations account
/// energy and cycles for every primitive they issue and keep the row
/// contents bit-accurate.
///
/// All data-touching operations return [`ArchError`] on out-of-range
/// rows, mismatched row lengths, or — under fault injection — writes
/// that could not be completed even after retry and row retirement.
pub trait BulkBackend {
    /// The memory geometry.
    fn geometry(&self) -> &MemoryGeometry;

    /// Writes a full row of data (from the host), charged to the
    /// energy/cycle budget.
    ///
    /// # Errors
    ///
    /// [`ArchError::RowOutOfRange`] / [`ArchError::RowSizeMismatch`] for
    /// bad addresses or lengths; under fault injection with verification
    /// enabled, [`ArchError::UncorrectableWrite`] or
    /// [`ArchError::SparesExhausted`] when degradation runs out of road.
    fn write_row(&mut self, row: RowId, data: &[u64]) -> Result<(), ArchError>;

    /// Installs a row of *pre-resident* input data without charging any
    /// command cost. The paper's workloads operate on data already living
    /// in memory — loading it is not part of the evaluated kernel, and
    /// both technologies would pay the identical host-write cost anyway.
    /// Installation bypasses the fault model (the data is presumed to
    /// have been scrubbed into place before the kernel starts).
    ///
    /// # Errors
    ///
    /// [`ArchError::RowOutOfRange`] / [`ArchError::RowSizeMismatch`].
    fn install_row(&mut self, row: RowId, data: &[u64]) -> Result<(), ArchError>;

    /// Reads a full row of data (to the host).
    ///
    /// # Errors
    ///
    /// [`ArchError::RowOutOfRange`].
    fn read_row(&mut self, row: RowId) -> Result<Vec<u64>, ArchError>;

    /// `dst = NOT src`.
    ///
    /// # Errors
    ///
    /// As for [`BulkBackend::write_row`].
    fn not(&mut self, src: RowId, dst: RowId) -> Result<(), ArchError>;

    /// `dst = a AND b`.
    ///
    /// # Errors
    ///
    /// As for [`BulkBackend::write_row`].
    fn and(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError>;

    /// `dst = a OR b`.
    ///
    /// # Errors
    ///
    /// As for [`BulkBackend::write_row`].
    fn or(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError>;

    /// `dst = NOT (a AND b)`.
    ///
    /// # Errors
    ///
    /// As for [`BulkBackend::write_row`].
    fn nand(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError>;

    /// `dst = NOT (a OR b)`.
    ///
    /// # Errors
    ///
    /// As for [`BulkBackend::write_row`].
    fn nor(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError>;

    /// `dst = a XOR b` (composed from the technology's primitives).
    ///
    /// # Errors
    ///
    /// As for [`BulkBackend::write_row`].
    fn xor(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError> {
        // Default composition: xor = (a NAND (a NAND b)) NAND (b NAND (a NAND b)).
        let scratch = self.scratch_rows(3);
        let (nab, x, y) = (scratch[0], scratch[1], scratch[2]);
        self.nand(a, b, nab)?;
        self.nand(a, nab, x)?;
        self.nand(b, nab, y)?;
        self.nand(x, y, dst)
    }

    /// `dst = NOT (a XOR b)`.
    ///
    /// # Errors
    ///
    /// As for [`BulkBackend::write_row`].
    fn xnor(&mut self, a: RowId, b: RowId, dst: RowId) -> Result<(), ArchError> {
        let scratch = self.scratch_rows(4);
        let t = scratch[3];
        self.xor(a, b, t)?;
        self.not(t, dst)
    }

    /// Copies a row.
    ///
    /// # Errors
    ///
    /// As for [`BulkBackend::write_row`].
    fn copy(&mut self, src: RowId, dst: RowId) -> Result<(), ArchError>;

    /// Rows reserved for intermediate results, disjoint from data rows.
    /// Implementations guarantee at least 8.
    fn scratch_rows(&self, count: usize) -> Vec<RowId>;

    /// Execution statistics so far.
    fn stats(&self) -> &ExecStats;

    /// Reliability bookkeeping, for backends with a fault model attached
    /// (`None` otherwise).
    fn reliability(&self) -> Option<&ReliabilityStats> {
        None
    }

    /// Finalises background costs (e.g. DRAM refresh for the elapsed
    /// runtime) and returns the final statistics.
    fn finish(&mut self) -> ExecStats;

    /// Human-readable technology name.
    fn tech_name(&self) -> &'static str;

    /// Maintenance view of a row's stored bits, free of charge and free
    /// of fault injection — what an oracle (or the reliability
    /// controller's ground-truth snapshot) sees. `Ok(None)` when the
    /// backend does not expose raw storage (the default).
    ///
    /// # Errors
    ///
    /// [`ArchError::RowOutOfRange`].
    fn peek_row(&self, _row: RowId) -> Result<Option<Vec<u64>>, ArchError> {
        Ok(None)
    }

    /// XORs `mask` into the row's *stored* bits, modelling an
    /// environmental upset (retention loss, imprint, read disturb). No
    /// energy, cycles, wear or fault-injection paths are charged — the
    /// physics did this, not a command. Returns `Ok(false)` when the
    /// backend does not model raw storage (the default) or the row holds
    /// no data yet.
    ///
    /// # Errors
    ///
    /// [`ArchError::RowOutOfRange`] / [`ArchError::RowSizeMismatch`].
    fn decay_row(&mut self, _row: RowId, _mask: &[u64]) -> Result<bool, ArchError> {
        Ok(false)
    }

    /// Fraction of the row's write-endurance budget consumed so far,
    /// in `[0, 1]`; `0.0` for backends without wear tracking (the
    /// default).
    fn wear_fraction(&self, _row: RowId) -> f64 {
        0.0
    }

    /// Serialises the backend's complete behavioural state — row
    /// contents, cost accounting, wear/disturb bookkeeping, and any
    /// protection side-bands — into a self-contained byte blob that
    /// [`BulkBackend::restore_state`] can replay onto a freshly built
    /// backend of the same configuration. Returns `None` when the
    /// backend cannot guarantee a bit-identical replay (the default, and
    /// e.g. when an active fault injector holds untracked RNG state).
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Replaces this backend's state with a snapshot produced by
    /// [`BulkBackend::snapshot_state`] on an identically configured
    /// backend. Returns `false` (leaving this backend unchanged) on
    /// malformed input, a configuration mismatch, or a backend that does
    /// not support snapshots (the default).
    fn restore_state(&mut self, _snapshot: &[u8]) -> bool {
        false
    }
}

/// Error type for architecture-level failures.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum ArchError {
    /// A row address outside the memory.
    RowOutOfRange {
        /// The offending row.
        row: u64,
        /// Total rows available.
        rows: u64,
    },
    /// Row data of the wrong length.
    RowSizeMismatch {
        /// Words a row must hold.
        expected: usize,
        /// Words supplied.
        got: usize,
    },
    /// A write kept failing verification even after the configured
    /// retries (and row retirement, if enabled, could not be applied).
    UncorrectableWrite {
        /// The logical row that could not be written.
        row: u64,
        /// Write attempts made before giving up.
        attempts: u32,
    },
    /// A row needed to be retired but the spare-row pool is empty.
    SparesExhausted {
        /// The logical row that needed a spare.
        row: u64,
    },
    /// SECDED decoding found a multi-bit upset it can detect but not
    /// correct — the data is known-bad and the error is *reported*
    /// rather than silently returned.
    Uncorrectable {
        /// The logical row holding the uncorrectable words.
        row: u64,
        /// Word indices within the row whose codewords failed.
        words: Vec<usize>,
    },
}

impl std::fmt::Display for ArchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (memory has {rows} rows)")
            }
            ArchError::RowSizeMismatch { expected, got } => {
                write!(f, "row data must be exactly {expected} words, got {got}")
            }
            ArchError::UncorrectableWrite { row, attempts } => {
                write!(
                    f,
                    "row {row} failed write verification after {attempts} attempts"
                )
            }
            ArchError::SparesExhausted { row } => {
                write!(f, "no spare rows left to retire row {row} to")
            }
            ArchError::Uncorrectable { row, words } => {
                write!(
                    f,
                    "row {row} has {} uncorrectable SECDED word(s), first at index {}",
                    words.len(),
                    words.first().copied().unwrap_or(0)
                )
            }
        }
    }
}

impl std::error::Error for ArchError {}
