//! # felim-arch — memory + processing-in-memory architecture simulator
//!
//! The paper's Section VI evaluation extends the pLUTo simulator with a
//! 2T-nC FeRAM model and a 64 ms-refresh DRAM model, then runs eight
//! bulk-bitwise workloads on an 8 GB memory with 8 KB rows. This crate is
//! that simulator, rebuilt from scratch:
//!
//! * [`geometry`] — capacity/row addressing (8 GB, 8 KB rows by default),
//! * [`command`] — the row-level command vocabulary (ACTIVATE, PRECHARGE,
//!   COPY, TRA, TBA, RowClone, refresh),
//! * [`energy`] — the per-command energy/latency constants from the
//!   paper's cell-level SPICE study (22.6 nJ vs 16.6 nJ ACTIVATE,
//!   0.32 nJ PRECHARGE, 1 cycle per primitive),
//! * [`engine`] — a bit-accurate functional row store, so every simulated
//!   primitive also computes its real result (verified against software),
//! * [`dram_backend`] — Ambit-style execution: logic via triple-row
//!   activation (MAJORITY) with operand copies through RowClone AAPs,
//!   DCC-based NOT, and periodic refresh,
//! * [`feram_backend`] — 2T-nC execution: in-place TBA (MINORITY) via the
//!   ACP primitive, free inverting reads, no refresh, QNRO disturb
//!   tracking with occasional write-backs,
//! * [`stats`] — cycle and energy accounting with per-command breakdowns.
//!
//! Both backends implement the [`BulkBackend`] trait so workloads are
//! written once and executed on either technology.
//!
//! ## Quickstart
//!
//! ```
//! use felim_arch::{BulkBackend, feram_backend::FeramBackend, geometry::RowId};
//!
//! let mut mem = FeramBackend::default_8gb();
//! let a = RowId(0);
//! let b = RowId(1);
//! let d = RowId(2);
//! mem.write_row(a, &vec![0b1100; 1024]);
//! mem.write_row(b, &vec![0b1010; 1024]);
//! mem.nand(a, b, d);
//! assert_eq!(mem.read_row(d)[0], !0b1000u64);
//! assert!(mem.stats().total_energy_nj() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod command;
pub mod dram_backend;
pub mod energy;
pub mod engine;
pub mod feram_backend;
pub mod geometry;
pub mod schedule;
pub mod stats;
pub mod wear;

pub use bandwidth::{compute_bandwidth, ComputeBandwidth};
pub use command::Command;
pub use dram_backend::DramBackend;
pub use energy::{EnergyModel, LatencyModel};
pub use feram_backend::FeramBackend;
pub use geometry::{MemoryGeometry, RowId};
pub use schedule::{schedule, ScheduleReport};
pub use stats::{CommandClass, ExecStats};
pub use wear::{WearReport, WearTracker};

/// A technology-agnostic bulk-bitwise row-operation interface.
///
/// Rows are full memory rows (8 KB by default — 65536 bits); all logic
/// operations are bitwise across entire rows. Implementations account
/// energy and cycles for every primitive they issue and keep the row
/// contents bit-accurate.
pub trait BulkBackend {
    /// The memory geometry.
    fn geometry(&self) -> &MemoryGeometry;

    /// Writes a full row of data (from the host), charged to the
    /// energy/cycle budget.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the row word count.
    fn write_row(&mut self, row: RowId, data: &[u64]);

    /// Installs a row of *pre-resident* input data without charging any
    /// command cost. The paper's workloads operate on data already living
    /// in memory — loading it is not part of the evaluated kernel, and
    /// both technologies would pay the identical host-write cost anyway.
    fn install_row(&mut self, row: RowId, data: &[u64]);

    /// Reads a full row of data (to the host).
    fn read_row(&mut self, row: RowId) -> Vec<u64>;

    /// `dst = NOT src`.
    fn not(&mut self, src: RowId, dst: RowId);

    /// `dst = a AND b`.
    fn and(&mut self, a: RowId, b: RowId, dst: RowId);

    /// `dst = a OR b`.
    fn or(&mut self, a: RowId, b: RowId, dst: RowId);

    /// `dst = NOT (a AND b)`.
    fn nand(&mut self, a: RowId, b: RowId, dst: RowId);

    /// `dst = NOT (a OR b)`.
    fn nor(&mut self, a: RowId, b: RowId, dst: RowId);

    /// `dst = a XOR b` (composed from the technology's primitives).
    fn xor(&mut self, a: RowId, b: RowId, dst: RowId) {
        // Default composition: xor = (a NAND (a NAND b)) NAND (b NAND (a NAND b)).
        let scratch = self.scratch_rows(3);
        let (nab, x, y) = (scratch[0], scratch[1], scratch[2]);
        self.nand(a, b, nab);
        self.nand(a, nab, x);
        self.nand(b, nab, y);
        self.nand(x, y, dst);
    }

    /// `dst = NOT (a XOR b)`.
    fn xnor(&mut self, a: RowId, b: RowId, dst: RowId) {
        let scratch = self.scratch_rows(4);
        let t = scratch[3];
        self.xor(a, b, t);
        self.not(t, dst);
    }

    /// Copies a row.
    fn copy(&mut self, src: RowId, dst: RowId);

    /// Rows reserved for intermediate results, disjoint from data rows.
    /// Implementations guarantee at least 8.
    fn scratch_rows(&self, count: usize) -> Vec<RowId>;

    /// Execution statistics so far.
    fn stats(&self) -> &ExecStats;

    /// Finalises background costs (e.g. DRAM refresh for the elapsed
    /// runtime) and returns the final statistics.
    fn finish(&mut self) -> ExecStats;

    /// Human-readable technology name.
    fn tech_name(&self) -> &'static str;
}

/// Error type for architecture-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// A row address outside the memory.
    RowOutOfRange {
        /// The offending row.
        row: u64,
        /// Total rows available.
        rows: u64,
    },
}

impl std::fmt::Display for ArchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (memory has {rows} rows)")
            }
        }
    }
}

impl std::error::Error for ArchError {}
