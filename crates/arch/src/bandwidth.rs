//! Compute-bandwidth model: row-level SIMD width × subarray parallelism.
//!
//! The paper's Section V argument: a TBA executes one logic operation in
//! *every cell of the activated row simultaneously* (65536 lanes for an
//! 8 KB row), and independent subarrays can operate concurrently, so the
//! aggregate bulk-bitwise bandwidth scales as
//! `lanes × active_subarrays / op_latency`.

use crate::energy::LatencyModel;
use crate::geometry::MemoryGeometry;
use serde::{Deserialize, Serialize};

/// Aggregate bulk-bitwise compute bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeBandwidth {
    /// Bit-operations per second per subarray.
    pub bitops_per_s_per_subarray: f64,
    /// Aggregate bit-operations per second.
    pub bitops_per_s: f64,
    /// Aggregate bytes of operand data processed per second.
    pub operand_bytes_per_s: f64,
}

/// Computes the bandwidth of a technology issuing one two-operand row
/// operation every `cycles_per_op` cycles, with `active_subarrays`
/// operating concurrently.
///
/// # Panics
///
/// Panics if `cycles_per_op` or `active_subarrays` is zero.
pub fn compute_bandwidth(
    geometry: &MemoryGeometry,
    latency: &LatencyModel,
    cycles_per_op: u64,
    active_subarrays: u64,
) -> ComputeBandwidth {
    assert!(cycles_per_op > 0, "an operation takes at least one cycle");
    assert!(active_subarrays > 0, "need at least one active subarray");
    let op_time_s = latency.seconds(cycles_per_op);
    let lanes = geometry.row_bits() as f64;
    let per_subarray = lanes / op_time_s;
    ComputeBandwidth {
        bitops_per_s_per_subarray: per_subarray,
        bitops_per_s: per_subarray * active_subarrays as f64,
        // Two operand rows consumed per op.
        operand_bytes_per_s: 2.0 * geometry.row_bytes as f64 / op_time_s * active_subarrays as f64,
    }
}

/// Cycles per two-operand logic op for each technology under this
/// crate's cost model (FeRAM ACP pair = 6; DRAM AAP chain = 12).
pub mod op_cycles {
    /// 2T-nC FeRAM NAND/NOR/AND/OR.
    pub const FERAM_LOGIC: u64 = 6;
    /// Ambit DRAM AND/OR (4 AAPs).
    pub const DRAM_LOGIC: u64 = 12;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MemoryGeometry, LatencyModel) {
        (MemoryGeometry::paper_8gb(), LatencyModel::paper_default())
    }

    #[test]
    fn single_subarray_feram_bandwidth() {
        let (g, l) = setup();
        let bw = compute_bandwidth(&g, &l, op_cycles::FERAM_LOGIC, 1);
        // 65536 lanes / (6 × 50 ns) ≈ 218 Gbit-ops/s.
        let expect = 65536.0 / (6.0 * 50e-9);
        assert!((bw.bitops_per_s / expect - 1.0).abs() < 1e-12);
        assert_eq!(bw.bitops_per_s, bw.bitops_per_s_per_subarray);
    }

    #[test]
    fn feram_doubles_dram_bandwidth_per_subarray() {
        let (g, l) = setup();
        let f = compute_bandwidth(&g, &l, op_cycles::FERAM_LOGIC, 1);
        let d = compute_bandwidth(&g, &l, op_cycles::DRAM_LOGIC, 1);
        let ratio = f.bitops_per_s / d.bitops_per_s;
        assert!((ratio - 2.0).abs() < 1e-12, "ACP/AAP cycle ratio");
    }

    #[test]
    fn bandwidth_scales_linearly_with_subarrays() {
        let (g, l) = setup();
        let one = compute_bandwidth(&g, &l, 6, 1);
        let all = compute_bandwidth(&g, &l, 6, g.subarrays());
        assert!((all.bitops_per_s / one.bitops_per_s - g.subarrays() as f64).abs() < 1e-6);
        // Full-chip FeRAM: 2048 subarrays × 218 G ≈ 447 Tbit-ops/s.
        assert!(all.bitops_per_s > 4e14);
    }

    #[test]
    fn operand_throughput_counts_both_rows() {
        let (g, l) = setup();
        let bw = compute_bandwidth(&g, &l, 6, 1);
        let expect = 2.0 * 8192.0 / (6.0 * 50e-9);
        assert!((bw.operand_bytes_per_s - expect).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn rejects_zero_cycles() {
        let (g, l) = setup();
        let _ = compute_bandwidth(&g, &l, 0, 1);
    }
}
