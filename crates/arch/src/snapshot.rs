//! Binary state-snapshot codec helpers.
//!
//! The replication layer (`felim-serve`'s `replica` module) rebuilds a
//! standby shard by shipping the primary's *complete* backend state over
//! the wire: row contents, cost accounting, wear, disturb counters, ECC
//! side-bands, drift-process clocks — everything that influences future
//! behaviour. Each stateful type encodes itself next to its definition
//! (the same convention as the [`batch`](crate::batch) wire codecs) using
//! the little-endian primitives in this module, so a restored backend is
//! bit-identical to the snapshotted one and replays the same schedule to
//! the same results.
//!
//! Two invariants every codec here keeps:
//!
//! * **determinism** — hash maps are always emitted sorted by key, so
//!   `snapshot(restore(snapshot(x))) == snapshot(x)` byte for byte;
//! * **allocation guards** — every count-prefixed run checks the count
//!   against the remaining input before allocating, so a corrupt or
//!   truncated snapshot is rejected (`None`) instead of aborting.

/// Appends one byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Reads one byte, advancing `pos`. `None` on short input.
pub fn take_u8(buf: &[u8], pos: &mut usize) -> Option<u8> {
    let b = *buf.get(*pos)?;
    *pos += 1;
    Some(b)
}

/// Appends a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a `u32` little-endian, advancing `pos`. `None` on short input.
pub fn take_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let bytes = buf.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
}

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a `u64` little-endian, advancing `pos`. `None` on short input.
pub fn take_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let bytes = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
}

/// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Reads an `f64` bit pattern, advancing `pos`. `None` on short input.
pub fn take_f64(buf: &[u8], pos: &mut usize) -> Option<f64> {
    take_u64(buf, pos).map(f64::from_bits)
}

/// Appends a bool as one byte (0 or 1).
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    put_u8(out, u8::from(v));
}

/// Reads a bool byte, advancing `pos`. `None` on short input or a value
/// other than 0/1 (a corrupt snapshot must not decode).
pub fn take_bool(buf: &[u8], pos: &mut usize) -> Option<bool> {
    match take_u8(buf, pos)? {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

/// Appends a word slice as a count-prefixed run.
pub fn put_words(out: &mut Vec<u8>, words: &[u64]) {
    put_u64(out, words.len() as u64);
    for &w in words {
        put_u64(out, w);
    }
}

/// Reads a count-prefixed word run. `None` on short input or a count
/// that exceeds the remaining bytes (a corrupt length cannot allocate
/// unboundedly).
pub fn take_words(buf: &[u8], pos: &mut usize) -> Option<Vec<u64>> {
    let n = take_u64(buf, pos)?;
    if ((buf.len() - *pos) as u64) / 8 < n {
        return None;
    }
    (0..n).map(|_| take_u64(buf, pos)).collect()
}

/// Appends a byte slice as a count-prefixed run.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Reads a count-prefixed byte run, with the same allocation guard as
/// [`take_words`].
pub fn take_bytes(buf: &[u8], pos: &mut usize) -> Option<Vec<u8>> {
    let n = take_u64(buf, pos)?;
    if ((buf.len() - *pos) as u64) < n {
        return None;
    }
    let out = buf[*pos..*pos + n as usize].to_vec();
    *pos += n as usize;
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 3);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, 1.5e-300);
        put_bool(&mut buf, true);
        put_bool(&mut buf, false);
        put_words(&mut buf, &[1, 2, u64::MAX]);
        put_bytes(&mut buf, b"snapshot");
        let mut pos = 0;
        assert_eq!(take_u8(&buf, &mut pos), Some(0xAB));
        assert_eq!(take_u32(&buf, &mut pos), Some(0xDEAD_BEEF));
        assert_eq!(take_u64(&buf, &mut pos), Some(u64::MAX - 3));
        assert_eq!(take_f64(&buf, &mut pos).map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(take_f64(&buf, &mut pos), Some(1.5e-300));
        assert_eq!(take_bool(&buf, &mut pos), Some(true));
        assert_eq!(take_bool(&buf, &mut pos), Some(false));
        assert_eq!(take_words(&buf, &mut pos), Some(vec![1, 2, u64::MAX]));
        assert_eq!(take_bytes(&buf, &mut pos), Some(b"snapshot".to_vec()));
        assert_eq!(pos, buf.len(), "codec must consume exactly what it wrote");
    }

    #[test]
    fn truncation_is_rejected_everywhere() {
        let mut buf = Vec::new();
        put_words(&mut buf, &[7; 9]);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(take_words(&buf[..cut], &mut pos).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn absurd_counts_cannot_allocate() {
        let mut evil = Vec::new();
        put_u64(&mut evil, u64::MAX);
        let mut pos = 0;
        assert!(take_words(&evil, &mut pos).is_none());
        let mut pos = 0;
        assert!(take_bytes(&evil, &mut pos).is_none());
    }

    #[test]
    fn bad_bool_bytes_are_rejected() {
        let mut pos = 0;
        assert!(take_bool(&[2], &mut pos).is_none());
    }
}
