//! Bit-accurate functional row store.
//!
//! Every simulated command also computes its real result, so workload
//! outputs can be verified bit-for-bit against software references. Rows
//! are lazily materialised (an 8 GB memory is addressable without 8 GB of
//! host RAM). Addressing mistakes surface as [`ArchError`]s rather than
//! panics, so backends can propagate them as typed failures.

use crate::geometry::{MemoryGeometry, RowId};
use crate::ArchError;
use std::collections::HashMap;

/// Lazily-materialised storage for full memory rows.
#[derive(Debug, Clone, Default)]
pub struct RowStore {
    geometry: MemoryGeometry,
    rows: HashMap<u64, Vec<u64>>,
}

impl RowStore {
    /// Creates an empty store over the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid.
    pub fn new(geometry: MemoryGeometry) -> Self {
        geometry.validate().expect("valid geometry");
        Self {
            geometry,
            rows: HashMap::new(),
        }
    }

    /// The geometry.
    pub fn geometry(&self) -> &MemoryGeometry {
        &self.geometry
    }

    /// Number of rows ever touched (materialised).
    pub fn touched_rows(&self) -> u64 {
        self.rows.len() as u64
    }

    fn check_in_range(&self, row: RowId) -> Result<(), ArchError> {
        if self.geometry.contains(row) {
            Ok(())
        } else {
            Err(ArchError::RowOutOfRange {
                row: row.0,
                rows: self.geometry.total_rows(),
            })
        }
    }

    /// Reads a row (zeros if never written).
    ///
    /// # Errors
    ///
    /// [`ArchError::RowOutOfRange`] for rows outside the geometry.
    pub fn read(&self, row: RowId) -> Result<Vec<u64>, ArchError> {
        self.check_in_range(row)?;
        Ok(self
            .rows
            .get(&row.0)
            .cloned()
            .unwrap_or_else(|| vec![0; self.geometry.row_words()]))
    }

    /// Writes a full row.
    ///
    /// # Errors
    ///
    /// [`ArchError::RowOutOfRange`] for rows outside the geometry;
    /// [`ArchError::RowSizeMismatch`] unless `data` is exactly one row.
    pub fn write(&mut self, row: RowId, data: &[u64]) -> Result<(), ArchError> {
        self.check_in_range(row)?;
        if data.len() != self.geometry.row_words() {
            return Err(ArchError::RowSizeMismatch {
                expected: self.geometry.row_words(),
                got: data.len(),
            });
        }
        self.rows.insert(row.0, data.to_vec());
        Ok(())
    }

    /// `dst[i] = f(a[i], b[i])` across the whole row.
    ///
    /// # Errors
    ///
    /// As for [`RowStore::read`] / [`RowStore::write`].
    pub fn combine(
        &mut self,
        a: RowId,
        b: RowId,
        dst: RowId,
        f: impl Fn(u64, u64) -> u64,
    ) -> Result<(), ArchError> {
        let ra = self.read(a)?;
        let rb = self.read(b)?;
        let out: Vec<u64> = ra.iter().zip(rb.iter()).map(|(&x, &y)| f(x, y)).collect();
        self.write(dst, &out)
    }

    /// `dst[i] = f(src[i])` across the whole row.
    ///
    /// # Errors
    ///
    /// As for [`RowStore::read`] / [`RowStore::write`].
    pub fn map(
        &mut self,
        src: RowId,
        dst: RowId,
        f: impl Fn(u64) -> u64,
    ) -> Result<(), ArchError> {
        let r = self.read(src)?;
        let out: Vec<u64> = r.iter().map(|&x| f(x)).collect();
        self.write(dst, &out)
    }

    /// `dst[i] = f(a[i], b[i], c[i])` across the whole row (TRA/TBA).
    ///
    /// # Errors
    ///
    /// As for [`RowStore::read`] / [`RowStore::write`].
    pub fn combine3(
        &mut self,
        a: RowId,
        b: RowId,
        c: RowId,
        dst: RowId,
        f: impl Fn(u64, u64, u64) -> u64,
    ) -> Result<(), ArchError> {
        let ra = self.read(a)?;
        let rb = self.read(b)?;
        let rc = self.read(c)?;
        let out: Vec<u64> = (0..ra.len()).map(|i| f(ra[i], rb[i], rc[i])).collect();
        self.write(dst, &out)
    }

    /// Fills a row with a constant word.
    ///
    /// # Errors
    ///
    /// As for [`RowStore::write`].
    pub fn fill(&mut self, row: RowId, word: u64) -> Result<(), ArchError> {
        let data = vec![word; self.geometry.row_words()];
        self.write(row, &data)
    }
}

/// Bitwise MAJORITY of three words (the TRA function).
pub fn majority_words(a: u64, b: u64, c: u64) -> u64 {
    (a & b) | (b & c) | (a & c)
}

/// Bitwise MINORITY of three words (the TBA function).
pub fn minority_words(a: u64, b: u64, c: u64) -> u64 {
    !majority_words(a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> RowStore {
        RowStore::new(MemoryGeometry::tiny())
    }

    #[test]
    fn unwritten_rows_read_zero() {
        let s = store();
        assert!(s.read(RowId(5)).unwrap().iter().all(|&w| w == 0));
        assert_eq!(s.touched_rows(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = store();
        let data: Vec<u64> = (0..128).map(|i| i * 3).collect();
        s.write(RowId(7), &data).unwrap();
        assert_eq!(s.read(RowId(7)).unwrap(), data);
        assert_eq!(s.touched_rows(), 1);
    }

    #[test]
    fn combine_and_map() {
        let mut s = store();
        s.fill(RowId(0), 0b1100).unwrap();
        s.fill(RowId(1), 0b1010).unwrap();
        s.combine(RowId(0), RowId(1), RowId(2), |a, b| a & b).unwrap();
        assert_eq!(s.read(RowId(2)).unwrap()[0], 0b1000);
        s.map(RowId(2), RowId(3), |x| !x).unwrap();
        assert_eq!(s.read(RowId(3)).unwrap()[0], !0b1000u64);
    }

    #[test]
    fn combine3_majority_minority() {
        let mut s = store();
        s.fill(RowId(0), 0b1100).unwrap();
        s.fill(RowId(1), 0b1010).unwrap();
        s.fill(RowId(2), 0b0110).unwrap();
        s.combine3(RowId(0), RowId(1), RowId(2), RowId(3), majority_words)
            .unwrap();
        assert_eq!(s.read(RowId(3)).unwrap()[0], 0b1110);
        s.combine3(RowId(0), RowId(1), RowId(2), RowId(4), minority_words)
            .unwrap();
        assert_eq!(s.read(RowId(4)).unwrap()[0], !0b1110u64);
    }

    #[test]
    fn word_functions_are_complementary() {
        for v in 0..8u64 {
            let (a, b, c) = (
                if v & 4 != 0 { !0 } else { 0 },
                if v & 2 != 0 { !0 } else { 0 },
                if v & 1 != 0 { !0 } else { 0 },
            );
            assert_eq!(majority_words(a, b, c), !minority_words(a, b, c));
            let expect = if v.count_ones() >= 2 { !0u64 } else { 0 };
            assert_eq!(majority_words(a, b, c), expect, "pattern {v:03b}");
        }
    }

    #[test]
    fn out_of_range_rows_are_typed_errors() {
        let s = store();
        let err = s.read(RowId(10_000)).unwrap_err();
        assert!(matches!(err, ArchError::RowOutOfRange { row: 10_000, .. }));
        assert!(err.to_string().contains("out of range"));
        let mut s = store();
        let err = s.fill(RowId(10_000), 1).unwrap_err();
        assert!(matches!(err, ArchError::RowOutOfRange { .. }));
    }

    #[test]
    fn short_rows_are_typed_errors() {
        let mut s = store();
        let err = s.write(RowId(0), &[1, 2, 3]).unwrap_err();
        assert_eq!(
            err,
            ArchError::RowSizeMismatch {
                expected: s.geometry().row_words(),
                got: 3
            }
        );
        assert!(err.to_string().contains("exactly"));
    }
}
