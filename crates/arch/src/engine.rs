//! Bit-accurate functional row store.
//!
//! Every simulated command also computes its real result, so workload
//! outputs can be verified bit-for-bit against software references. Rows
//! are lazily materialised (an 8 GB memory is addressable without 8 GB of
//! host RAM). Addressing mistakes surface as [`ArchError`]s rather than
//! panics, so backends can propagate them as typed failures.

use crate::geometry::{MemoryGeometry, RowId};
use crate::ArchError;
use std::collections::HashMap;

/// Lazily-materialised storage for full memory rows.
#[derive(Debug, Clone, Default)]
pub struct RowStore {
    geometry: MemoryGeometry,
    rows: HashMap<u64, Vec<u64>>,
    /// Reusable row buffer for the combine/map operations, so the
    /// per-command hot path performs no heap allocation in steady state.
    scratch: Vec<u64>,
}

impl RowStore {
    /// Creates an empty store over the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid.
    pub fn new(geometry: MemoryGeometry) -> Self {
        geometry.validate().expect("valid geometry");
        Self {
            geometry,
            rows: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    /// The geometry.
    pub fn geometry(&self) -> &MemoryGeometry {
        &self.geometry
    }

    /// Number of rows ever touched (materialised).
    pub fn touched_rows(&self) -> u64 {
        self.rows.len() as u64
    }

    fn check_in_range(&self, row: RowId) -> Result<(), ArchError> {
        if self.geometry.contains(row) {
            Ok(())
        } else {
            Err(ArchError::RowOutOfRange {
                row: row.0,
                rows: self.geometry.total_rows(),
            })
        }
    }

    /// Reads a row (zeros if never written).
    ///
    /// # Errors
    ///
    /// [`ArchError::RowOutOfRange`] for rows outside the geometry.
    pub fn read(&self, row: RowId) -> Result<Vec<u64>, ArchError> {
        self.check_in_range(row)?;
        Ok(self
            .rows
            .get(&row.0)
            .cloned()
            .unwrap_or_else(|| vec![0; self.geometry.row_words()]))
    }

    /// Borrows a row's words without copying; `None` if the row was
    /// never materialised (reads as zeros).
    ///
    /// # Errors
    ///
    /// [`ArchError::RowOutOfRange`] for rows outside the geometry.
    pub fn row(&self, row: RowId) -> Result<Option<&[u64]>, ArchError> {
        self.check_in_range(row)?;
        Ok(self.rows.get(&row.0).map(Vec::as_slice))
    }

    /// Reads a row into a caller-owned buffer (cleared and refilled), so
    /// repeated reads reuse one allocation.
    ///
    /// # Errors
    ///
    /// [`ArchError::RowOutOfRange`] for rows outside the geometry.
    pub fn read_into(&self, row: RowId, out: &mut Vec<u64>) -> Result<(), ArchError> {
        self.check_in_range(row)?;
        out.clear();
        match self.rows.get(&row.0) {
            Some(r) => out.extend_from_slice(r),
            None => out.resize(self.geometry.row_words(), 0),
        }
        Ok(())
    }

    /// Writes a full row, reusing the row's existing buffer when it is
    /// already materialised.
    ///
    /// # Errors
    ///
    /// [`ArchError::RowOutOfRange`] for rows outside the geometry;
    /// [`ArchError::RowSizeMismatch`] unless `data` is exactly one row.
    pub fn write(&mut self, row: RowId, data: &[u64]) -> Result<(), ArchError> {
        self.check_in_range(row)?;
        if data.len() != self.geometry.row_words() {
            return Err(ArchError::RowSizeMismatch {
                expected: self.geometry.row_words(),
                got: data.len(),
            });
        }
        match self.rows.entry(row.0) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().copy_from_slice(data);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(data.to_vec());
            }
        }
        Ok(())
    }

    /// Copies one row onto another without an intermediate allocation in
    /// steady state (the destination's existing buffer is reused).
    ///
    /// # Errors
    ///
    /// [`ArchError::RowOutOfRange`] for rows outside the geometry.
    pub fn copy_row(&mut self, src: RowId, dst: RowId) -> Result<(), ArchError> {
        self.check_in_range(src)?;
        self.check_in_range(dst)?;
        let words = self.geometry.row_words();
        if src.0 == dst.0 {
            self.rows.entry(dst.0).or_insert_with(|| vec![0; words]);
            return Ok(());
        }
        let mut buf = self.rows.remove(&dst.0).unwrap_or_default();
        buf.clear();
        match self.rows.get(&src.0) {
            Some(s) => buf.extend_from_slice(s),
            None => buf.resize(words, 0),
        }
        self.rows.insert(dst.0, buf);
        Ok(())
    }

    /// `dst[i] = f(a[i], b[i])` across the whole row.
    ///
    /// # Errors
    ///
    /// As for [`RowStore::read`] / [`RowStore::write`].
    pub fn combine(
        &mut self,
        a: RowId,
        b: RowId,
        dst: RowId,
        f: impl Fn(u64, u64) -> u64,
    ) -> Result<(), ArchError> {
        self.check_in_range(a)?;
        self.check_in_range(b)?;
        let words = self.geometry.row_words();
        let mut out = std::mem::take(&mut self.scratch);
        out.clear();
        {
            let ra = self.rows.get(&a.0);
            let rb = self.rows.get(&b.0);
            out.extend((0..words).map(|i| {
                f(
                    ra.map_or(0, |r| r[i]),
                    rb.map_or(0, |r| r[i]),
                )
            }));
        }
        let result = self.write(dst, &out);
        self.scratch = out;
        result
    }

    /// `dst[i] = f(src[i])` across the whole row.
    ///
    /// # Errors
    ///
    /// As for [`RowStore::read`] / [`RowStore::write`].
    pub fn map(
        &mut self,
        src: RowId,
        dst: RowId,
        f: impl Fn(u64) -> u64,
    ) -> Result<(), ArchError> {
        self.check_in_range(src)?;
        let words = self.geometry.row_words();
        let mut out = std::mem::take(&mut self.scratch);
        out.clear();
        {
            let r = self.rows.get(&src.0);
            out.extend((0..words).map(|i| f(r.map_or(0, |r| r[i]))));
        }
        let result = self.write(dst, &out);
        self.scratch = out;
        result
    }

    /// `out[i] = f(a[i], b[i])` across the whole row, into a caller-owned
    /// buffer (cleared and refilled) — a pure read, no store mutation.
    ///
    /// # Errors
    ///
    /// [`ArchError::RowOutOfRange`] for rows outside the geometry.
    pub fn combine2_into(
        &self,
        a: RowId,
        b: RowId,
        out: &mut Vec<u64>,
        f: impl Fn(u64, u64) -> u64,
    ) -> Result<(), ArchError> {
        self.check_in_range(a)?;
        self.check_in_range(b)?;
        let words = self.geometry.row_words();
        let ra = self.rows.get(&a.0);
        let rb = self.rows.get(&b.0);
        out.clear();
        out.extend((0..words).map(|i| f(ra.map_or(0, |r| r[i]), rb.map_or(0, |r| r[i]))));
        Ok(())
    }

    /// `out[i] = f(a[i], b[i], c[i])` across the whole row, into a
    /// caller-owned buffer (cleared and refilled) — the read side of
    /// TRA/TBA without touching the store.
    ///
    /// # Errors
    ///
    /// [`ArchError::RowOutOfRange`] for rows outside the geometry.
    pub fn combine3_into(
        &self,
        a: RowId,
        b: RowId,
        c: RowId,
        out: &mut Vec<u64>,
        f: impl Fn(u64, u64, u64) -> u64,
    ) -> Result<(), ArchError> {
        self.check_in_range(a)?;
        self.check_in_range(b)?;
        self.check_in_range(c)?;
        let words = self.geometry.row_words();
        let ra = self.rows.get(&a.0);
        let rb = self.rows.get(&b.0);
        let rc = self.rows.get(&c.0);
        out.clear();
        out.extend((0..words).map(|i| {
            f(
                ra.map_or(0, |r| r[i]),
                rb.map_or(0, |r| r[i]),
                rc.map_or(0, |r| r[i]),
            )
        }));
        Ok(())
    }

    /// `dst[i] = f(a[i], b[i], c[i])` across the whole row (TRA/TBA).
    ///
    /// # Errors
    ///
    /// As for [`RowStore::read`] / [`RowStore::write`].
    pub fn combine3(
        &mut self,
        a: RowId,
        b: RowId,
        c: RowId,
        dst: RowId,
        f: impl Fn(u64, u64, u64) -> u64,
    ) -> Result<(), ArchError> {
        let mut out = std::mem::take(&mut self.scratch);
        let result = self
            .combine3_into(a, b, c, &mut out, f)
            .and_then(|()| self.write(dst, &out));
        self.scratch = out;
        result
    }

    /// Fills a row with a constant word, in place when materialised.
    ///
    /// # Errors
    ///
    /// As for [`RowStore::write`].
    pub fn fill(&mut self, row: RowId, word: u64) -> Result<(), ArchError> {
        self.check_in_range(row)?;
        let words = self.geometry.row_words();
        self.rows
            .entry(row.0)
            .and_modify(|r| r.fill(word))
            .or_insert_with(|| vec![word; words]);
        Ok(())
    }

    /// Appends every materialised row (sorted by address, so the
    /// encoding is deterministic) to a state snapshot.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_u64, put_words};
        let mut keys: Vec<u64> = self.rows.keys().copied().collect();
        keys.sort_unstable();
        put_u64(out, keys.len() as u64);
        for k in keys {
            put_u64(out, k);
            put_words(out, &self.rows[&k]);
        }
    }

    /// Replaces this store's contents from a snapshot produced by
    /// [`RowStore::encode_state`] over the same geometry. `None` (with
    /// the store unchanged) on malformed input.
    pub fn restore_state(&mut self, buf: &[u8], pos: &mut usize) -> Option<()> {
        use crate::snapshot::{take_u64, take_words};
        let mut probe = *pos;
        let n = take_u64(buf, &mut probe)?;
        let mut rows = HashMap::with_capacity(n as usize);
        for _ in 0..n {
            let key = take_u64(buf, &mut probe)?;
            let data = take_words(buf, &mut probe)?;
            if data.len() != self.geometry.row_words() {
                return None;
            }
            rows.insert(key, data);
        }
        self.rows = rows;
        *pos = probe;
        Some(())
    }
}

/// Bitwise MAJORITY of three words (the TRA function).
pub fn majority_words(a: u64, b: u64, c: u64) -> u64 {
    (a & b) | (b & c) | (a & c)
}

/// Bitwise MINORITY of three words (the TBA function).
pub fn minority_words(a: u64, b: u64, c: u64) -> u64 {
    !majority_words(a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> RowStore {
        RowStore::new(MemoryGeometry::tiny())
    }

    #[test]
    fn unwritten_rows_read_zero() {
        let s = store();
        assert!(s.read(RowId(5)).unwrap().iter().all(|&w| w == 0));
        assert_eq!(s.touched_rows(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = store();
        let data: Vec<u64> = (0..128).map(|i| i * 3).collect();
        s.write(RowId(7), &data).unwrap();
        assert_eq!(s.read(RowId(7)).unwrap(), data);
        assert_eq!(s.touched_rows(), 1);
    }

    #[test]
    fn combine_and_map() {
        let mut s = store();
        s.fill(RowId(0), 0b1100).unwrap();
        s.fill(RowId(1), 0b1010).unwrap();
        s.combine(RowId(0), RowId(1), RowId(2), |a, b| a & b).unwrap();
        assert_eq!(s.read(RowId(2)).unwrap()[0], 0b1000);
        s.map(RowId(2), RowId(3), |x| !x).unwrap();
        assert_eq!(s.read(RowId(3)).unwrap()[0], !0b1000u64);
    }

    #[test]
    fn combine3_majority_minority() {
        let mut s = store();
        s.fill(RowId(0), 0b1100).unwrap();
        s.fill(RowId(1), 0b1010).unwrap();
        s.fill(RowId(2), 0b0110).unwrap();
        s.combine3(RowId(0), RowId(1), RowId(2), RowId(3), majority_words)
            .unwrap();
        assert_eq!(s.read(RowId(3)).unwrap()[0], 0b1110);
        s.combine3(RowId(0), RowId(1), RowId(2), RowId(4), minority_words)
            .unwrap();
        assert_eq!(s.read(RowId(4)).unwrap()[0], !0b1110u64);
    }

    #[test]
    fn word_functions_are_complementary() {
        for v in 0..8u64 {
            let (a, b, c) = (
                if v & 4 != 0 { !0 } else { 0 },
                if v & 2 != 0 { !0 } else { 0 },
                if v & 1 != 0 { !0 } else { 0 },
            );
            assert_eq!(majority_words(a, b, c), !minority_words(a, b, c));
            let expect = if v.count_ones() >= 2 { !0u64 } else { 0 };
            assert_eq!(majority_words(a, b, c), expect, "pattern {v:03b}");
        }
    }

    #[test]
    fn borrow_and_buffer_reads_match_owned_reads() {
        let mut s = store();
        let data: Vec<u64> = (0..128).map(|i| i ^ 0x5A).collect();
        s.write(RowId(3), &data).unwrap();
        assert_eq!(s.row(RowId(3)).unwrap().unwrap(), &data[..]);
        assert!(s.row(RowId(4)).unwrap().is_none(), "unmaterialised row");
        let mut buf = vec![0xFFu64; 5]; // wrong size on purpose
        s.read_into(RowId(3), &mut buf).unwrap();
        assert_eq!(buf, data);
        s.read_into(RowId(4), &mut buf).unwrap();
        assert_eq!(buf, vec![0u64; s.geometry().row_words()]);
    }

    #[test]
    fn copy_row_materialises_and_copies() {
        let mut s = store();
        let data: Vec<u64> = (0..128).map(|i| i * 7).collect();
        s.write(RowId(0), &data).unwrap();
        s.copy_row(RowId(0), RowId(1)).unwrap();
        assert_eq!(s.read(RowId(1)).unwrap(), data);
        // Copying an unmaterialised row writes zeros.
        s.copy_row(RowId(9), RowId(1)).unwrap();
        assert!(s.read(RowId(1)).unwrap().iter().all(|&w| w == 0));
        // Self-copy is a materialising no-op.
        s.copy_row(RowId(0), RowId(0)).unwrap();
        assert_eq!(s.read(RowId(0)).unwrap(), data);
        s.copy_row(RowId(5), RowId(5)).unwrap();
        assert_eq!(s.touched_rows(), 3, "rows 0, 1, 5 and nothing else");
        assert!(matches!(
            s.copy_row(RowId(0), RowId(10_000)),
            Err(ArchError::RowOutOfRange { .. })
        ));
    }

    #[test]
    fn out_of_range_rows_are_typed_errors() {
        let s = store();
        let err = s.read(RowId(10_000)).unwrap_err();
        assert!(matches!(err, ArchError::RowOutOfRange { row: 10_000, .. }));
        assert!(err.to_string().contains("out of range"));
        let mut s = store();
        let err = s.fill(RowId(10_000), 1).unwrap_err();
        assert!(matches!(err, ArchError::RowOutOfRange { .. }));
    }

    #[test]
    fn short_rows_are_typed_errors() {
        let mut s = store();
        let err = s.write(RowId(0), &[1, 2, 3]).unwrap_err();
        assert_eq!(
            err,
            ArchError::RowSizeMismatch {
                expected: s.geometry().row_words(),
                got: 3
            }
        );
        assert!(err.to_string().contains("exactly"));
    }
}
