//! Execution statistics: cycles and energy with per-class breakdowns.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Accounting class of a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CommandClass {
    /// ACTIVATE-class (ACT, TRA, TBA, RowClone).
    Activate,
    /// FeRAM tri-state-buffer COPY.
    Copy,
    /// PRECHARGE.
    Precharge,
    /// Host row write.
    Write,
    /// Host row read.
    Read,
    /// DRAM refresh.
    Refresh,
}

impl CommandClass {
    /// All classes in display order.
    pub const ALL: [CommandClass; 6] = [
        CommandClass::Activate,
        CommandClass::Copy,
        CommandClass::Precharge,
        CommandClass::Write,
        CommandClass::Read,
        CommandClass::Refresh,
    ];

    /// Static lower-case name, usable as a telemetry metric suffix
    /// without allocating.
    pub const fn name(self) -> &'static str {
        match self {
            CommandClass::Activate => "activate",
            CommandClass::Copy => "copy",
            CommandClass::Precharge => "precharge",
            CommandClass::Write => "write",
            CommandClass::Read => "read",
            CommandClass::Refresh => "refresh",
        }
    }

    fn index(self) -> usize {
        match self {
            CommandClass::Activate => 0,
            CommandClass::Copy => 1,
            CommandClass::Precharge => 2,
            CommandClass::Write => 3,
            CommandClass::Read => 4,
            CommandClass::Refresh => 5,
        }
    }
}

impl fmt::Display for CommandClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Cycle and energy totals with per-class breakdowns.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecStats {
    counts: [u64; 6],
    cycles: [u64; 6],
    energy_nj: [f64; 6],
}

impl ExecStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one command occurrence.
    ///
    /// This is the single choke point through which every simulated
    /// command (both backends, including refresh) is accounted, so it is
    /// also where telemetry hooks in: a per-class occurrence counter plus
    /// global cycle and energy (pJ) counters, all no-ops without the
    /// `telemetry` feature. The handles are
    /// [`CachedCounter`](felim_telemetry::CachedCounter)s — resolved
    /// against the registry once, then one relaxed atomic per event — so
    /// instrumented builds do not pay a registry lookup per simulated
    /// command.
    pub fn record(&mut self, class: CommandClass, cycles: u64, energy_nj: f64) {
        use felim_telemetry::CachedCounter;
        static CLASS_COUNTS: [CachedCounter; 6] = [
            CachedCounter::new("arch.commands.activate"),
            CachedCounter::new("arch.commands.copy"),
            CachedCounter::new("arch.commands.precharge"),
            CachedCounter::new("arch.commands.write"),
            CachedCounter::new("arch.commands.read"),
            CachedCounter::new("arch.commands.refresh"),
        ];
        static CYCLES: CachedCounter = CachedCounter::new("arch.cycles");
        static ENERGY_PJ: CachedCounter = CachedCounter::new("arch.energy_pj");
        let i = class.index();
        CLASS_COUNTS[i].inc();
        CYCLES.add(cycles);
        ENERGY_PJ.add((energy_nj * 1e3).round() as u64);
        self.counts[i] += 1;
        self.cycles[i] += cycles;
        self.energy_nj[i] += energy_nj;
    }

    /// Total command count across all classes.
    pub fn total_commands(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total cycles across all classes.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Total energy in nJ.
    pub fn total_energy_nj(&self) -> f64 {
        self.energy_nj.iter().sum()
    }

    /// Total energy in mJ.
    pub fn total_energy_mj(&self) -> f64 {
        self.total_energy_nj() * 1e-6
    }

    /// Command count for a class.
    pub fn count(&self, class: CommandClass) -> u64 {
        self.counts[class.index()]
    }

    /// Cycles spent in a class.
    pub fn cycles(&self, class: CommandClass) -> u64 {
        self.cycles[class.index()]
    }

    /// Energy spent in a class, nJ.
    pub fn energy_nj(&self, class: CommandClass) -> f64 {
        self.energy_nj[class.index()]
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        for i in 0..6 {
            self.counts[i] += other.counts[i];
            self.cycles[i] += other.cycles[i];
            self.energy_nj[i] += other.energy_nj[i];
        }
    }

    /// Appends the per-class counters to a state snapshot (counts,
    /// cycles, then energy bit patterns, each in class-index order).
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use crate::snapshot::{put_f64, put_u64};
        for i in 0..6 {
            put_u64(out, self.counts[i]);
        }
        for i in 0..6 {
            put_u64(out, self.cycles[i]);
        }
        for i in 0..6 {
            put_f64(out, self.energy_nj[i]);
        }
    }

    /// Decodes counters written by [`ExecStats::encode_state`]. `None`
    /// on short input.
    pub fn decode_state(buf: &[u8], pos: &mut usize) -> Option<ExecStats> {
        use crate::snapshot::{take_f64, take_u64};
        let mut out = ExecStats::new();
        for i in 0..6 {
            out.counts[i] = take_u64(buf, pos)?;
        }
        for i in 0..6 {
            out.cycles[i] = take_u64(buf, pos)?;
        }
        for i in 0..6 {
            out.energy_nj[i] = take_f64(buf, pos)?;
        }
        Some(out)
    }

    /// Multiplies all totals by a scalar — used to extrapolate a scaled-
    /// down functional simulation to the paper's full 1 GB workload size
    /// (primitive counts scale exactly linearly in row count).
    pub fn scaled(&self, factor: f64) -> ExecStats {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        let mut out = self.clone();
        for i in 0..6 {
            out.counts[i] = (out.counts[i] as f64 * factor).round() as u64;
            out.cycles[i] = (out.cycles[i] as f64 * factor).round() as u64;
            out.energy_nj[i] *= factor;
        }
        out
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "total: {} cycles, {:.3} mJ",
            self.total_cycles(),
            self.total_energy_mj()
        )?;
        for class in CommandClass::ALL {
            if self.count(class) > 0 {
                writeln!(
                    f,
                    "  {:<10} n={:<10} cycles={:<10} energy={:.3} mJ",
                    class.to_string(),
                    self.count(class),
                    self.cycles(class),
                    self.energy_nj(class) * 1e-6
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = ExecStats::new();
        s.record(CommandClass::Activate, 1, 22.6);
        s.record(CommandClass::Activate, 1, 22.6);
        s.record(CommandClass::Precharge, 1, 0.32);
        assert_eq!(s.total_cycles(), 3);
        assert!((s.total_energy_nj() - 45.52).abs() < 1e-9);
        assert_eq!(s.count(CommandClass::Activate), 2);
        assert_eq!(s.cycles(CommandClass::Precharge), 1);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = ExecStats::new();
        a.record(CommandClass::Write, 1, 16.6);
        let mut b = ExecStats::new();
        b.record(CommandClass::Write, 2, 33.2);
        b.record(CommandClass::Refresh, 10, 100.0);
        a.merge(&b);
        assert_eq!(a.count(CommandClass::Write), 2);
        assert_eq!(a.cycles(CommandClass::Write), 3);
        assert_eq!(a.cycles(CommandClass::Refresh), 10);
        assert!((a.total_energy_nj() - 149.8).abs() < 1e-9);
    }

    #[test]
    fn scaling_extrapolates_linearly() {
        let mut s = ExecStats::new();
        s.record(CommandClass::Activate, 10, 226.0);
        let big = s.scaled(128.0);
        assert_eq!(big.cycles(CommandClass::Activate), 1280);
        assert!((big.total_energy_nj() - 28928.0).abs() < 1e-6);
    }

    #[test]
    fn display_lists_used_classes_only() {
        let mut s = ExecStats::new();
        s.record(CommandClass::Copy, 1, 16.6);
        let text = s.to_string();
        assert!(text.contains("copy"));
        assert!(!text.contains("refresh"));
    }

    #[test]
    fn class_display_names() {
        assert_eq!(CommandClass::Activate.to_string(), "activate");
        assert_eq!(CommandClass::Refresh.to_string(), "refresh");
        assert_eq!(CommandClass::ALL.len(), 6);
    }
}
