//! Batched row-operation dispatch: one entry point per *batch* instead
//! of one trait call per operation.
//!
//! The service layer coalesces compatible same-shard commands and hands
//! them to [`execute_batch`] as a slice of [`RowOp`]s. The batch runs
//! front to back on one backend; each op succeeds or fails
//! independently (a fault in one request of a coalesced batch must not
//! poison its neighbours), and the report carries the per-op outcomes
//! in input order plus the cycle/energy deltas for the whole batch —
//! the numbers the service layer turns into latency accounting.
//!
//! ```
//! use felim_arch::batch::{execute_batch, RowOp, RowOpOutput};
//! use felim_arch::{BulkBackend, FeramBackend, RowId};
//!
//! let mut mem = FeramBackend::tiny();
//! let words = mem.geometry().row_words();
//! let report = execute_batch(
//!     &mut mem,
//!     &[
//!         RowOp::Write { row: RowId(0), data: vec![0b1100; words] },
//!         RowOp::Write { row: RowId(1), data: vec![0b1010; words] },
//!         RowOp::Nand { a: RowId(0), b: RowId(1), dst: RowId(2) },
//!         RowOp::Read { row: RowId(2) },
//!     ],
//! );
//! assert_eq!(report.outputs.len(), 4);
//! match report.outputs[3].as_ref().unwrap() {
//!     RowOpOutput::Data(data) => assert_eq!(data[0], !0b1000u64),
//!     RowOpOutput::Done => panic!("read must return data"),
//! }
//! assert!(report.cycles > 0 && report.energy_nj > 0.0);
//! ```

use crate::geometry::RowId;
use crate::{ArchError, BulkBackend};
use serde::Serialize;

/// One row-level operation inside a batch. Rows are backend-local
/// physical addresses — the caller (the shard router) has already
/// resolved logical addresses to the owning backend.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum RowOp {
    /// `dst = NOT src`.
    Not {
        /// Source row.
        src: RowId,
        /// Destination row.
        dst: RowId,
    },
    /// `dst = a AND b`.
    And {
        /// First operand.
        a: RowId,
        /// Second operand.
        b: RowId,
        /// Destination row.
        dst: RowId,
    },
    /// `dst = a OR b`.
    Or {
        /// First operand.
        a: RowId,
        /// Second operand.
        b: RowId,
        /// Destination row.
        dst: RowId,
    },
    /// `dst = a XOR b`.
    Xor {
        /// First operand.
        a: RowId,
        /// Second operand.
        b: RowId,
        /// Destination row.
        dst: RowId,
    },
    /// `dst = NOT (a AND b)`.
    Nand {
        /// First operand.
        a: RowId,
        /// Second operand.
        b: RowId,
        /// Destination row.
        dst: RowId,
    },
    /// `dst = NOT (a OR b)`.
    Nor {
        /// First operand.
        a: RowId,
        /// Second operand.
        b: RowId,
        /// Destination row.
        dst: RowId,
    },
    /// `dst = NOT (a XOR b)`.
    Xnor {
        /// First operand.
        a: RowId,
        /// Second operand.
        b: RowId,
        /// Destination row.
        dst: RowId,
    },
    /// Copies `src` into `dst`.
    Copy {
        /// Source row.
        src: RowId,
        /// Destination row.
        dst: RowId,
    },
    /// Host write of a full row.
    Write {
        /// Destination row.
        row: RowId,
        /// Exactly `row_words()` words.
        data: Vec<u64>,
    },
    /// Host read of a full row.
    Read {
        /// Source row.
        row: RowId,
    },
}

impl RowOp {
    /// Short operation mnemonic (telemetry labels, error messages).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            RowOp::Not { .. } => "not",
            RowOp::And { .. } => "and",
            RowOp::Or { .. } => "or",
            RowOp::Xor { .. } => "xor",
            RowOp::Nand { .. } => "nand",
            RowOp::Nor { .. } => "nor",
            RowOp::Xnor { .. } => "xnor",
            RowOp::Copy { .. } => "copy",
            RowOp::Write { .. } => "write",
            RowOp::Read { .. } => "read",
        }
    }
}

/// Successful result of one [`RowOp`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum RowOpOutput {
    /// The op completed; it produces no host-visible data.
    Done,
    /// The op completed and read this row back to the host.
    Data(Vec<u64>),
}

/// Outcome of one batch: per-op results in input order plus the
/// aggregate cost of the whole batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// One entry per input op, in input order. Failed ops carry their
    /// typed [`ArchError`]; later ops still run.
    pub outputs: Vec<Result<RowOpOutput, ArchError>>,
    /// Cycles charged by the backend across the batch (serial model).
    pub cycles: u64,
    /// Energy charged across the batch, nJ.
    pub energy_nj: f64,
}

impl BatchReport {
    /// Number of ops that failed.
    pub fn failures(&self) -> usize {
        self.outputs.iter().filter(|o| o.is_err()).count()
    }
}

/// Runs `ops` front to back on `backend`, isolating per-op failures,
/// and reports per-op outcomes plus the batch's cycle/energy deltas.
pub fn execute_batch(backend: &mut dyn BulkBackend, ops: &[RowOp]) -> BatchReport {
    let cycles_before = backend.stats().total_cycles();
    let energy_before = backend.stats().total_energy_nj();
    let outputs = ops
        .iter()
        .map(|op| match op {
            RowOp::Not { src, dst } => backend.not(*src, *dst).map(|()| RowOpOutput::Done),
            RowOp::And { a, b, dst } => backend.and(*a, *b, *dst).map(|()| RowOpOutput::Done),
            RowOp::Or { a, b, dst } => backend.or(*a, *b, *dst).map(|()| RowOpOutput::Done),
            RowOp::Xor { a, b, dst } => backend.xor(*a, *b, *dst).map(|()| RowOpOutput::Done),
            RowOp::Nand { a, b, dst } => backend.nand(*a, *b, *dst).map(|()| RowOpOutput::Done),
            RowOp::Nor { a, b, dst } => backend.nor(*a, *b, *dst).map(|()| RowOpOutput::Done),
            RowOp::Xnor { a, b, dst } => backend.xnor(*a, *b, *dst).map(|()| RowOpOutput::Done),
            RowOp::Copy { src, dst } => backend.copy(*src, *dst).map(|()| RowOpOutput::Done),
            RowOp::Write { row, data } => {
                backend.write_row(*row, data).map(|()| RowOpOutput::Done)
            }
            RowOp::Read { row } => backend.read_row(*row).map(RowOpOutput::Data),
        })
        .collect();
    felim_telemetry::counter("arch.batch.dispatches").inc();
    felim_telemetry::counter("arch.batch.ops").add(ops.len() as u64);
    BatchReport {
        outputs,
        cycles: backend.stats().total_cycles() - cycles_before,
        energy_nj: backend.stats().total_energy_nj() - energy_before,
    }
}

// ---------------------------------------------------------------------
// Wire codecs
//
// The multi-node shard transport (`felim-serve`'s `wire` module) ships
// batches of `RowOp`s and their outcomes between processes as
// length-prefixed binary frames. The types that cross the link encode
// themselves here — next to their definitions — so a new variant cannot
// be added without the codec (and its round-trip property test)
// noticing. All integers are little-endian; `f64` travels as its IEEE
// bit pattern, so replies are bit-identical across the link.
// ---------------------------------------------------------------------

/// Appends a `u64` little-endian.
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a `u64` little-endian, advancing `pos`. `None` on short input.
fn take_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let bytes = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
}

/// Appends a word slice as a count-prefixed run.
fn put_words(out: &mut Vec<u8>, words: &[u64]) {
    put_u64(out, words.len() as u64);
    for &w in words {
        put_u64(out, w);
    }
}

/// Reads a count-prefixed word run. `None` on short input or a count
/// that exceeds the remaining bytes (a corrupt length cannot allocate
/// unboundedly).
fn take_words(buf: &[u8], pos: &mut usize) -> Option<Vec<u64>> {
    let n = take_u64(buf, pos)?;
    if (buf.len() - *pos) as u64 / 8 < n {
        return None;
    }
    (0..n).map(|_| take_u64(buf, pos)).collect()
}

impl RowOp {
    /// Appends this op's wire encoding (tag byte + operand rows) to
    /// `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let two = |out: &mut Vec<u8>, tag: u8, a: RowId, b: RowId| {
            out.push(tag);
            put_u64(out, a.0);
            put_u64(out, b.0);
        };
        let three = |out: &mut Vec<u8>, tag: u8, a: RowId, b: RowId, d: RowId| {
            out.push(tag);
            put_u64(out, a.0);
            put_u64(out, b.0);
            put_u64(out, d.0);
        };
        match self {
            RowOp::Not { src, dst } => two(out, 0, *src, *dst),
            RowOp::And { a, b, dst } => three(out, 1, *a, *b, *dst),
            RowOp::Or { a, b, dst } => three(out, 2, *a, *b, *dst),
            RowOp::Xor { a, b, dst } => three(out, 3, *a, *b, *dst),
            RowOp::Nand { a, b, dst } => three(out, 4, *a, *b, *dst),
            RowOp::Nor { a, b, dst } => three(out, 5, *a, *b, *dst),
            RowOp::Xnor { a, b, dst } => three(out, 6, *a, *b, *dst),
            RowOp::Copy { src, dst } => two(out, 7, *src, *dst),
            RowOp::Write { row, data } => {
                out.push(8);
                put_u64(out, row.0);
                put_words(out, data);
            }
            RowOp::Read { row } => {
                out.push(9);
                put_u64(out, row.0);
            }
        }
    }

    /// Decodes one op from `buf` at `pos`, advancing `pos` past it.
    /// Returns `None` on a truncated buffer or an unknown tag — the
    /// caller maps that to a typed transport error.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<RowOp> {
        let tag = *buf.get(*pos)?;
        *pos += 1;
        let mut row = || take_u64(buf, pos).map(RowId);
        Some(match tag {
            0 => RowOp::Not { src: row()?, dst: row()? },
            1 => RowOp::And { a: row()?, b: row()?, dst: row()? },
            2 => RowOp::Or { a: row()?, b: row()?, dst: row()? },
            3 => RowOp::Xor { a: row()?, b: row()?, dst: row()? },
            4 => RowOp::Nand { a: row()?, b: row()?, dst: row()? },
            5 => RowOp::Nor { a: row()?, b: row()?, dst: row()? },
            6 => RowOp::Xnor { a: row()?, b: row()?, dst: row()? },
            7 => RowOp::Copy { src: row()?, dst: row()? },
            8 => RowOp::Write {
                row: RowId(take_u64(buf, pos)?),
                data: take_words(buf, pos)?,
            },
            9 => RowOp::Read {
                row: RowId(take_u64(buf, pos)?),
            },
            _ => return None,
        })
    }
}

impl RowOpOutput {
    /// Appends this output's wire encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RowOpOutput::Done => out.push(0),
            RowOpOutput::Data(words) => {
                out.push(1);
                put_words(out, words);
            }
        }
    }

    /// Decodes one output from `buf` at `pos`. `None` on malformed
    /// input.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<RowOpOutput> {
        let tag = *buf.get(*pos)?;
        *pos += 1;
        Some(match tag {
            0 => RowOpOutput::Done,
            1 => RowOpOutput::Data(take_words(buf, pos)?),
            _ => return None,
        })
    }
}

impl ArchError {
    /// Appends this error's wire encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ArchError::RowOutOfRange { row, rows } => {
                out.push(0);
                put_u64(out, *row);
                put_u64(out, *rows);
            }
            ArchError::RowSizeMismatch { expected, got } => {
                out.push(1);
                put_u64(out, *expected as u64);
                put_u64(out, *got as u64);
            }
            ArchError::UncorrectableWrite { row, attempts } => {
                out.push(2);
                put_u64(out, *row);
                put_u64(out, u64::from(*attempts));
            }
            ArchError::SparesExhausted { row } => {
                out.push(3);
                put_u64(out, *row);
            }
            ArchError::Uncorrectable { row, words } => {
                out.push(4);
                put_u64(out, *row);
                put_u64(out, words.len() as u64);
                for &w in words {
                    put_u64(out, w as u64);
                }
            }
        }
    }

    /// Decodes one error from `buf` at `pos`. `None` on malformed
    /// input.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<ArchError> {
        let tag = *buf.get(*pos)?;
        *pos += 1;
        Some(match tag {
            0 => ArchError::RowOutOfRange {
                row: take_u64(buf, pos)?,
                rows: take_u64(buf, pos)?,
            },
            1 => ArchError::RowSizeMismatch {
                expected: take_u64(buf, pos)? as usize,
                got: take_u64(buf, pos)? as usize,
            },
            2 => ArchError::UncorrectableWrite {
                row: take_u64(buf, pos)?,
                attempts: u32::try_from(take_u64(buf, pos)?).ok()?,
            },
            3 => ArchError::SparesExhausted {
                row: take_u64(buf, pos)?,
            },
            4 => {
                let row = take_u64(buf, pos)?;
                let n = take_u64(buf, pos)?;
                if (buf.len() - *pos) as u64 / 8 < n {
                    return None;
                }
                let words = (0..n)
                    .map(|_| take_u64(buf, pos).map(|w| w as usize))
                    .collect::<Option<Vec<usize>>>()?;
                ArchError::Uncorrectable { row, words }
            }
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feram_backend::FeramBackend;

    #[test]
    fn batch_matches_individual_calls() {
        let words = FeramBackend::tiny().geometry().row_words();
        let a = vec![0xF0F0_F0F0u64; words];
        let b = vec![0x0FF0_0FF0u64; words];

        let mut serial = FeramBackend::tiny();
        serial.write_row(RowId(0), &a).unwrap();
        serial.write_row(RowId(1), &b).unwrap();
        serial.xor(RowId(0), RowId(1), RowId(2)).unwrap();
        let want = serial.read_row(RowId(2)).unwrap();

        let mut batched = FeramBackend::tiny();
        let report = execute_batch(
            &mut batched,
            &[
                RowOp::Write {
                    row: RowId(0),
                    data: a,
                },
                RowOp::Write {
                    row: RowId(1),
                    data: b,
                },
                RowOp::Xor {
                    a: RowId(0),
                    b: RowId(1),
                    dst: RowId(2),
                },
                RowOp::Read { row: RowId(2) },
            ],
        );
        assert_eq!(report.failures(), 0);
        assert_eq!(
            report.outputs[3],
            Ok(RowOpOutput::Data(want)),
            "batched result must match serial"
        );
        assert_eq!(report.cycles, serial.stats().total_cycles());
        assert!((report.energy_nj - serial.stats().total_energy_nj()).abs() < 1e-9);
    }

    #[test]
    fn op_failures_are_isolated() {
        let mut mem = FeramBackend::tiny();
        let words = mem.geometry().row_words();
        let rows = mem.geometry().total_rows();
        let report = execute_batch(
            &mut mem,
            &[
                RowOp::Write {
                    row: RowId(0),
                    data: vec![7; words],
                },
                // Out of range: fails without aborting the batch.
                RowOp::Read { row: RowId(rows) },
                RowOp::Read { row: RowId(0) },
            ],
        );
        assert_eq!(report.failures(), 1);
        assert!(matches!(
            report.outputs[1],
            Err(ArchError::RowOutOfRange { .. })
        ));
        assert_eq!(report.outputs[2], Ok(RowOpOutput::Data(vec![7; words])));
    }

    #[test]
    fn every_op_kind_dispatches() {
        let mut mem = FeramBackend::tiny();
        let words = mem.geometry().row_words();
        let av = 0b1100u64;
        let bv = 0b1010u64;
        let ops = vec![
            RowOp::Write {
                row: RowId(0),
                data: vec![av; words],
            },
            RowOp::Write {
                row: RowId(1),
                data: vec![bv; words],
            },
            RowOp::Not {
                src: RowId(0),
                dst: RowId(2),
            },
            RowOp::And {
                a: RowId(0),
                b: RowId(1),
                dst: RowId(3),
            },
            RowOp::Or {
                a: RowId(0),
                b: RowId(1),
                dst: RowId(4),
            },
            RowOp::Xor {
                a: RowId(0),
                b: RowId(1),
                dst: RowId(5),
            },
            RowOp::Nand {
                a: RowId(0),
                b: RowId(1),
                dst: RowId(6),
            },
            RowOp::Nor {
                a: RowId(0),
                b: RowId(1),
                dst: RowId(7),
            },
            RowOp::Xnor {
                a: RowId(0),
                b: RowId(1),
                dst: RowId(8),
            },
            RowOp::Copy {
                src: RowId(3),
                dst: RowId(9),
            },
        ];
        let report = execute_batch(&mut mem, &ops);
        assert_eq!(report.failures(), 0, "{:?}", report.outputs);
        let expect: [(u64, u64); 8] = [
            (2, !av),
            (3, av & bv),
            (4, av | bv),
            (5, av ^ bv),
            (6, !(av & bv)),
            (7, !(av | bv)),
            (8, !(av ^ bv)),
            (9, av & bv),
        ];
        for (row, want) in expect {
            assert_eq!(mem.read_row(RowId(row)).unwrap()[0], want, "row {row}");
        }
        assert_eq!(ops[0].mnemonic(), "write");
        assert_eq!(ops[9].mnemonic(), "copy");
    }

    /// One op of every kind, for codec coverage.
    fn one_of_each() -> Vec<RowOp> {
        let (a, b, d) = (RowId(3), RowId(5), RowId(9));
        vec![
            RowOp::Not { src: a, dst: d },
            RowOp::And { a, b, dst: d },
            RowOp::Or { a, b, dst: d },
            RowOp::Xor { a, b, dst: d },
            RowOp::Nand { a, b, dst: d },
            RowOp::Nor { a, b, dst: d },
            RowOp::Xnor { a, b, dst: d },
            RowOp::Copy { src: b, dst: a },
            RowOp::Write {
                row: RowId(7),
                data: vec![u64::MAX, 0, 0xDEAD_BEEF],
            },
            RowOp::Read { row: RowId(11) },
        ]
    }

    #[test]
    fn row_op_codec_round_trips_every_variant() {
        let mut buf = Vec::new();
        let ops = one_of_each();
        for op in &ops {
            op.encode(&mut buf);
        }
        let mut pos = 0;
        for op in &ops {
            assert_eq!(RowOp::decode(&buf, &mut pos).as_ref(), Some(op));
        }
        assert_eq!(pos, buf.len(), "codec must consume exactly what it wrote");
    }

    #[test]
    fn outcome_and_error_codecs_round_trip() {
        let outputs = [RowOpOutput::Done, RowOpOutput::Data(vec![1, 2, u64::MAX])];
        let errors = [
            ArchError::RowOutOfRange { row: 9, rows: 4 },
            ArchError::RowSizeMismatch { expected: 128, got: 3 },
            ArchError::UncorrectableWrite { row: 1, attempts: 4 },
            ArchError::SparesExhausted { row: 2 },
            ArchError::Uncorrectable { row: 3, words: vec![0, 17] },
        ];
        let mut buf = Vec::new();
        for o in &outputs {
            o.encode(&mut buf);
        }
        for e in &errors {
            e.encode(&mut buf);
        }
        let mut pos = 0;
        for o in &outputs {
            assert_eq!(RowOpOutput::decode(&buf, &mut pos).as_ref(), Some(o));
        }
        for e in &errors {
            assert_eq!(ArchError::decode(&buf, &mut pos).as_ref(), Some(e));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn codecs_reject_truncation_and_bad_tags_without_panicking() {
        let mut buf = Vec::new();
        RowOp::Write {
            row: RowId(1),
            data: vec![7; 16],
        }
        .encode(&mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(
                RowOp::decode(&buf[..cut], &mut pos).is_none(),
                "truncation at {cut} must be rejected"
            );
        }
        let mut pos = 0;
        assert!(RowOp::decode(&[0xFF], &mut pos).is_none(), "unknown tag");
        // A corrupt word count larger than the remaining payload must be
        // rejected before any allocation is attempted.
        let mut evil = vec![8u8]; // Write tag
        evil.extend_from_slice(&0u64.to_le_bytes()); // row
        evil.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd count
        let mut pos = 0;
        assert!(RowOp::decode(&evil, &mut pos).is_none());
    }
}
