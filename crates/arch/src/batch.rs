//! Batched row-operation dispatch: one entry point per *batch* instead
//! of one trait call per operation.
//!
//! The service layer coalesces compatible same-shard commands and hands
//! them to [`execute_batch`] as a slice of [`RowOp`]s. The batch runs
//! front to back on one backend; each op succeeds or fails
//! independently (a fault in one request of a coalesced batch must not
//! poison its neighbours), and the report carries the per-op outcomes
//! in input order plus the cycle/energy deltas for the whole batch —
//! the numbers the service layer turns into latency accounting.
//!
//! ```
//! use felim_arch::batch::{execute_batch, RowOp, RowOpOutput};
//! use felim_arch::{BulkBackend, FeramBackend, RowId};
//!
//! let mut mem = FeramBackend::tiny();
//! let words = mem.geometry().row_words();
//! let report = execute_batch(
//!     &mut mem,
//!     &[
//!         RowOp::Write { row: RowId(0), data: vec![0b1100; words] },
//!         RowOp::Write { row: RowId(1), data: vec![0b1010; words] },
//!         RowOp::Nand { a: RowId(0), b: RowId(1), dst: RowId(2) },
//!         RowOp::Read { row: RowId(2) },
//!     ],
//! );
//! assert_eq!(report.outputs.len(), 4);
//! match report.outputs[3].as_ref().unwrap() {
//!     RowOpOutput::Data(data) => assert_eq!(data[0], !0b1000u64),
//!     RowOpOutput::Done => panic!("read must return data"),
//! }
//! assert!(report.cycles > 0 && report.energy_nj > 0.0);
//! ```

use crate::geometry::RowId;
use crate::{ArchError, BulkBackend};
use serde::Serialize;

/// One row-level operation inside a batch. Rows are backend-local
/// physical addresses — the caller (the shard router) has already
/// resolved logical addresses to the owning backend.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum RowOp {
    /// `dst = NOT src`.
    Not {
        /// Source row.
        src: RowId,
        /// Destination row.
        dst: RowId,
    },
    /// `dst = a AND b`.
    And {
        /// First operand.
        a: RowId,
        /// Second operand.
        b: RowId,
        /// Destination row.
        dst: RowId,
    },
    /// `dst = a OR b`.
    Or {
        /// First operand.
        a: RowId,
        /// Second operand.
        b: RowId,
        /// Destination row.
        dst: RowId,
    },
    /// `dst = a XOR b`.
    Xor {
        /// First operand.
        a: RowId,
        /// Second operand.
        b: RowId,
        /// Destination row.
        dst: RowId,
    },
    /// `dst = NOT (a AND b)`.
    Nand {
        /// First operand.
        a: RowId,
        /// Second operand.
        b: RowId,
        /// Destination row.
        dst: RowId,
    },
    /// `dst = NOT (a OR b)`.
    Nor {
        /// First operand.
        a: RowId,
        /// Second operand.
        b: RowId,
        /// Destination row.
        dst: RowId,
    },
    /// `dst = NOT (a XOR b)`.
    Xnor {
        /// First operand.
        a: RowId,
        /// Second operand.
        b: RowId,
        /// Destination row.
        dst: RowId,
    },
    /// Copies `src` into `dst`.
    Copy {
        /// Source row.
        src: RowId,
        /// Destination row.
        dst: RowId,
    },
    /// Host write of a full row.
    Write {
        /// Destination row.
        row: RowId,
        /// Exactly `row_words()` words.
        data: Vec<u64>,
    },
    /// Host read of a full row.
    Read {
        /// Source row.
        row: RowId,
    },
}

impl RowOp {
    /// Short operation mnemonic (telemetry labels, error messages).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            RowOp::Not { .. } => "not",
            RowOp::And { .. } => "and",
            RowOp::Or { .. } => "or",
            RowOp::Xor { .. } => "xor",
            RowOp::Nand { .. } => "nand",
            RowOp::Nor { .. } => "nor",
            RowOp::Xnor { .. } => "xnor",
            RowOp::Copy { .. } => "copy",
            RowOp::Write { .. } => "write",
            RowOp::Read { .. } => "read",
        }
    }
}

/// Successful result of one [`RowOp`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum RowOpOutput {
    /// The op completed; it produces no host-visible data.
    Done,
    /// The op completed and read this row back to the host.
    Data(Vec<u64>),
}

/// Outcome of one batch: per-op results in input order plus the
/// aggregate cost of the whole batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// One entry per input op, in input order. Failed ops carry their
    /// typed [`ArchError`]; later ops still run.
    pub outputs: Vec<Result<RowOpOutput, ArchError>>,
    /// Cycles charged by the backend across the batch (serial model).
    pub cycles: u64,
    /// Energy charged across the batch, nJ.
    pub energy_nj: f64,
}

impl BatchReport {
    /// Number of ops that failed.
    pub fn failures(&self) -> usize {
        self.outputs.iter().filter(|o| o.is_err()).count()
    }
}

/// Runs `ops` front to back on `backend`, isolating per-op failures,
/// and reports per-op outcomes plus the batch's cycle/energy deltas.
pub fn execute_batch(backend: &mut dyn BulkBackend, ops: &[RowOp]) -> BatchReport {
    let cycles_before = backend.stats().total_cycles();
    let energy_before = backend.stats().total_energy_nj();
    let outputs = ops
        .iter()
        .map(|op| match op {
            RowOp::Not { src, dst } => backend.not(*src, *dst).map(|()| RowOpOutput::Done),
            RowOp::And { a, b, dst } => backend.and(*a, *b, *dst).map(|()| RowOpOutput::Done),
            RowOp::Or { a, b, dst } => backend.or(*a, *b, *dst).map(|()| RowOpOutput::Done),
            RowOp::Xor { a, b, dst } => backend.xor(*a, *b, *dst).map(|()| RowOpOutput::Done),
            RowOp::Nand { a, b, dst } => backend.nand(*a, *b, *dst).map(|()| RowOpOutput::Done),
            RowOp::Nor { a, b, dst } => backend.nor(*a, *b, *dst).map(|()| RowOpOutput::Done),
            RowOp::Xnor { a, b, dst } => backend.xnor(*a, *b, *dst).map(|()| RowOpOutput::Done),
            RowOp::Copy { src, dst } => backend.copy(*src, *dst).map(|()| RowOpOutput::Done),
            RowOp::Write { row, data } => {
                backend.write_row(*row, data).map(|()| RowOpOutput::Done)
            }
            RowOp::Read { row } => backend.read_row(*row).map(RowOpOutput::Data),
        })
        .collect();
    felim_telemetry::counter("arch.batch.dispatches").inc();
    felim_telemetry::counter("arch.batch.ops").add(ops.len() as u64);
    BatchReport {
        outputs,
        cycles: backend.stats().total_cycles() - cycles_before,
        energy_nj: backend.stats().total_energy_nj() - energy_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feram_backend::FeramBackend;

    #[test]
    fn batch_matches_individual_calls() {
        let words = FeramBackend::tiny().geometry().row_words();
        let a = vec![0xF0F0_F0F0u64; words];
        let b = vec![0x0FF0_0FF0u64; words];

        let mut serial = FeramBackend::tiny();
        serial.write_row(RowId(0), &a).unwrap();
        serial.write_row(RowId(1), &b).unwrap();
        serial.xor(RowId(0), RowId(1), RowId(2)).unwrap();
        let want = serial.read_row(RowId(2)).unwrap();

        let mut batched = FeramBackend::tiny();
        let report = execute_batch(
            &mut batched,
            &[
                RowOp::Write {
                    row: RowId(0),
                    data: a,
                },
                RowOp::Write {
                    row: RowId(1),
                    data: b,
                },
                RowOp::Xor {
                    a: RowId(0),
                    b: RowId(1),
                    dst: RowId(2),
                },
                RowOp::Read { row: RowId(2) },
            ],
        );
        assert_eq!(report.failures(), 0);
        assert_eq!(
            report.outputs[3],
            Ok(RowOpOutput::Data(want)),
            "batched result must match serial"
        );
        assert_eq!(report.cycles, serial.stats().total_cycles());
        assert!((report.energy_nj - serial.stats().total_energy_nj()).abs() < 1e-9);
    }

    #[test]
    fn op_failures_are_isolated() {
        let mut mem = FeramBackend::tiny();
        let words = mem.geometry().row_words();
        let rows = mem.geometry().total_rows();
        let report = execute_batch(
            &mut mem,
            &[
                RowOp::Write {
                    row: RowId(0),
                    data: vec![7; words],
                },
                // Out of range: fails without aborting the batch.
                RowOp::Read { row: RowId(rows) },
                RowOp::Read { row: RowId(0) },
            ],
        );
        assert_eq!(report.failures(), 1);
        assert!(matches!(
            report.outputs[1],
            Err(ArchError::RowOutOfRange { .. })
        ));
        assert_eq!(report.outputs[2], Ok(RowOpOutput::Data(vec![7; words])));
    }

    #[test]
    fn every_op_kind_dispatches() {
        let mut mem = FeramBackend::tiny();
        let words = mem.geometry().row_words();
        let av = 0b1100u64;
        let bv = 0b1010u64;
        let ops = vec![
            RowOp::Write {
                row: RowId(0),
                data: vec![av; words],
            },
            RowOp::Write {
                row: RowId(1),
                data: vec![bv; words],
            },
            RowOp::Not {
                src: RowId(0),
                dst: RowId(2),
            },
            RowOp::And {
                a: RowId(0),
                b: RowId(1),
                dst: RowId(3),
            },
            RowOp::Or {
                a: RowId(0),
                b: RowId(1),
                dst: RowId(4),
            },
            RowOp::Xor {
                a: RowId(0),
                b: RowId(1),
                dst: RowId(5),
            },
            RowOp::Nand {
                a: RowId(0),
                b: RowId(1),
                dst: RowId(6),
            },
            RowOp::Nor {
                a: RowId(0),
                b: RowId(1),
                dst: RowId(7),
            },
            RowOp::Xnor {
                a: RowId(0),
                b: RowId(1),
                dst: RowId(8),
            },
            RowOp::Copy {
                src: RowId(3),
                dst: RowId(9),
            },
        ];
        let report = execute_batch(&mut mem, &ops);
        assert_eq!(report.failures(), 0, "{:?}", report.outputs);
        let expect: [(u64, u64); 8] = [
            (2, !av),
            (3, av & bv),
            (4, av | bv),
            (5, av ^ bv),
            (6, !(av & bv)),
            (7, !(av | bv)),
            (8, !(av ^ bv)),
            (9, av & bv),
        ];
        for (row, want) in expect {
            assert_eq!(mem.read_row(RowId(row)).unwrap()[0], want, "row {row}");
        }
        assert_eq!(ops[0].mnemonic(), "write");
        assert_eq!(ops[9].mnemonic(), "copy");
    }
}
