//! Per-command energy and latency constants.
//!
//! Values from the paper's cell-level SPICE study (Section VI):
//!
//! | command   | DRAM      | 2T-nC FeRAM |
//! |-----------|-----------|-------------|
//! | ACTIVATE  | 22.6 nJ   | 16.6 nJ     |
//! | PRECHARGE | 0.32 nJ   | 0.32 nJ     |
//! | latency   | 1 cycle per ACTIVATE / COPY / PRECHARGE |
//!
//! The QNRO mechanism is what buys the lower FeRAM ACTIVATE energy — no
//! full polarization reversal on reads. Host row writes/reads are charged
//! one activate-class operation; the FeRAM COPY drives the destination
//! row's write path, so it carries write-class energy.

use crate::command::Command;
use crate::stats::CommandClass;
use serde::{Deserialize, Serialize};

/// Energy constants, in nJ per row-level command.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per ACTIVATE-class command (ACT, TRA, TBA, RowClone), nJ.
    pub activate_nj: f64,
    /// Energy per PRECHARGE, nJ.
    pub precharge_nj: f64,
    /// Energy per COPY (FeRAM tri-state-buffer row write), nJ.
    pub copy_nj: f64,
    /// Energy per host row write, nJ.
    pub write_nj: f64,
    /// Energy per host row read, nJ.
    pub read_nj: f64,
    /// Energy per refreshed row (ACT + PRE), nJ.
    pub refresh_row_nj: f64,
}

impl EnergyModel {
    /// The paper's DRAM constants.
    pub fn dram() -> Self {
        Self {
            activate_nj: 22.6,
            precharge_nj: 0.32,
            // DRAM has no separate COPY — RowClone is activate-class.
            copy_nj: 22.6,
            write_nj: 22.6 + 0.32,
            read_nj: 22.6 + 0.32,
            refresh_row_nj: 22.6 + 0.32,
        }
    }

    /// The paper's 2T-nC FeRAM constants.
    ///
    /// The 16.6 nJ figure is the QNRO ACTIVATE — no full polarization
    /// reversal. COPY and host writes *do* fully switch the destination
    /// row's capacitors, so they carry full-switching energy, calibrated
    /// to the DRAM activate level (22.6 nJ/row; a full FE reversal moves
    /// 2·Pr·A of charge per cell, comparable to restoring a DRAM row).
    pub fn feram_2tnc() -> Self {
        Self {
            activate_nj: 16.6,
            precharge_nj: 0.32,
            copy_nj: 22.6,
            write_nj: 22.6,
            read_nj: 16.6 + 0.32,
            refresh_row_nj: 0.0,
        }
    }

    /// Energy of one command, in nJ.
    pub fn energy_nj(&self, cmd: &Command) -> f64 {
        match cmd.class() {
            CommandClass::Activate => self.activate_nj,
            CommandClass::Copy => self.copy_nj,
            CommandClass::Precharge => self.precharge_nj,
            CommandClass::Write => self.write_nj,
            CommandClass::Read => self.read_nj,
            CommandClass::Refresh => match cmd {
                Command::Refresh { rows } => self.refresh_row_nj * *rows as f64,
                _ => unreachable!("refresh class implies refresh command"),
            },
        }
    }
}

/// Latency constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Cycles per primitive (the paper assumes a uniform 1).
    pub cycles_per_primitive: u64,
    /// Cycle time in ns (used to convert runtime to wall-clock for
    /// refresh-window accounting).
    pub cycle_time_ns: f64,
    /// Refresh interval in ms (64 ms in the paper's DRAM model;
    /// irrelevant for FeRAM).
    pub refresh_interval_ms: f64,
}

impl LatencyModel {
    /// The paper's uniform-latency model with a 50 ns memory cycle.
    pub fn paper_default() -> Self {
        Self {
            cycles_per_primitive: 1,
            cycle_time_ns: 50.0,
            refresh_interval_ms: 64.0,
        }
    }

    /// Cycles taken by one command.
    pub fn cycles(&self, cmd: &Command) -> u64 {
        match cmd {
            // A refresh batch stalls one primitive slot per 2 rows (ACT
            // and PRE pipelined across banks).
            Command::Refresh { rows } => self.cycles_per_primitive * rows.div_ceil(2),
            _ => self.cycles_per_primitive,
        }
    }

    /// Wall-clock duration of `cycles`, in seconds.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 * self.cycle_time_ns * 1e-9
    }

    /// Refresh interval in seconds.
    pub fn refresh_interval_s(&self) -> f64 {
        self.refresh_interval_ms * 1e-3
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::RowId;

    #[test]
    fn paper_constants() {
        let d = EnergyModel::dram();
        assert_eq!(d.activate_nj, 22.6);
        assert_eq!(d.precharge_nj, 0.32);
        let f = EnergyModel::feram_2tnc();
        assert_eq!(f.activate_nj, 16.6);
        assert_eq!(f.precharge_nj, 0.32);
        assert_eq!(f.refresh_row_nj, 0.0, "FeRAM never refreshes");
    }

    #[test]
    fn aap_energy_is_two_activates_plus_precharge() {
        let d = EnergyModel::dram();
        let r = RowId(0);
        let aap = d.energy_nj(&Command::TripleRowActivate(r, r, r))
            + d.energy_nj(&Command::RowClone { dst: r })
            + d.energy_nj(&Command::Precharge);
        assert!((aap - 45.52).abs() < 1e-9, "AAP = {aap} nJ");
    }

    #[test]
    fn acp_energy_matches_feram_model() {
        let f = EnergyModel::feram_2tnc();
        let r = RowId(0);
        let acp = f.energy_nj(&Command::TripleBitActivate(r))
            + f.energy_nj(&Command::Copy {
                dst: r,
                complement: false,
            })
            + f.energy_nj(&Command::Precharge);
        assert!((acp - 39.52).abs() < 1e-9, "ACP = {acp} nJ");
    }

    #[test]
    fn refresh_energy_scales_with_rows() {
        let d = EnergyModel::dram();
        let e = d.energy_nj(&Command::Refresh { rows: 100 });
        assert!((e - 100.0 * 22.92).abs() < 1e-9);
    }

    #[test]
    fn latency_uniform_one_cycle() {
        let l = LatencyModel::paper_default();
        let r = RowId(0);
        assert_eq!(l.cycles(&Command::Activate(r)), 1);
        assert_eq!(l.cycles(&Command::Precharge), 1);
        assert_eq!(
            l.cycles(&Command::Copy {
                dst: r,
                complement: false
            }),
            1
        );
        assert_eq!(l.cycles(&Command::Refresh { rows: 100 }), 50);
    }

    #[test]
    fn time_conversions() {
        let l = LatencyModel::paper_default();
        assert!((l.seconds(20_000_000) - 1.0).abs() < 1e-12);
        assert!((l.refresh_interval_s() - 0.064).abs() < 1e-12);
    }
}
