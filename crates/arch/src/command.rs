//! Row-level command vocabulary.
//!
//! The paper's primitives (Section VI):
//!
//! * **DRAM / Ambit** — `AAP` (ACTIVATE-ACTIVATE-PRECHARGE): the first
//!   ACTIVATE performs a triple-row activation (MAJORITY), the second
//!   triggers RowClone to move the result over the shared bitlines, the
//!   PRECHARGE resets. NOT uses the dual-contact cell; operands must be
//!   copied into the designated compute rows first (destructive reads).
//! * **2T-nC FeRAM** — `ACP` (ACTIVATE-COPY-PRECHARGE): ACTIVATE performs
//!   the TBA (MINORITY), COPY drives the RSL data into the destination row
//!   through a tri-state buffer (RowClone does not apply — read and write
//!   paths are separate), PRECHARGE resets the RSL buffer.

use crate::geometry::RowId;
use crate::stats::CommandClass;
use serde::{Deserialize, Serialize};

/// One row-level memory command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Command {
    /// Plain single-row activation (read a row into the row buffer / RSL).
    Activate(RowId),
    /// Ambit triple-row activation: the three rows charge-share and
    /// resolve to their bitwise MAJORITY, destroying all three.
    TripleRowActivate(RowId, RowId, RowId),
    /// 2T-nC triple-bit activation on a logic-group row: each cell senses
    /// the MINORITY of its three capacitors (quasi-nondestructively).
    TripleBitActivate(RowId),
    /// The second ACTIVATE of an AAP: RowClone the row buffer into `dst`.
    RowClone {
        /// Destination row.
        dst: RowId,
    },
    /// FeRAM tri-state-buffer copy of the RSL data into `dst`, optionally
    /// complementing on the way (write drivers are differential, so
    /// polarity choice is free).
    Copy {
        /// Destination row.
        dst: RowId,
        /// Whether the write drivers complement the data.
        complement: bool,
    },
    /// Precharge / reset the row buffer or RSL buffer.
    Precharge,
    /// Host write of a full row.
    WriteRow(RowId),
    /// Host read of a full row.
    ReadRow(RowId),
    /// Refresh a batch of rows (DRAM only).
    Refresh {
        /// Number of rows refreshed.
        rows: u64,
    },
}

impl Command {
    /// The accounting class of this command.
    pub fn class(&self) -> CommandClass {
        match self {
            Command::Activate(_)
            | Command::TripleRowActivate(..)
            | Command::TripleBitActivate(_)
            | Command::RowClone { .. } => CommandClass::Activate,
            Command::Copy { .. } => CommandClass::Copy,
            Command::Precharge => CommandClass::Precharge,
            Command::WriteRow(_) => CommandClass::Write,
            Command::ReadRow(_) => CommandClass::Read,
            Command::Refresh { .. } => CommandClass::Refresh,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_all_commands() {
        let r = RowId(1);
        assert_eq!(Command::Activate(r).class(), CommandClass::Activate);
        assert_eq!(
            Command::TripleRowActivate(r, r, r).class(),
            CommandClass::Activate
        );
        assert_eq!(
            Command::TripleBitActivate(r).class(),
            CommandClass::Activate
        );
        assert_eq!(Command::RowClone { dst: r }.class(), CommandClass::Activate);
        assert_eq!(
            Command::Copy {
                dst: r,
                complement: true
            }
            .class(),
            CommandClass::Copy
        );
        assert_eq!(Command::Precharge.class(), CommandClass::Precharge);
        assert_eq!(Command::WriteRow(r).class(), CommandClass::Write);
        assert_eq!(Command::ReadRow(r).class(), CommandClass::Read);
        assert_eq!(Command::Refresh { rows: 4 }.class(), CommandClass::Refresh);
    }
}
