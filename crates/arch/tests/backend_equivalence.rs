//! Differential testing: the DRAM and FeRAM backends must compute
//! identical row contents for arbitrary random programs — they differ in
//! cost, never in semantics.

use felim_arch::{BulkBackend, DramBackend, FeramBackend, MemoryGeometry, RowId};
use proptest::prelude::*;

/// One random program step over a small row set.
#[derive(Debug, Clone)]
enum Step {
    And(u64, u64, u64),
    Or(u64, u64, u64),
    Xor(u64, u64, u64),
    Nand(u64, u64, u64),
    Nor(u64, u64, u64),
    Not(u64, u64),
    Copy(u64, u64),
    Write(u64, u64), // (row, fill word)
}

const ROWS: u64 = 12;

fn step_strategy() -> impl Strategy<Value = Step> {
    let r = 0..ROWS;
    prop_oneof![
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, d)| Step::And(a, b, d)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, d)| Step::Or(a, b, d)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, d)| Step::Xor(a, b, d)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, d)| Step::Nand(a, b, d)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, d)| Step::Nor(a, b, d)),
        (r.clone(), r.clone()).prop_map(|(a, d)| Step::Not(a, d)),
        (r.clone(), r.clone()).prop_map(|(a, d)| Step::Copy(a, d)),
        (r, any::<u64>()).prop_map(|(a, w)| Step::Write(a, w)),
    ]
}

fn run_program(backend: &mut dyn BulkBackend, program: &[Step]) -> Vec<Vec<u64>> {
    let words = backend.geometry().row_words();
    // Deterministic starting contents.
    for row in 0..ROWS {
        backend
            .install_row(RowId(row), &vec![row.wrapping_mul(0x9E37_79B9); words])
            .unwrap();
    }
    for step in program {
        match *step {
            Step::And(a, b, d) => backend.and(RowId(a), RowId(b), RowId(d)),
            Step::Or(a, b, d) => backend.or(RowId(a), RowId(b), RowId(d)),
            Step::Xor(a, b, d) => backend.xor(RowId(a), RowId(b), RowId(d)),
            Step::Nand(a, b, d) => backend.nand(RowId(a), RowId(b), RowId(d)),
            Step::Nor(a, b, d) => backend.nor(RowId(a), RowId(b), RowId(d)),
            Step::Not(a, d) => backend.not(RowId(a), RowId(d)),
            Step::Copy(a, d) => backend.copy(RowId(a), RowId(d)),
            Step::Write(a, w) => backend.write_row(RowId(a), &vec![w; words]),
        }
        .unwrap();
    }
    (0..ROWS)
        .map(|r| backend.read_row(RowId(r)).unwrap())
        .collect()
}

/// Word-level software oracle of the same program.
fn run_oracle(program: &[Step], words: usize) -> Vec<Vec<u64>> {
    let mut rows: Vec<Vec<u64>> = (0..ROWS)
        .map(|r| vec![r.wrapping_mul(0x9E37_79B9); words])
        .collect();
    for step in program {
        let get = |rows: &Vec<Vec<u64>>, i: u64| rows[i as usize].clone();
        match *step {
            Step::And(a, b, d) => {
                let (x, y) = (get(&rows, a), get(&rows, b));
                rows[d as usize] = x.iter().zip(&y).map(|(p, q)| p & q).collect();
            }
            Step::Or(a, b, d) => {
                let (x, y) = (get(&rows, a), get(&rows, b));
                rows[d as usize] = x.iter().zip(&y).map(|(p, q)| p | q).collect();
            }
            Step::Xor(a, b, d) => {
                let (x, y) = (get(&rows, a), get(&rows, b));
                rows[d as usize] = x.iter().zip(&y).map(|(p, q)| p ^ q).collect();
            }
            Step::Nand(a, b, d) => {
                let (x, y) = (get(&rows, a), get(&rows, b));
                rows[d as usize] = x.iter().zip(&y).map(|(p, q)| !(p & q)).collect();
            }
            Step::Nor(a, b, d) => {
                let (x, y) = (get(&rows, a), get(&rows, b));
                rows[d as usize] = x.iter().zip(&y).map(|(p, q)| !(p | q)).collect();
            }
            Step::Not(a, d) => {
                let x = get(&rows, a);
                rows[d as usize] = x.iter().map(|p| !p).collect();
            }
            Step::Copy(a, d) => {
                rows[d as usize] = get(&rows, a);
            }
            Step::Write(a, w) => {
                rows[a as usize] = vec![w; words];
            }
        }
    }
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary programs (including aliased operands and in-place
    /// destinations) produce identical memory images on both backends and
    /// match the software oracle.
    #[test]
    fn backends_agree_with_oracle(program in prop::collection::vec(step_strategy(), 1..24)) {
        let words = MemoryGeometry::tiny().row_words();
        let oracle = run_oracle(&program, words);
        let mut feram = FeramBackend::new(MemoryGeometry::tiny());
        let feram_rows = run_program(&mut feram, &program);
        prop_assert_eq!(&feram_rows, &oracle, "FeRAM diverged from the oracle");
        let mut dram = DramBackend::new(MemoryGeometry::tiny());
        let dram_rows = run_program(&mut dram, &program);
        prop_assert_eq!(&dram_rows, &oracle, "DRAM diverged from the oracle");
    }

    /// FeRAM never loses to DRAM on cost, for any program.
    #[test]
    fn feram_cost_dominates_for_any_program(
        program in prop::collection::vec(step_strategy(), 1..16)
    ) {
        let mut feram = FeramBackend::new(MemoryGeometry::tiny());
        run_program(&mut feram, &program);
        let mut dram = DramBackend::new(MemoryGeometry::tiny());
        run_program(&mut dram, &program);
        prop_assert!(dram.stats().total_cycles() >= feram.stats().total_cycles());
        prop_assert!(dram.stats().total_energy_nj() >= feram.stats().total_energy_nj() - 1e-9);
    }
}
