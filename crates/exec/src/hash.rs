//! Shared content-hashing helpers: FNV-1a 64-bit.
//!
//! Several layers of the workspace key caches by content digests — the
//! cell-transient memoizer fingerprints netlist configurations, the
//! service layer digests read-back vectors and keys its read cache —
//! and all of them use the same dependency-free hash. This module is
//! the single implementation they share (it lives here rather than in
//! the `felim` core crate because `felim-cell` sits *below* the core
//! crate in the dependency graph, while every crate already depends on
//! `felim-exec`).
//!
//! FNV-1a is not cryptographic; it is used strictly for cache keying
//! and change detection, where the deterministic, endian-stable byte
//! walk matters more than adversarial collision resistance.

/// The FNV-1a 64-bit offset basis.
pub const FNV1A_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV1A_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit over a byte slice.
#[must_use]
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash = FNV1A_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV1A_PRIME);
    }
    hash
}

/// FNV-1a 64-bit over a string's UTF-8 bytes.
#[must_use]
pub fn fnv1a_str(s: &str) -> u64 {
    fnv1a_bytes(s.as_bytes())
}

/// FNV-1a 64-bit over a word slice, hashing each word's little-endian
/// bytes in order (the row-major vector digest the service layer
/// exposes in `Read` responses).
#[must_use]
pub fn fnv1a_words(words: &[u64]) -> u64 {
    let mut hash = FNV1A_OFFSET;
    for w in words {
        for byte in w.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV1A_PRIME);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the implementation to the published FNV-1a 64 test vectors:
    /// <http://www.isthe.com/chongo/tech/comp/fnv/> lists these digests
    /// for the empty string, `"a"`, and `"foobar"`.
    #[test]
    fn known_digests() {
        assert_eq!(fnv1a_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_bytes(b"foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(fnv1a_str("foobar"), fnv1a_bytes(b"foobar"));
    }

    #[test]
    fn words_hash_little_endian_bytes() {
        // One word must hash exactly like its 8 LE bytes.
        let w = 0x0102_0304_0506_0708u64;
        assert_eq!(fnv1a_words(&[w]), fnv1a_bytes(&w.to_le_bytes()));
        // Order-sensitive and content-sensitive.
        let a = fnv1a_words(&[1, 2, 3]);
        assert_eq!(a, fnv1a_words(&[1, 2, 3]));
        assert_ne!(a, fnv1a_words(&[1, 2, 4]));
        assert_ne!(a, fnv1a_words(&[2, 1, 3]));
        // Empty input is the offset basis.
        assert_eq!(fnv1a_words(&[]), FNV1A_OFFSET);
    }
}
