//! A reusable worker pool: spawn once, dispatch many.
//!
//! [`parallel_map`](crate::parallel_map) spawns scoped threads on every
//! call, which is the right trade for long campaigns that fan out once.
//! A request service dispatches thousands of small shard batches per
//! second; paying a spawn/join per dispatch would dwarf the work. An
//! [`ExecPool`] keeps its workers parked on a condition variable between
//! dispatches, so a dispatch costs one lock + one wake instead of a
//! thread spawn.
//!
//! The pool keeps the workspace's determinism contract: [`ExecPool::map`]
//! identifies every task by its input index, deposits results into their
//! index slots, and returns them in input order — the output is
//! bit-identical to the serial loop for any worker count or schedule.
//! The calling thread always participates in the claim loop, so a map
//! completes even on a pool with zero background workers (and a
//! single-worker pool degenerates to the serial loop on the caller).
//!
//! Because the workers are long-lived (not scoped), tasks must own their
//! inputs: `map` takes the items and the closure behind [`Arc`]s rather
//! than borrowing them. Panics inside the closure are forwarded to the
//! caller — the first captured payload is re-raised after every claimed
//! index has settled.
//!
//! ```
//! use felim_exec::ExecPool;
//! use std::sync::Arc;
//!
//! let pool = ExecPool::new(2);
//! let items = Arc::new((0u64..100).collect::<Vec<_>>());
//! let doubled = pool.map(&items, Arc::new(|_i: usize, x: &u64| x * 2));
//! assert_eq!(doubled[7], 14);
//! assert_eq!(pool.workers(), 2);
//! ```

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A queued unit of pool work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared pool state: the job queue and the shutdown flag, guarded by
/// one mutex with a condition variable for parked workers.
struct PoolShared {
    queue: Mutex<(VecDeque<Job>, bool)>,
    available: Condvar,
}

/// A persistent worker pool for repeated fan-out dispatch. See the
/// module docs for the determinism contract and the ownership rules.
pub struct ExecPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl ExecPool {
    /// Spawns a pool with `workers` background threads. Zero is valid —
    /// every [`ExecPool::map`] then runs serially on the calling thread.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new((VecDeque::new(), false)),
            available: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        #[cfg(feature = "telemetry")]
        felim_telemetry::gauge("exec.pool.workers").set(workers as f64);
        Self { shared, handles }
    }

    /// Spawns a pool sized by [`thread_count`](crate::thread_count)
    /// (the `FELIM_THREADS` knob, else available parallelism), with the
    /// calling thread counted as one of the workers: a `FELIM_THREADS=1`
    /// pool has zero background threads and runs fully serial.
    pub fn with_env_threads() -> Self {
        Self::new(crate::thread_count().saturating_sub(1))
    }

    /// Number of background worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues one fire-and-forget job.
    fn execute(&self, job: Job) {
        let mut guard = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.0.push_back(job);
        drop(guard);
        self.shared.available.notify_one();
    }

    /// Maps `f` over `items` across the pool, returning results in input
    /// order — bit-identical to the serial loop for any worker count.
    /// `f` receives `(index, &item)`; callers that need randomness derive
    /// a per-index stream (e.g. [`derive_seed`](crate::derive_seed)) so
    /// values never depend on scheduling. The calling thread joins the
    /// claim loop, so the map completes even if every background worker
    /// is busy or the pool has none.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic captured inside `f` once every claimed
    /// task has settled.
    pub fn map<T, U, F>(&self, items: &Arc<Vec<T>>, f: Arc<F>) -> Vec<U>
    where
        T: Send + Sync + 'static,
        U: Send + 'static,
        F: Fn(usize, &T) -> U + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        #[cfg(feature = "telemetry")]
        {
            felim_telemetry::counter("exec.pool.dispatches").inc();
            felim_telemetry::counter("exec.pool.tasks").add(n as u64);
        }
        let next = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel::<TaskResult<U>>();
        let helpers = self.handles.len().min(n.saturating_sub(1));
        for _ in 0..helpers {
            let items = Arc::clone(items);
            let f = Arc::clone(&f);
            let next = Arc::clone(&next);
            let tx = tx.clone();
            self.execute(Box::new(move || claim_loop(&items, &f, &next, &tx)));
        }

        // The caller participates under the same claim counter; its own
        // results (and any panic payload) go through the same channel.
        claim_loop(items, &f, &next, &tx);
        drop(tx);

        let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
        let mut settled = 0usize;
        let mut panic_payload: Option<Box<dyn Any + Send>> = None;
        while settled < n {
            match rx.recv().expect("every claimed task settles exactly once") {
                Ok((idx, value)) => slots[idx] = Some(value),
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
            settled += 1;
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index visited exactly once"))
            .collect()
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        {
            let mut guard = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.1 = true;
        }
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            // A worker that panicked already forwarded the payload
            // through its task channel; the join error adds nothing.
            let _ = handle.join();
        }
    }
}

/// One settled task: its index-tagged value, or the panic it raised.
type TaskResult<U> = Result<(usize, U), Box<dyn Any + Send>>;

/// Claims indices until the counter runs dry, sending one settled
/// result per claimed index (panics are captured, not unwound through
/// the pool).
fn claim_loop<T, U, F>(items: &Arc<Vec<T>>, f: &Arc<F>, next: &AtomicUsize, tx: &Sender<TaskResult<U>>)
where
    T: Send + Sync,
    U: Send,
    F: Fn(usize, &T) -> U,
{
    let n = items.len();
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))).map(|v| (i, v));
        // The receiver hangs up only after all n results arrived; a
        // straggler claiming late may find it gone, which is fine.
        if tx.send(outcome).is_err() {
            break;
        }
    }
}

/// Parks on the condition variable between jobs; exits on shutdown.
fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut guard = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(job) = guard.0.pop_front() {
                    break job;
                }
                if guard.1 {
                    return;
                }
                guard = shared
                    .available
                    .wait(guard)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_is_order_preserving_at_any_size() {
        let pool = ExecPool::new(3);
        for n in [0usize, 1, 2, 7, 100, 257] {
            let items = Arc::new((0..n as u64).collect::<Vec<_>>());
            let got = pool.map(&items, Arc::new(|_i: usize, x: &u64| x * x + 1));
            let want: Vec<u64> = (0..n as u64).map(|x| x * x + 1).collect();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn zero_worker_pool_runs_on_the_caller() {
        let pool = ExecPool::new(0);
        let items = Arc::new(vec![1u32, 2, 3]);
        let caller = std::thread::current().id();
        let got = pool.map(
            &items,
            Arc::new(move |_i: usize, x: &u32| {
                assert_eq!(std::thread::current().id(), caller);
                x + 10
            }),
        );
        assert_eq!(got, vec![11, 12, 13]);
    }

    #[test]
    fn pool_is_reusable_across_many_dispatches() {
        let pool = ExecPool::new(2);
        let mut acc = 0u64;
        for round in 0..50u64 {
            let items = Arc::new((0..16u64).collect::<Vec<_>>());
            let got = pool.map(&items, Arc::new(move |_i: usize, x: &u64| x + round));
            acc += got.iter().sum::<u64>();
        }
        let want: u64 = (0..50u64).map(|r| (0..16u64).map(|x| x + r).sum::<u64>()).sum();
        assert_eq!(acc, want);
    }

    #[test]
    fn index_matches_item_position() {
        let pool = ExecPool::new(4);
        let items = Arc::new((0..64usize).collect::<Vec<_>>());
        let got = pool.map(
            &items,
            Arc::new(|i: usize, x: &usize| {
                assert_eq!(i, *x);
                i
            }),
        );
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn panics_propagate_and_the_pool_survives() {
        let pool = ExecPool::new(2);
        let items = Arc::new(vec![1u32, 2, 3, 4]);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map(
                &items,
                Arc::new(|_i: usize, x: &u32| {
                    assert!(*x != 3, "boom");
                    *x
                }),
            )
        }));
        assert!(result.is_err());
        // The pool must keep working after a task panicked.
        let got = pool.map(&items, Arc::new(|_i: usize, x: &u32| x * 2));
        assert_eq!(got, vec![2, 4, 6, 8]);
    }

    #[test]
    fn matches_parallel_map_results() {
        let items_vec: Vec<u64> = (0..200).collect();
        let scoped = crate::parallel_map_threads(&items_vec, 4, |i, x| {
            crate::derive_seed(*x, i as u64)
        });
        let pool = ExecPool::new(4);
        let items = Arc::new(items_vec);
        let pooled = pool.map(
            &items,
            Arc::new(|i: usize, x: &u64| crate::derive_seed(*x, i as u64)),
        );
        assert_eq!(scoped, pooled);
    }
}
