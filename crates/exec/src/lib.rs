//! Deterministic scoped-thread execution engine.
//!
//! Everything stochastic in the felim workspace is explicitly seeded, so
//! parallelism must never change results. This crate provides the one
//! primitive the rest of the stack fans out on — an order-preserving
//! [`parallel_map`] — built so the output is **bit-identical to the
//! serial loop regardless of thread count or scheduling**:
//!
//! - every task is identified by its index in the input, and the closure
//!   receives that index so callers can derive a per-task RNG stream
//!   (e.g. `splitmix(seed, index)`) instead of sharing one sequential
//!   generator;
//! - results land in their index slot, so the returned `Vec` is in input
//!   order no matter which worker ran which task;
//! - tasks are handed out through an atomic index counter (a minimal
//!   work-stealing queue: idle workers keep pulling the next un-run
//!   index), so an unlucky schedule costs wall-clock, never correctness.
//!
//! The worker count comes from [`thread_count`]: the `FELIM_THREADS`
//! environment variable when set, otherwise the machine's available
//! parallelism. With one thread (or one task) the map degenerates to the
//! plain serial loop on the calling thread — no spawn, no atomics.
//!
//! Panics in tasks propagate to the caller (the scope joins all workers
//! first), and the closure runs exactly once per input item.
//!
//! ```
//! let doubled = felim_exec::parallel_map(&[1u64, 2, 3], |_idx, &x| x * 2);
//! assert_eq!(doubled, vec![2, 4, 6]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod hash;
pub mod pool;

pub use hash::{fnv1a_bytes, fnv1a_str, fnv1a_words};
pub use pool::ExecPool;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Name of the thread-count override knob.
pub const THREADS_ENV: &str = "FELIM_THREADS";

/// The worker count used by [`parallel_map`]: `FELIM_THREADS` if set to a
/// positive integer, otherwise [`std::thread::available_parallelism`]
/// (1 if even that is unavailable).
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to [`thread_count`] scoped threads,
/// returning results in input order. `f` receives `(index, &item)`;
/// callers that need randomness derive an independent stream from
/// `index` so the output never depends on the schedule.
///
/// # Panics
///
/// Propagates the first panic raised inside `f`.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    parallel_map_threads(items, thread_count(), f)
}

/// [`parallel_map`] with an explicit worker count (the determinism tests
/// sweep this directly; production callers use the env-driven default).
///
/// # Panics
///
/// Propagates the first panic raised inside `f`.
pub fn parallel_map_threads<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, n.max(1));
    #[cfg(feature = "telemetry")]
    {
        felim_telemetry::counter("exec.tasks").add(n as u64);
        felim_telemetry::gauge("exec.workers").set(workers as f64);
    }
    if workers <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    // Index-ordered result slots; each worker deposits finished batches
    // under the mutex (contended once per batch, not once per item).
    let slots: Mutex<Vec<Option<U>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let f = &f;
    let slots_ref = &slots;
    let next_ref = &next;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move |_| {
                    let mut local: Vec<(usize, U)> = Vec::new();
                    loop {
                        let i = next_ref.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                        // Flush periodically so one slow task at the end
                        // does not hold every earlier result hostage.
                        if local.len() >= 32 {
                            let mut s = slots_ref
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            for (idx, v) in local.drain(..) {
                                s[idx] = Some(v);
                            }
                        }
                    }
                    let mut s = slots_ref
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    for (idx, v) in local.drain(..) {
                        s[idx] = Some(v);
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    })
    .expect("exec scope");

    slots
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        .map(|slot| slot.expect("every index visited exactly once"))
        .collect()
}

/// Splitmix64 — the standard 64-bit seed mixer (same finalizer the
/// vendored `rand` uses to seed xoshiro). Used to derive independent
/// per-task RNG seeds from a base seed and a task index: statistically
/// decorrelated streams, stable under any thread count.
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 8] {
            let got = parallel_map_threads(&items, threads, |_i, &x| x * x + 1);
            assert_eq!(got, serial, "threads = {threads}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items: Vec<usize> = (0..100).collect();
        let got = parallel_map_threads(&items, 4, |i, &x| {
            assert_eq!(i, x);
            i
        });
        assert_eq!(got, items);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |_i, &x| x).is_empty());
        assert_eq!(parallel_map(&[9u32], |_i, &x| x + 1), vec![10]);
    }

    #[test]
    fn derived_seeds_differ_per_index_and_base() {
        let a: Vec<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| derive_seed(43, i)).collect();
        let mut uniq = a.clone();
        uniq.extend(&b);
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 128, "seed collisions across bases/indices");
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_threads(&[1u32, 2, 3, 4], 2, |_i, &x| {
                assert!(x != 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn thread_count_env_override() {
        // Serialized via the env var name itself: tests in this module
        // run on one process; the var is restored afterwards.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(thread_count(), 3);
        std::env::set_var(THREADS_ENV, "0");
        assert!(thread_count() >= 1);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(thread_count() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(thread_count() >= 1);
    }
}
