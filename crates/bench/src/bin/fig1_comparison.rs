//! Fig 1 — comparison of 1T-1C DRAM, 1T-1C FeRAM and 2T-nC FeRAM,
//! with every table entry derived by probing the corresponding model.

use felim::compare::technology_comparison;
use felim_bench::{header, record, ExperimentRecord};

fn main() {
    header(
        "Figure 1",
        "technology comparison (derived from the models)",
    );
    let rows = technology_comparison();

    println!(
        "{:<22} {:>12} {:>14} {:>10} {:>6} {:>11} {:>14}",
        "", "retention", "sensing", "inverting", "LiM", "op energy", "data lifetime"
    );
    for r in &rows {
        let lifetime = if r.retention_s < 1.0 {
            format!("{:.0} ms", r.retention_s * 1e3)
        } else {
            format!("{:.0} yr", r.retention_s / (365.25 * 86400.0))
        };
        println!(
            "{:<22} {:>12} {:>14} {:>10} {:>6} {:>10.2}x {:>14}",
            r.name,
            if r.non_volatile {
                "non-volatile"
            } else {
                "volatile"
            },
            if r.destructive_read {
                "destructive"
            } else {
                "quasi-nondest."
            },
            if r.inverting_sense { "yes" } else { "no" },
            if r.logic_in_memory { "yes" } else { "no" },
            r.relative_op_energy,
            lifetime,
        );
    }
    println!();
    println!(
        "density: 2T-nC stores {} bits per transistor pair vs 1 for 1T-1C",
        rows[2].bits_per_cell
    );

    record(&ExperimentRecord {
        id: "fig1",
        artifact: "Figure 1",
        paper_claim:
            "2T-nC: non-volatile, quasi-nondestructive, enhanced density, low bulk-bitwise energy",
        measured: &rows,
    });

    assert!(rows[2].non_volatile && !rows[2].destructive_read);
    assert!(rows[2].relative_op_energy < rows[0].relative_op_energy);
    println!("\nshape check PASSED");
}
