//! Fig 4(f) — endurance of the MFM capacitor under ±3 V bipolar cycling:
//! at least 10⁶ cycles with healthy remanent polarization.

use felim::ferro::{EnduranceRun, MfmParams};
use felim_bench::{header, record, ExperimentRecord};

fn main() {
    header("Figure 4(f)", "bipolar-cycling endurance (±3 V pulses)");
    let run = EnduranceRun::new(&MfmParams::fabricated());
    let results = run.run(&EnduranceRun::log_checkpoints(8));

    println!(" cycles | Pr+ (µC/cm²) | Pr- (µC/cm²) | mean |Pr|");
    for r in &results {
        println!(
            " 10^{:.0}   |   {:6.2}     |  {:7.2}    |  {:6.2}",
            r.cycles.log10(),
            r.pr_pos_uc_cm2,
            r.pr_neg_uc_cm2,
            r.pr_mean()
        );
    }
    let limit = run.endurance_limit(&results).expect("device functional");
    println!(
        "\nendurance limit (mean |Pr| >= {} µC/cm²): >= 10^{:.0} cycles",
        run.sense_floor_uc_cm2,
        limit.log10()
    );
    println!("(paper: withstands at least 10^6 cycles)");

    record(&ExperimentRecord {
        id: "fig4f",
        artifact: "Figure 4(f)",
        paper_claim: "endurance of at least 1e6 bipolar cycles",
        measured: &results,
    });

    assert!(limit >= 1e6);
    // Wake-up visible in the early decades.
    let fresh = results[0].pr_mean();
    let woken = results[3].pr_mean();
    assert!(woken >= fresh, "wake-up must not lose Pr early");
    println!("\nshape check PASSED");
}
