//! Fig 3(d) — transistor-level SPICE transient of the bitwise NOT:
//! write '0'/'1' through T_W, then QNRO-read through T_R; the sensed
//! current inverts while the stored state stays fairly intact.

use felim::cell::netlists::{NetlistConfig, SN};
use felim::cell::transients::{simulate, CellOp};
use felim::cell::Bit;
use felim_bench::{header, record, ExperimentRecord};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct NotResult {
    input: String,
    rsl_current_a: f64,
    v_int_v: f64,
    sensed: String,
    polarization_after: f64,
}

fn main() {
    header(
        "Figure 3(d)",
        "SPICE transient of the 2T-nC NOT operation (write + QNRO read)",
    );
    let cfg = NetlistConfig::standard();

    let mut results = Vec::new();
    let mut currents = Vec::new();
    for bit in [Bit::Zero, Bit::One] {
        let out = simulate(&cfg, &CellOp::Not { bit }).expect("transient must converge");
        let i = out.sensed_current_a;
        let v_int = out.trace.voltage_at(SN, out.schedule.t_sense_s).unwrap();
        let p = out.final_polarizations[0];
        currents.push(i);
        results.push((bit, i, v_int, p, out));
    }
    let reference = (currents[0] * currents[1]).sqrt();
    println!("sense reference: {reference:.3e} A\n");

    let mut records = Vec::new();
    for (bit, i, v_int, p, out) in &results {
        let sensed = Bit::from_bool(*i > reference);
        println!("write '{bit}' -> read:");
        println!("  V_int at sense   : {v_int:.4} V");
        println!("  RSL current      : {i:.3e} A");
        println!(
            "  SA output        : '{sensed}'   (inverted: {})",
            sensed == !*bit
        );
        println!("  P after readout  : {p:+.4} (state fairly intact)");
        // A few waveform samples around the read window.
        let t0 = results[0].4.schedule.t_sense_s - 150e-9;
        print!("  V(sn) samples    :");
        for k in 0..5 {
            let t = t0 + k as f64 * 75e-9;
            print!(" {:.3}", out.trace.voltage_at(SN, t).unwrap());
        }
        println!(" V");
        println!();
        assert_eq!(sensed, !*bit, "Fig 3(d): output must invert");
        records.push(NotResult {
            input: bit.to_string(),
            rsl_current_a: *i,
            v_int_v: *v_int,
            sensed: sensed.to_string(),
            polarization_after: *p,
        });
    }

    record(&ExperimentRecord {
        id: "fig3d",
        artifact: "Figure 3(d)",
        paper_claim:
            "sensing produces logical inversion; initial state remains fairly intact after readout",
        measured: &records,
    });
    println!("shape check PASSED");
}
