//! Fig 4(g,h) — switching dynamics vs pulse width and amplitude for
//! positive and negative switching: the MFM switches with pulse widths
//! under 300 ns at ±3 V, and the required width explodes near V_c.

use felim::ferro::{MfmParams, PulseSweep};
use felim_bench::{header, record, ExperimentRecord};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SwitchingMap {
    widths_ns: Vec<f64>,
    amplitudes_v: Vec<f64>,
    /// switched fraction, indexed `(amplitude, width)`, positive branch.
    positive: Vec<Vec<f64>>,
    /// switched fraction, indexed `(amplitude, width)`, negative branch.
    negative: Vec<Vec<f64>>,
    t50_at_3v_ns: f64,
}

fn main() {
    header("Figure 4(g,h)", "pulse switching dynamics, ±(1.5–3) V");
    let sweep = PulseSweep::new(&MfmParams::fabricated());

    let widths_ns = [10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0];
    let amplitudes = [1.5, 2.0, 2.5, 3.0];

    let mut positive = Vec::new();
    let mut negative = Vec::new();
    for branch in ["(g) positive switching", "(h) negative switching"] {
        println!("{branch}");
        print!("  |V| \\ width(ns)");
        for w in widths_ns {
            print!(" {w:>7.0}");
        }
        println!();
        let sign = if branch.contains("positive") {
            1.0
        } else {
            -1.0
        };
        for &a in &amplitudes {
            print!("  {:>13.1} V", a * sign);
            let mut row = Vec::new();
            for &w in &widths_ns {
                let frac = sweep.single(sign * a, w * 1e-9).switched_fraction;
                print!(" {frac:>7.3}");
                row.push(frac);
            }
            println!();
            if sign > 0.0 {
                positive.push(row);
            } else {
                negative.push(row);
            }
        }
        println!();
    }

    let t50 = sweep.time_to_switch(3.0, 0.5).expect("switches at 3 V") * 1e9;
    println!("50% switching time at +3 V: {t50:.1} ns  (paper: < 300 ns)");

    let map = SwitchingMap {
        widths_ns: widths_ns.to_vec(),
        amplitudes_v: amplitudes.to_vec(),
        positive,
        negative,
        t50_at_3v_ns: t50,
    };
    record(&ExperimentRecord {
        id: "fig4gh",
        artifact: "Figure 4(g,h)",
        paper_claim: "switching with pulse widths under 300 ns at ±3 V; symmetric branches",
        measured: &map,
    });

    assert!(map.t50_at_3v_ns < 300.0);
    // Symmetry between the branches.
    for (p, n) in map
        .positive
        .iter()
        .flatten()
        .zip(map.negative.iter().flatten())
    {
        assert!((p - n).abs() < 0.05, "branches must be symmetric");
    }
    // Monotone in both width and amplitude.
    for row in &map.positive {
        for w in row.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }
    println!("\nshape check PASSED");
}
