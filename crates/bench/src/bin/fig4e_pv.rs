//! Fig 4(e) — P–V loops of the fabricated MFM capacitor from 300 K to
//! 390 K: Pr ≈ 22.3 µC/cm² nearly constant, coercive voltage decreasing.

use felim::ferro::{MfmParams, PvLoop};
use felim_bench::{header, record, ExperimentRecord};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct PvRow {
    temperature_k: f64,
    pr_uc_cm2: f64,
    vc_v: f64,
}

fn main() {
    header("Figure 4(e)", "P–V loops, 300–390 K, ±3 V sweep");
    let params = MfmParams::fabricated();

    let mut rows = Vec::new();
    println!(" T (K) | Pr (µC/cm²) | Vc (V) | loop points");
    for t in [300.0, 330.0, 360.0, 390.0] {
        let l = PvLoop::trace_default(&params, t, 3.0);
        println!(
            " {t:5.0} |   {:6.2}    | {:6.3} | {}",
            l.remanent_polarization(),
            l.coercive_voltage(),
            l.points().count()
        );
        rows.push(PvRow {
            temperature_k: t,
            pr_uc_cm2: l.remanent_polarization(),
            vc_v: l.coercive_voltage(),
        });
    }

    // Print a compact 300 K loop for plotting.
    let l300 = PvLoop::trace_default(&params, 300.0, 3.0);
    println!("\n300 K ascending branch (V, P) every 12th point:");
    for p in l300.ascending.iter().step_by(12) {
        println!(
            "  {:+.3} V  {:+7.2} µC/cm²",
            p.voltage_v, p.polarization_uc_cm2
        );
    }

    record(&ExperimentRecord {
        id: "fig4e",
        artifact: "Figure 4(e)",
        paper_claim: "Pr = 22.3 uC/cm2 nearly constant 300-390 K; Vc decreases with temperature",
        measured: &rows,
    });

    assert!((rows[0].pr_uc_cm2 - 22.3).abs() < 1.5, "Pr at 300 K");
    let pr_drift = (rows.last().unwrap().pr_uc_cm2 - rows[0].pr_uc_cm2).abs();
    assert!(
        pr_drift / rows[0].pr_uc_cm2 < 0.06,
        "Pr must stay nearly flat"
    );
    for w in rows.windows(2) {
        assert!(w[1].vc_v < w[0].vc_v, "Vc must fall with temperature");
    }
    println!("\nshape check PASSED");
}
