//! Fig 7 — steady-state thermal profile of the (n+2)-layer vertical
//! 2T-nC FeRAM stack on a 28 W compute die during the bitmap index query:
//! peak ≈ 351.88 K, ferroelectric properties preserved.

use felim::evaluation::run_fig7;
use felim::workloads::all_workloads;
use felim::workloads::bitmap_index::BitmapIndex;
use felim_bench::{header, record, ExperimentRecord};

fn main() {
    header(
        "Figure 7",
        "3-D SoC thermal: 5-layer 2 GB FeRAM stack on a 28 W compute die",
    );

    let r = run_fig7(&BitmapIndex, 32);
    println!("workload            : Bitmap Index Query");
    println!("memory self-power   : {:.3} W", r.memory_power_w);
    println!(
        "peak temperature    : {:.2} K   (paper: 351.88 K)",
        r.peak_k
    );
    println!("memory-layer peak   : {:.2} K", r.memory_peak_k);
    println!("Pr retained at peak : {:.1} %", r.ps_scale_at_peak * 100.0);
    println!(
        "FE stability        : {}",
        if r.ferroelectric_stable {
            "CONFIRMED"
        } else {
            "VIOLATED"
        }
    );

    println!("\nper-layer mean temperature (bottom → top):");
    for (i, t) in r.layer_means_k.iter().enumerate() {
        println!("  layer {i:>2}: {t:7.2} K");
    }

    // "The thermal profile is consistent across all evaluated workloads."
    println!("\npeak across all eight workloads:");
    let mut peaks = Vec::new();
    for w in all_workloads() {
        let rw = run_fig7(w.as_ref(), 16);
        println!("  {:<24} {:7.2} K", w.name(), rw.peak_k);
        peaks.push(rw.peak_k);
    }
    let spread = peaks.iter().cloned().fold(f64::MIN, f64::max)
        - peaks.iter().cloned().fold(f64::MAX, f64::min);
    println!("  spread: {spread:.2} K (profile consistent across workloads)");

    record(&ExperimentRecord {
        id: "fig7",
        artifact: "Figure 7",
        paper_claim: "peak 351.88 K on a 28 W compute die; ferroelectric properties preserved",
        measured: &r,
    });

    assert!((348.0..356.0).contains(&r.peak_k), "peak {}", r.peak_k);
    assert!(r.ferroelectric_stable);
    assert!(spread < 3.0);
    println!("\nshape check PASSED");
}
