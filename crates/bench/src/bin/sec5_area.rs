//! Section V — planar vs vertical 3-D integration: area per cell,
//! footprint reduction (4.18× at n = 3), storage and compute density.

use felim::AreaModel;
use felim_bench::{header, record, ExperimentRecord};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct AreaResult {
    planar_2t1c_f2: f64,
    planar_2t3c_f2: f64,
    planar_2t3c_nm2: f64,
    vertical_nm2: f64,
    footprint_reduction_n3: f64,
    vertical_density_mbit_mm2: f64,
    planar_density_mbit_mm2: f64,
    die_area_2gb_5layer_mm2: f64,
}

fn main() {
    header(
        "Section V",
        "planar vs vertical 3-D integration (28 nm node)",
    );
    let m = AreaModel::paper_28nm();

    println!(
        "planar 2T-1C cell : {:>8.0} F²  = {:>8.0} nm²",
        m.planar_cell_f2(1),
        m.planar_cell_nm2(1)
    );
    println!(
        "planar 2T-3C cell : {:>8.0} F²  = {:>8.0} nm²",
        m.planar_cell_f2(3),
        m.planar_cell_nm2(3)
    );
    println!(
        "vertical 2T-3C    : 130×130 nm² = {:>8.0} nm²",
        m.vertical_cell_nm2()
    );
    println!();
    println!(
        "footprint reduction at n = 3: {:.2}x  (paper: 4.18x)",
        m.footprint_reduction(3)
    );
    println!();
    println!("storage density (50% periphery overhead):");
    println!(
        "  planar  : {:>8.1} Mbit/mm²",
        m.planar_storage_density_bits_mm2(3) / 1e6
    );
    println!(
        "  vertical: {:>8.1} Mbit/mm²",
        m.vertical_storage_density_bits_mm2(3) / 1e6
    );
    println!(
        "LiM compute density: {:>8.1} Mcells/mm² (one MINORITY gate per string)",
        m.vertical_compute_density_cells_mm2() / 1e6
    );
    println!();
    println!("scaling with n (vertical footprint is n-independent):");
    println!("  n | planar F² | reduction");
    for n in [1usize, 2, 3, 4, 6, 8] {
        println!(
            "  {n} | {:>8.0}  | {:>6.2}x",
            m.planar_cell_f2(n),
            m.footprint_reduction(n)
        );
    }

    let die_area = m.vertical_die_area_mm2(2 << 30, 3, 5);
    println!("\n2 GB / 5-layer vertical memory die (Fig 7 stack): {die_area:.1} mm²");

    // Section V's bandwidth argument: row-SIMD × subarray parallelism.
    use felim::arch::bandwidth::{compute_bandwidth, op_cycles};
    use felim::arch::{LatencyModel, MemoryGeometry};
    let g = MemoryGeometry::paper_8gb();
    let l = LatencyModel::paper_default();
    let f1 = compute_bandwidth(&g, &l, op_cycles::FERAM_LOGIC, 1);
    let fall = compute_bandwidth(&g, &l, op_cycles::FERAM_LOGIC, g.subarrays());
    let dall = compute_bandwidth(&g, &l, op_cycles::DRAM_LOGIC, g.subarrays());
    println!("\ncompute bandwidth (two-operand row logic):");
    println!(
        "  FeRAM, 1 subarray    : {:>8.1} Gbit-op/s",
        f1.bitops_per_s / 1e9
    );
    println!(
        "  FeRAM, all subarrays : {:>8.1} Tbit-op/s",
        fall.bitops_per_s / 1e12
    );
    println!(
        "  DRAM,  all subarrays : {:>8.1} Tbit-op/s",
        dall.bitops_per_s / 1e12
    );

    let result = AreaResult {
        planar_2t1c_f2: m.planar_cell_f2(1),
        planar_2t3c_f2: m.planar_cell_f2(3),
        planar_2t3c_nm2: m.planar_cell_nm2(3),
        vertical_nm2: m.vertical_cell_nm2(),
        footprint_reduction_n3: m.footprint_reduction(3),
        vertical_density_mbit_mm2: m.vertical_storage_density_bits_mm2(3) / 1e6,
        planar_density_mbit_mm2: m.planar_storage_density_bits_mm2(3) / 1e6,
        die_area_2gb_5layer_mm2: die_area,
    };
    record(&ExperimentRecord {
        id: "sec5",
        artifact: "Section V area analysis",
        paper_claim: "30F2 per 2T-1C, ~90F2 per 2T-3C, 130x130nm2 vertical, 4.18x reduction",
        measured: &result,
    });

    assert!((result.footprint_reduction_n3 - 4.18).abs() < 0.02);
    println!("\nshape check PASSED");
}
