//! Fig 4(i,j) — sensed RBL current for stored data '000'…'111' in the
//! 2T-nC cell and the MINORITY output with a reference placed between the
//! '001' and '011' current levels.

use felim::cell::cell2tnc::{pattern_bits, Cell2TnCParams};
use felim::cell::ops::tba_truth_table;
use felim::cell::Bit;
use felim_bench::{header, record, ExperimentRecord};

fn main() {
    header(
        "Figure 4(i,j)",
        "RBL current vs stored data + MINORITY output (device-backed cell)",
    );
    let table = tba_truth_table(&Cell2TnCParams::default());

    // (i) current vs data — inverted, ~linear V_int staircase.
    println!("(i) sensed levels:");
    println!("  A B C | ones | V_int (V) | I_RSL (A)");
    for t in &table {
        let b = pattern_bits(t.pattern);
        println!(
            "  {} {} {} |  {}   |  {:.4}   | {:.3e}",
            b[0],
            b[1],
            b[2],
            t.pattern.count_ones(),
            t.v_int,
            t.rsl_current_a
        );
    }

    // Level spacing (the paper's "perfect linearity" in the level
    // staircase): adjacent popcount gaps of V_int.
    let mut levels = [0.0f64; 4];
    for t in &table {
        levels[t.pattern.count_ones() as usize] = t.v_int;
    }
    println!(
        "\n  V_int by popcount: {:.4} / {:.4} / {:.4} / {:.4} V",
        levels[0], levels[1], levels[2], levels[3]
    );
    let gaps: Vec<f64> = levels.windows(2).map(|w| w[0] - w[1]).collect();
    println!(
        "  adjacent gaps    : {:.1} / {:.1} / {:.1} mV",
        gaps[0] * 1e3,
        gaps[1] * 1e3,
        gaps[2] * 1e3
    );

    // (j) MINORITY decision with the reference between '001' and '011'.
    println!("\n(j) MINORITY output (reference between '001' and '011'):");
    println!("  pattern | output | correct");
    for t in &table {
        let expect = Bit::from_bool(t.pattern.count_ones() <= 1);
        println!(
            "   {:03b}    |   {}    |   {}",
            t.pattern,
            t.output,
            t.output == expect
        );
        assert_eq!(t.output, expect);
    }

    record(&ExperimentRecord {
        id: "fig4ij",
        artifact: "Figure 4(i,j)",
        paper_claim: "current levels opposite-trend and distinguishable; MINORITY computed with one reference",
        measured: &table,
    });

    let max_gap = gaps.iter().cloned().fold(f64::MIN, f64::max);
    let min_gap = gaps.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max_gap / min_gap < 2.5, "staircase must be near-linear");
    println!("\nshape check PASSED");
}
