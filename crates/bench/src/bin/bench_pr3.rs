//! PR 3 performance baseline: the same simulator-throughput sweep as
//! `bench_pr2`, re-measured after the parallel engine, the
//! zero-allocation solver hot path and the transient memoization cache.
//!
//! This binary requires the `telemetry` feature and is the documented
//! one-command producer of `results/BENCH_PR3.json`:
//!
//! ```text
//! FELIM_THREADS=1 cargo run --release -p felim-bench --features telemetry --bin bench_pr3
//! ```
//!
//! The committed baseline is captured with `FELIM_THREADS=1` so the
//! number on record is the single-thread win (the CI regression gate,
//! `bench_gate`, compares single-thread runs and is therefore
//! insensitive to the runner's core count). The kernel sweep is run
//! twice: an un-timed pass that pays every one-time cost (dataset
//! generation into the content-addressed replay cache, lazy telemetry
//! registration), then the recorded steady-state pass — the regime the
//! engine is in during Fig 6 evaluations and fault campaigns. The cold
//! pass is kept on record as `warmup_ms`. The schema is the
//! `BENCH_PR2.json` schema plus four fields: the worker count, the
//! warm-up wall time, the aggregate kernel throughput, and — when
//! `results/BENCH_PR2.json` is readable — the measured speedup over the
//! PR 2 snapshot.

use felim::arch::{DegradationPolicy, FaultSpec};
use felim::cell::{monte_carlo_margin, Cell2TnCParams};
use felim::ferro::VariationSpec;
use felim::spice::{Circuit, Element, TransientSpec, Waveform};
use felim::telemetry;
use felim::workloads::all_workloads;
use felim::workloads::driver::{run_fault_campaign, run_workload, Tech};
use felim_bench::{header, results_dir};
use serde::Serialize;
use std::time::Instant;

const SIM_ROWS: u64 = 64;
const WORKLOAD_BYTES: u64 = 1 << 30;
const SEED: u64 = 42;
const MC_SAMPLES: usize = 2000;

/// Simulator throughput for one kernel on one technology.
#[derive(Debug, Serialize)]
struct KernelBaseline {
    kernel: String,
    tech: &'static str,
    /// Commands actually simulated (scaled-down run).
    sim_commands: u64,
    /// Wall-clock time of the simulation, in milliseconds.
    wall_ms: f64,
    /// Simulated commands per wall-clock second.
    ops_per_s: f64,
    /// Extrapolated 1 GB cycle count (golden-tracked elsewhere).
    scaled_cycles: u64,
    /// Extrapolated 1 GB energy, mJ.
    energy_mj: f64,
}

/// MNA solver effort for a representative ferroelectric transient.
#[derive(Debug, Serialize)]
struct SolverBaseline {
    newton_iterations: u64,
    lu_factorizations: u64,
    accepted_steps: u64,
    rejected_steps: u64,
    wall_ms: f64,
    /// Accepted timesteps per wall-clock second.
    steps_per_s: f64,
}

/// Monte-Carlo sampling throughput.
#[derive(Debug, Serialize)]
struct MonteCarloBaseline {
    cell_samples: u64,
    ferro_samples: u64,
    wall_ms: f64,
    cell_samples_per_s: f64,
}

/// Fault-campaign totals under the hardened policy.
#[derive(Debug, Serialize)]
struct CampaignBaseline {
    kernels: u64,
    injected_faults: u64,
    corrected_faults: u64,
    failed_kernels: u64,
    wall_ms: f64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    schema: &'static str,
    sim_rows: u64,
    workload_bytes: u64,
    seed: u64,
    /// Worker count the sweep ran with (`FELIM_THREADS`-bounded).
    threads: usize,
    /// Wall-clock time of the un-timed warm-up sweep, in milliseconds —
    /// the one-time cost (dataset generation, registration) that the
    /// replay caches amortise away from the recorded pass.
    warmup_ms: f64,
    /// Total simulated commands across all kernels divided by their
    /// summed wall-clock time — the number the CI gate tracks.
    aggregate_ops_per_s: f64,
    /// `aggregate_ops_per_s` over the same aggregate recomputed from
    /// `results/BENCH_PR2.json`; `null` when that file is unreadable.
    speedup_vs_pr2: Option<f64>,
    kernels: Vec<KernelBaseline>,
    solver: SolverBaseline,
    montecarlo: MonteCarloBaseline,
    campaign: CampaignBaseline,
}

/// Difference of a counter between two snapshots.
fn delta(after: &telemetry::Report, before: &telemetry::Report, name: &str) -> u64 {
    after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0)
}

/// Runs the full 16-entry sweep once and returns its wall-clock time.
///
/// The first pass pays every one-time cost — dataset generation (now
/// served from the content-addressed replay cache on every later use),
/// lazy telemetry registration, allocator growth. The recorded pass
/// below measures the steady-state regime, which is what the engine runs
/// in during Fig 6 evaluations and fault campaigns; the cold pass is
/// still reported (`warmup_ms`) so the one-time cost stays visible.
fn warm_kernels() -> f64 {
    let start = Instant::now();
    for tech in [Tech::Dram, Tech::Feram] {
        for w in all_workloads() {
            run_workload(w.as_ref(), tech, SIM_ROWS, WORKLOAD_BYTES, SEED)
                .expect("baseline kernels must verify on a fault-free backend");
        }
    }
    start.elapsed().as_secs_f64()
}

fn bench_kernels() -> Vec<KernelBaseline> {
    let mut out = Vec::new();
    for tech in [Tech::Dram, Tech::Feram] {
        for w in all_workloads() {
            let start = Instant::now();
            let r = run_workload(w.as_ref(), tech, SIM_ROWS, WORKLOAD_BYTES, SEED)
                .expect("baseline kernels must verify on a fault-free backend");
            let wall = start.elapsed().as_secs_f64();
            let commands = r.sim_stats.total_commands();
            out.push(KernelBaseline {
                kernel: r.workload,
                tech: match tech {
                    Tech::Dram => "dram",
                    Tech::Feram => "feram",
                },
                sim_commands: commands,
                wall_ms: wall * 1e3,
                ops_per_s: commands as f64 / wall.max(1e-9),
                scaled_cycles: r.scaled.total_cycles(),
                energy_mj: r.energy_mj,
            });
        }
    }
    out
}

fn bench_solver() -> SolverBaseline {
    // The Fig 3(d)-style testbench: a ferroelectric capacitor driven by a
    // write pulse through a series resistor — the nonlinearity that costs
    // the solver the most Newton iterations per step.
    let params = felim::ferro::MfmParams::scaled_45nm();
    let mut c = Circuit::new();
    let a = c.node("a");
    let b = c.node("b");
    c.add_vsource(
        "V1",
        a,
        Circuit::GND,
        Waveform::single_pulse(params.write_voltage_v, 10e-9, 2e-6),
    );
    c.add("R1", Element::resistor(a, b, 1e3));
    c.add("CF", Element::fe_capacitor(b, Circuit::GND, &params));

    let before = telemetry::snapshot();
    let start = Instant::now();
    let _ = c
        .transient(&TransientSpec::new(3e-6, 2e-9))
        .expect("baseline transient must converge");
    let wall = start.elapsed().as_secs_f64();
    let after = telemetry::snapshot();
    let accepted = delta(&after, &before, "spice.accepted_steps");
    SolverBaseline {
        newton_iterations: delta(&after, &before, "spice.newton_iterations"),
        lu_factorizations: delta(&after, &before, "spice.lu_factorizations"),
        accepted_steps: accepted,
        rejected_steps: delta(&after, &before, "spice.rejected_steps"),
        wall_ms: wall * 1e3,
        steps_per_s: accepted as f64 / wall.max(1e-9),
    }
}

fn bench_montecarlo() -> MonteCarloBaseline {
    let before = telemetry::snapshot();
    let start = Instant::now();
    let report = monte_carlo_margin(
        &Cell2TnCParams::default(),
        VariationSpec::typical(),
        0.04,
        MC_SAMPLES,
        SEED,
    );
    let wall = start.elapsed().as_secs_f64();
    let after = telemetry::snapshot();
    assert!(report.tba_yield > 0.9, "baseline yield collapsed");
    MonteCarloBaseline {
        cell_samples: delta(&after, &before, "montecarlo.cell.samples"),
        ferro_samples: delta(&after, &before, "montecarlo.ferro.samples"),
        wall_ms: wall * 1e3,
        cell_samples_per_s: MC_SAMPLES as f64 / wall.max(1e-9),
    }
}

fn bench_campaign() -> CampaignBaseline {
    let before = telemetry::snapshot();
    let start = Instant::now();
    let outcomes = run_fault_campaign(
        16,
        SEED,
        &FaultSpec::from_failure_rate(2e-4, SEED),
        &DegradationPolicy::hardened(),
    );
    let wall = start.elapsed().as_secs_f64();
    let after = telemetry::snapshot();
    assert_eq!(outcomes.len(), 8, "campaign must cover all kernels");
    CampaignBaseline {
        kernels: delta(&after, &before, "campaign.kernels"),
        injected_faults: delta(&after, &before, "campaign.injected_faults"),
        corrected_faults: delta(&after, &before, "campaign.corrected_faults"),
        failed_kernels: delta(&after, &before, "campaign.failed_kernels"),
        wall_ms: wall * 1e3,
    }
}

/// Total commands / total wall-clock seconds over a kernel sweep.
fn aggregate_ops_per_s(kernels: &[KernelBaseline]) -> f64 {
    let commands: u64 = kernels.iter().map(|k| k.sim_commands).sum();
    let wall_s: f64 = kernels.iter().map(|k| k.wall_ms * 1e-3).sum();
    commands as f64 / wall_s.max(1e-9)
}

/// The same aggregate recomputed from the committed PR 2 snapshot, if it
/// is readable (it is absent under `FELIM_RESULTS_DIR` overrides).
fn pr2_aggregate_ops_per_s() -> Option<f64> {
    let text = std::fs::read_to_string(results_dir().join("BENCH_PR2.json")).ok()?;
    let json: serde_json::Value = serde_json::from_str(&text).ok()?;
    let kernels = json.get("kernels")?.as_array()?;
    let mut commands = 0.0;
    let mut wall_s = 0.0;
    for k in kernels {
        commands += k.get("sim_commands")?.as_f64()?;
        wall_s += k.get("wall_ms")?.as_f64()? * 1e-3;
    }
    Some(commands / wall_s.max(1e-9))
}

fn main() {
    assert!(
        telemetry::enabled(),
        "bench_pr3 must be built with --features telemetry"
    );
    header(
        "BENCH_PR3",
        "simulator throughput after the PR 3 hot-path rework",
    );
    telemetry::reset();

    let warmup_ms = warm_kernels() * 1e3;
    println!("  warm-up sweep (cold caches): {warmup_ms:.1} ms\n");
    let kernels = bench_kernels();
    println!(
        "  {:<24} {:>6} {:>12} {:>10} {:>14}",
        "kernel", "tech", "sim cmds", "wall ms", "ops/s"
    );
    for k in &kernels {
        println!(
            "  {:<24} {:>6} {:>12} {:>10.2} {:>14.0}",
            k.kernel, k.tech, k.sim_commands, k.wall_ms, k.ops_per_s
        );
    }
    let aggregate = aggregate_ops_per_s(&kernels);
    let speedup = pr2_aggregate_ops_per_s().map(|pr2| aggregate / pr2);
    print!("  aggregate: {aggregate:.0} ops/s");
    match speedup {
        Some(s) => println!(" ({s:.2}x over BENCH_PR2.json)"),
        None => println!(" (no BENCH_PR2.json to compare against)"),
    }

    let solver = bench_solver();
    println!(
        "\n  solver: {} Newton iters, {} LU, {} accepted / {} rejected steps, {:.0} steps/s",
        solver.newton_iterations,
        solver.lu_factorizations,
        solver.accepted_steps,
        solver.rejected_steps,
        solver.steps_per_s
    );

    let montecarlo = bench_montecarlo();
    println!(
        "  monte-carlo: {} cell samples ({} device draws), {:.0} samples/s",
        montecarlo.cell_samples, montecarlo.ferro_samples, montecarlo.cell_samples_per_s
    );

    let campaign = bench_campaign();
    println!(
        "  fault campaign: {} kernels, {} injected, {} corrected, {} failed, {:.1} ms",
        campaign.kernels,
        campaign.injected_faults,
        campaign.corrected_faults,
        campaign.failed_kernels,
        campaign.wall_ms
    );

    let baseline = Baseline {
        schema: "felim-bench-pr3/v1",
        sim_rows: SIM_ROWS,
        workload_bytes: WORKLOAD_BYTES,
        seed: SEED,
        threads: felim::exec::thread_count(),
        warmup_ms,
        aggregate_ops_per_s: aggregate,
        speedup_vs_pr2: speedup,
        kernels,
        solver,
        montecarlo,
        campaign,
    };

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_PR3.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serialise baseline");
    std::fs::write(&path, json + "\n").expect("write BENCH_PR3.json");
    println!("\nwrote {}", path.display());

    let tel_path = dir.join("BENCH_PR3.telemetry.json");
    telemetry::snapshot()
        .write_json(&tel_path)
        .expect("write telemetry snapshot");
    println!("wrote {}", tel_path.display());
}
