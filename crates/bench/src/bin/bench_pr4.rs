//! PR 4 performance baseline: uncached Monte-Carlo transient throughput
//! with the legacy solver knobs vs the adaptive/modified-Newton fast
//! path.
//!
//! This binary requires the `telemetry` feature and is the documented
//! one-command producer of `results/BENCH_PR4.json`:
//!
//! ```text
//! FELIM_THREADS=1 cargo run --release -p felim-bench --features telemetry --bin bench_pr4
//! ```
//!
//! The workload is [`felim::cell::monte_carlo_transients`]: full
//! transistor-level TBA read transients, each over a *freshly varied*
//! device, so the PR 3 memo cache never serves a hit — every cell-op is
//! paid at solver price. Both modes run the identical sample set; the
//! committed baseline is captured with `FELIM_THREADS=1` so the number
//! on record is the single-thread win. Each mode gets one un-timed
//! warm-up pass (lazy telemetry registration, allocator growth), then
//! the best wall-clock of three recorded passes — shared runners are
//! noisy and the best-of is the least-noise estimator of the machine's
//! actual capability. Solver-effort counters are captured around the
//! first recorded pass (they are deterministic, so any pass reports the
//! same deltas).

use felim::cell::netlists::{NetlistConfig, SolverOptions};
use felim::cell::{monte_carlo_transients, McTransientReport};
use felim::ferro::VariationSpec;
use felim::telemetry;
use felim_bench::{header, results_dir};
use serde::Serialize;
use std::time::Instant;

const SAMPLES: usize = 48;
const SEED: u64 = 42;
const REPS: usize = 3;

/// One solver mode's throughput and effort over the common sample set.
#[derive(Debug, Serialize)]
struct ModeBaseline {
    mode: &'static str,
    /// Cell transients per recorded pass.
    samples: u64,
    /// Best-of-`REPS` wall-clock time of one pass, in milliseconds.
    wall_ms: f64,
    /// Cell transients per wall-clock second (from the best pass).
    cells_per_s: f64,
    /// Mean recorded time points per transient.
    mean_time_points: f64,
    /// Population-mean sensed RSL current, in A (accuracy cross-check).
    mean_sensed_current_a: f64,
    newton_iterations: u64,
    lu_factorizations: u64,
    lu_reuse_hits: u64,
    lte_rejected_steps: u64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    schema: &'static str,
    samples: u64,
    seed: u64,
    /// Worker count the campaign ran with (`FELIM_THREADS`-bounded).
    threads: usize,
    /// Optimized-mode cells/s over legacy-mode cells/s — the PR 4 claim.
    speedup_optimized_vs_legacy: f64,
    modes: Vec<ModeBaseline>,
}

/// Difference of a counter between two snapshots.
fn delta(after: &telemetry::Report, before: &telemetry::Report, name: &str) -> u64 {
    after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0)
}

fn run_mode(
    cfg: &NetlistConfig,
    mode: &'static str,
    solver: &SolverOptions,
) -> (ModeBaseline, McTransientReport) {
    // Un-timed warm-up pass.
    monte_carlo_transients(cfg, VariationSpec::typical(), SAMPLES, SEED, solver)
        .expect("baseline campaign must converge");

    let mut best_wall = f64::INFINITY;
    let mut report = None;
    let mut effort = None;
    for _ in 0..REPS {
        let before = telemetry::snapshot();
        let start = Instant::now();
        let r = monte_carlo_transients(cfg, VariationSpec::typical(), SAMPLES, SEED, solver)
            .expect("baseline campaign must converge");
        let wall = start.elapsed().as_secs_f64();
        let after = telemetry::snapshot();
        best_wall = best_wall.min(wall);
        effort.get_or_insert_with(|| {
            (
                delta(&after, &before, "spice.newton_iterations"),
                delta(&after, &before, "spice.lu_factorizations"),
                delta(&after, &before, "spice.lu_reuse_hits"),
                delta(&after, &before, "spice.lte_rejected_steps"),
            )
        });
        report = Some(r);
    }
    let report = report.expect("at least one recorded pass");
    let (newton, lu, reuse, lte) = effort.expect("at least one recorded pass");
    (
        ModeBaseline {
            mode,
            samples: SAMPLES as u64,
            wall_ms: best_wall * 1e3,
            cells_per_s: SAMPLES as f64 / best_wall.max(1e-9),
            mean_time_points: report.mean_time_points,
            mean_sensed_current_a: report.mean_sensed_current_a,
            newton_iterations: newton,
            lu_factorizations: lu,
            lu_reuse_hits: reuse,
            lte_rejected_steps: lte,
        },
        report,
    )
}

fn main() {
    assert!(
        telemetry::enabled(),
        "bench_pr4 must be built with --features telemetry"
    );
    header(
        "BENCH_PR4",
        "uncached cell-op transient throughput, legacy vs adaptive solver",
    );
    telemetry::reset();

    let cfg = NetlistConfig::standard();
    let (legacy, legacy_report) = run_mode(&cfg, "legacy", &SolverOptions::default());
    let (optimized, optimized_report) =
        run_mode(&cfg, "optimized", &SolverOptions::optimized());

    // The fast path must stay on the same physics: population-mean
    // sensed current within 5 % of the dense fixed-step reference.
    let drift = (optimized_report.mean_sensed_current_a - legacy_report.mean_sensed_current_a)
        .abs()
        / legacy_report.mean_sensed_current_a.abs().max(1e-30);
    assert!(drift < 0.05, "fast path drifted {drift:.4} from legacy");

    let speedup = optimized.cells_per_s / legacy.cells_per_s.max(1e-9);
    println!(
        "  {:<10} {:>9} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "mode", "cells", "wall ms", "cells/s", "points", "newton", "LU"
    );
    for m in [&legacy, &optimized] {
        println!(
            "  {:<10} {:>9} {:>10.2} {:>12.1} {:>10.1} {:>12} {:>10}",
            m.mode,
            m.samples,
            m.wall_ms,
            m.cells_per_s,
            m.mean_time_points,
            m.newton_iterations,
            m.lu_factorizations
        );
    }
    println!(
        "  speedup: {speedup:.2}x (LU reuse {} hits, {} LTE rejections, drift {drift:.2e})",
        optimized.lu_reuse_hits, optimized.lte_rejected_steps
    );

    let baseline = Baseline {
        schema: "felim-bench-pr4/v1",
        samples: SAMPLES as u64,
        seed: SEED,
        threads: felim::exec::thread_count(),
        speedup_optimized_vs_legacy: speedup,
        modes: vec![legacy, optimized],
    };

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_PR4.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serialise baseline");
    std::fs::write(&path, json + "\n").expect("write BENCH_PR4.json");
    println!("\nwrote {}", path.display());
}
