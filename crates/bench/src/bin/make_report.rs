//! Collates `results/experiments.jsonl` (written by the figure binaries)
//! into a human-readable `results/REPORT.md` summary, keeping only the
//! latest record per experiment id.

use felim_bench::results_dir;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = results_dir();
    let jsonl = dir.join("experiments.jsonl");
    let text = fs::read_to_string(&jsonl).map_err(|e| {
        format!(
            "cannot read {} ({e}) — run the figure binaries first",
            jsonl.display()
        )
    })?;

    // Latest record per id wins.
    let mut latest: BTreeMap<String, Value> = BTreeMap::new();
    let mut parsed = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Value>(line) {
            Ok(v) => {
                if let Some(id) = v.get("id").and_then(Value::as_str) {
                    latest.insert(id.to_owned(), v);
                    parsed += 1;
                }
            }
            Err(e) => eprintln!("skipping malformed record: {e}"),
        }
    }

    let mut md = String::new();
    md.push_str("# felim experiment report\n\n");
    md.push_str(&format!(
        "{} records parsed, {} distinct experiments.\n\n",
        parsed,
        latest.len()
    ));
    md.push_str("| id | artifact | paper claim |\n|---|---|---|\n");
    for (id, v) in &latest {
        md.push_str(&format!(
            "| `{id}` | {} | {} |\n",
            v.get("artifact").and_then(Value::as_str).unwrap_or("?"),
            v.get("paper_claim").and_then(Value::as_str).unwrap_or("?"),
        ));
    }
    md.push_str("\n## Measured data\n");
    for (id, v) in &latest {
        md.push_str(&format!("\n### `{id}`\n\n```json\n"));
        md.push_str(&serde_json::to_string_pretty(
            v.get("measured").unwrap_or(&Value::Null),
        )?);
        md.push_str("\n```\n");
    }

    let out = dir.join("REPORT.md");
    fs::write(&out, &md)?;
    println!(
        "wrote {} ({} experiments, {} bytes)",
        out.display(),
        latest.len(),
        md.len()
    );
    Ok(())
}
