//! Fig 2 — charge-sensing comparison: destructive non-inverting read in
//! 1T-1C FeRAM vs quasi-nondestructive inverting read in 2T-nC FeRAM.

use felim::cell::feram1t1c::Feram1t1c;
use felim::cell::Bit;
use felim::ferro::{MfmCapacitor, MfmParams, Polarity};
use felim_bench::{header, record, ExperimentRecord};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SensingResult {
    feram1t1c_q_read0_pc: f64,
    feram1t1c_q_read1_pc: f64,
    feram1t1c_state0_destroyed: bool,
    qnro_dq0_pc: f64,
    qnro_dq1_pc: f64,
    qnro_state0_after_10_reads: f64,
}

fn main() {
    header("Figure 2", "destructive 1T-1C read vs QNRO 2T-nC read");
    let params = MfmParams::fabricated();

    // (a) 1T-1C FeRAM: full plate pulse, destructive, non-inverting.
    let mut c = Feram1t1c::new(&params);
    c.write(Bit::Zero);
    let r0 = c.read();
    let destroyed = r0.destroyed;
    let mut c = Feram1t1c::new(&params);
    c.write(Bit::One);
    let r1 = c.read();
    println!("1T-1C FeRAM (full plate pulse):");
    println!(
        "  read '0': Q = {:8.2} pC  (polarization REVERSED — destructive)",
        r0.charge_c * 1e12
    );
    println!(
        "  read '1': Q = {:8.2} pC  (linear charge only)",
        r1.charge_c * 1e12
    );

    // (b) 2T-nC QNRO: small read pulse, inverting, quasi-nondestructive.
    let mut q0 = MfmCapacitor::new(&params);
    q0.write(Polarity::Down);
    let dq0 = q0.read_pulse_charge(params.read_voltage(), 100e-9);
    let mut q1 = MfmCapacitor::new(&params);
    q1.write(Polarity::Up);
    let dq1 = q1.read_pulse_charge(params.read_voltage(), 100e-9);
    for _ in 0..9 {
        q0.read_pulse_charge(params.read_voltage(), 100e-9);
    }
    println!("\n2T-nC FeRAM (QNRO, V_R = {} V):", params.read_voltage());
    println!(
        "  read '0': ΔQ₀ = {:7.2} pC  → HIGH T_R current → SA outputs '1'",
        dq0 * 1e12
    );
    println!(
        "  read '1': ΔQ₁ = {:7.2} pC  → low T_R current  → SA outputs '0'",
        dq1 * 1e12
    );
    println!("  (the inversion IS the NOT operation — no DCC needed)");
    println!(
        "  stored '0' after 10 reads: p̄ = {:.5} (quasi-nondestructive)",
        q0.polarization()
    );

    let result = SensingResult {
        feram1t1c_q_read0_pc: r0.charge_c * 1e12,
        feram1t1c_q_read1_pc: r1.charge_c * 1e12,
        feram1t1c_state0_destroyed: destroyed,
        qnro_dq0_pc: dq0 * 1e12,
        qnro_dq1_pc: dq1 * 1e12,
        qnro_state0_after_10_reads: q0.polarization(),
    };
    record(&ExperimentRecord {
        id: "fig2",
        artifact: "Figure 2",
        paper_claim:
            "1T-1C read destroys stored 0; QNRO inverts with dQ0 >> dQ1 and preserves state",
        measured: &result,
    });

    assert!(result.feram1t1c_state0_destroyed);
    assert!(result.qnro_dq0_pc > 2.0 * result.qnro_dq1_pc);
    assert!(result.qnro_state0_after_10_reads < -0.9);
    println!("\nshape check PASSED");
}
