//! Derives cell-level operation energies from the transistor-level
//! netlists by integrating the energy delivered by every drive source
//! during a QNRO read and a full write, then scales to a row.
//!
//! This is the bottom-up counterpart of the Section VI energy constants:
//! the per-row figures the paper reports (16.6 / 22.6 nJ ACTIVATE)
//! include the array parasitics (word/bit-line wiring, drivers, sense
//! amps) that dominate real activations; the cell-intrinsic component
//! derived here is necessarily smaller, and the QNRO read vs full-write
//! asymmetry — the physical mechanism behind the paper's energy claim —
//! shows up directly.

use felim::cell::netlists::NetlistConfig;
use felim::cell::transients::{simulate, CellOp, TransientOutcome};
use felim::cell::Bit;
use felim::ferro::Polarity;
use felim::spice::Waveform;
use felim_bench::{header, record, ExperimentRecord};
use serde::Serialize;

/// Cells per 8 KB row (one bit per cell-capacitor triple and TBA group).
const CELLS_PER_ROW: f64 = 65536.0;

#[derive(Debug, Serialize)]
struct DerivedEnergy {
    read0_cell_fj: f64,
    read1_cell_fj: f64,
    write_cell_fj: f64,
    read_row_nj: f64,
    write_row_nj: f64,
    write_to_read_ratio: f64,
}

fn total_drive_energy(outcome: &TransientOutcome, waves: &[(&str, Waveform)]) -> f64 {
    waves
        .iter()
        .map(|(name, wave)| outcome.trace.source_energy(name, wave).unwrap_or(0.0))
        .sum()
}

fn main() {
    header(
        "Cell energy derivation",
        "bottom-up op energies from the transistor netlists",
    );
    let cfg = NetlistConfig::fast();
    let v_r = cfg.mfm.read_voltage_v;
    let vw = cfg.mfm.write_voltage_v;
    let t0 = 50e-9;

    // QNRO read of stored '0' and stored '1'.
    let mut read_energy = [0.0f64; 2];
    for (k, pol) in [Polarity::Down, Polarity::Up].into_iter().enumerate() {
        let out = simulate(
            &cfg,
            &CellOp::Read {
                initial: vec![pol; 3],
                active: vec![0],
            },
        )
        .expect("transient converges");
        let waves = [
            (
                "VWBL0".to_owned(),
                Waveform::single_pulse(v_r, t0, cfg.read_width_s),
            ),
            (
                "VRBL".to_owned(),
                Waveform::single_pulse(cfg.rbl_bias_v, t0, cfg.read_width_s),
            ),
        ];
        let wave_refs: Vec<(&str, Waveform)> =
            waves.iter().map(|(n, w)| (n.as_str(), w.clone())).collect();
        read_energy[k] = total_drive_energy(&out, &wave_refs);
    }

    // Full write of a '1' (worst case: switching from '0').
    let write_energy = {
        let out = simulate(&cfg, &CellOp::Not { bit: Bit::One }).expect("transient converges");
        // Only integrate the write-phase sources; the read tail adds the
        // same terms as above.
        let (t_w0, w) = (50e-9, cfg.write_width_s);
        let waves = [
            ("VWBL0".to_owned(), {
                // The testbench merged write+read pulses into a PWL for
                // WBL0 — integrating with that full waveform is correct.

                Waveform::single_pulse(vw, t_w0, w)
            }),
            (
                "VWWL".to_owned(),
                Waveform::single_pulse(cfg.wwl_high_v, t_w0 - 20e-9, w + 40e-9),
            ),
        ];
        let wave_refs: Vec<(&str, Waveform)> =
            waves.iter().map(|(n, w)| (n.as_str(), w.clone())).collect();
        total_drive_energy(&out, &wave_refs)
    };

    let result = DerivedEnergy {
        read0_cell_fj: read_energy[0] * 1e15,
        read1_cell_fj: read_energy[1] * 1e15,
        write_cell_fj: write_energy * 1e15,
        read_row_nj: read_energy[0].max(read_energy[1]) * CELLS_PER_ROW * 1e9,
        write_row_nj: write_energy * CELLS_PER_ROW * 1e9,
        write_to_read_ratio: write_energy / read_energy[0].max(read_energy[1]),
    };

    println!("per-cell energies (drive sources, transistor netlist):");
    println!("  QNRO read of '0' : {:>9.2} fJ", result.read0_cell_fj);
    println!("  QNRO read of '1' : {:>9.2} fJ", result.read1_cell_fj);
    println!("  full write ('1') : {:>9.2} fJ", result.write_cell_fj);
    println!();
    println!("scaled to an 8 KB row ({} cells):", CELLS_PER_ROW as u64);
    println!(
        "  read (cell component)  : {:>7.2} nJ  (paper ACTIVATE 16.6 nJ incl. array parasitics)",
        result.read_row_nj
    );
    println!(
        "  write (cell component) : {:>7.2} nJ  (full polarization reversal)",
        result.write_row_nj
    );
    println!();
    println!(
        "write / read energy ratio: {:.1}x — the QNRO asymmetry behind the\npaper's low-activate-energy claim",
        result.write_to_read_ratio
    );

    record(&ExperimentRecord {
        id: "cell_energy",
        artifact: "Section VI energy constants (bottom-up)",
        paper_claim: "QNRO avoids full polarization reversal on reads -> low ACTIVATE energy",
        measured: &result,
    });

    assert!(
        result.write_cell_fj > result.read0_cell_fj,
        "writes must cost more"
    );
    assert!(
        result.read_row_nj < 16.6,
        "cell component below the full constant"
    );
    assert!(
        result.read0_cell_fj > result.read1_cell_fj,
        "reading 0 moves more charge"
    );
    println!("\nshape check PASSED");
}
