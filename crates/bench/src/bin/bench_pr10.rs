//! PR 10 replication baseline: hot-standby stripes vs unreplicated
//! pools, and deterministic failover recovery time.
//!
//! This binary requires the `telemetry` feature and is the documented
//! one-command producer of `results/BENCH_PR10.json`:
//!
//! ```text
//! FELIM_THREADS=1 cargo run --release -p felim-bench --features telemetry --bin bench_pr10
//! ```
//!
//! Two sweeps:
//!
//! * **trace** — the PR 7 multi-tenant trace replayed through
//!   [`BulkService`] unreplicated and again with one hot standby per
//!   stripe, at 1/2/4 shards, every member local. The serialised
//!   response log must be **byte-identical** per shard count
//!   (replication is invisible to settled responses), which pins the
//!   headline floor: replicated *simulated* time is within 1.3× of
//!   unreplicated at 4 shards — by construction it is exactly 1.0×,
//!   because standbys never extend the settled makespan. The wall
//!   column reports the honest host-side cost of executing every batch
//!   twice (≈2× at one worker thread; amortised by `FELIM_THREADS`).
//! * **failover** — a chaos proxy kills the remote primary's session
//!   mid-campaign; the sweep measures the ticks from promotion to the
//!   retired member rejoining as a rebuilt standby and asserts the
//!   bound the design guarantees:
//!   `ceil(snapshot_bytes / rebuild_chunk_bytes) + slack` virtual
//!   ticks, independent of wall time. Snapshot size comes from the
//!   run's own `rebuild_snapshot_bytes` counter (snapshots are sparse
//!   — the size depends on how many rows the campaign touched).
//!
//! Wall-clock cells take the best of three runs to shed scheduler
//! noise; the recovery cell is deterministic and measured once.

use felim::serve::{
    generate_trace, BulkService, ChaosProxy, ChaosSpec, ReplicationConfig, ServiceConfig,
    ServiceTier, ShardHost, TraceSpec,
};
use felim::telemetry;
use felim_bench::{header, results_dir};
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 0xA10;
/// Trace shape: more rows and requests than the unit-test default so
/// the wall columns measure work, not setup.
const TRACE_ROWS: u64 = 32;
const TRACE_REQUESTS: u64 = 96;
/// Rebuild pacing for the failover cell, bytes per tick — small enough
/// that the transfer spans several ticks and the bound is exercised.
const REBUILD_CHUNK: u64 = 1 << 14;
/// Extra ticks allowed beyond the pure transfer time: one tick to
/// observe the fault, one to snapshot, and scheduling slack.
const RECOVERY_SLACK: u64 = 4;
/// Wall-clock cells keep the best of this many runs.
const RUNS: usize = 3;

/// One sweep cell.
#[derive(Debug, Serialize)]
struct Mode {
    mode: String,
    /// `trace` (steady state) or `failover` (chaos kill + rebuild).
    scenario: &'static str,
    /// `plain` or `replicated`.
    pool: &'static str,
    shards: u32,
    /// Completed requests — the gate's work-unit count.
    samples: u64,
    /// Best-of-three host wall-clock for the cell, ms.
    wall_ms: f64,
    /// Simulated time the cell spanned, s.
    sim_seconds: f64,
    /// Completed requests per simulated second.
    samples_per_sim_s: f64,
    /// Completed requests per wall second.
    samples_per_wall_s: f64,
    /// Standby-side energy, mJ (zero for plain cells) — accounted
    /// outside the settled energy so the settled report stays
    /// byte-identical.
    standby_energy_mj: f64,
}

/// The floor block recorded next to the cells.
#[derive(Debug, Serialize)]
struct Floors {
    /// Replicated simulated time over plain at 4 shards (ceiling 1.3;
    /// by construction exactly 1.0).
    replication_sim_ratio_s4: f64,
    /// Replicated wall over plain at 4 shards (informational: the
    /// honest dual-dispatch cost at this `FELIM_THREADS`).
    replication_wall_ratio_s4: f64,
    /// Ticks from promotion to the rebuilt standby rejoining.
    failover_recovery_ticks: u64,
    /// The asserted bound: `ceil(snapshot / chunk) + slack`.
    failover_recovery_bound: u64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    schema: &'static str,
    seed: u64,
    threads: usize,
    trace_rows: u64,
    trace_requests: u64,
    rebuild_chunk_bytes: u64,
    floors: Floors,
    /// Replication telemetry counters over the whole sweep.
    telemetry: Vec<(String, u64)>,
    modes: Vec<Mode>,
}

fn trace_spec() -> TraceSpec {
    let mut spec = TraceSpec::small(SEED);
    spec.vector_rows = TRACE_ROWS;
    spec.requests = TRACE_REQUESTS;
    spec
}

fn config(shards: u32, replicated: bool) -> ServiceConfig {
    let mut c = ServiceConfig::small(shards);
    c.tier = ServiceTier::Baseline;
    c.queue_depth = 256;
    c.tenant_quota = Some(256);
    c.seed = SEED;
    if replicated {
        c.replication = Some(ReplicationConfig::default());
    }
    c
}

/// Replays the trace once; returns the serialised response log plus
/// the cell's numbers.
fn replay(config: ServiceConfig) -> (String, f64, u64, f64, f64) {
    let (vectors, events) = generate_trace(&trace_spec());
    let mut svc = BulkService::new(config).expect("valid config");
    for (name, rows) in &vectors {
        svc.create_vector(name, *rows).expect("vectors fit");
    }
    let started = Instant::now();
    svc.run_trace(&events);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let report = svc.report();
    assert_eq!(report.stats.completed, report.stats.submitted, "trace must complete");
    let standby_mj = report.replica.map_or(0.0, |r| r.standby_energy_nj * 1e-6);
    let log = serde_json::to_string(&svc.take_responses()).expect("log serialises");
    (log, report.sim_seconds, report.stats.completed, wall_ms, standby_mj)
}

/// One trace cell, best-of-`RUNS` wall; also returns the (identical
/// across runs) response log for the byte-identity check.
fn run_trace_cell(pool: &'static str, shards: u32) -> (Mode, String) {
    let mut best: Option<(String, f64, u64, f64, f64)> = None;
    for _ in 0..RUNS {
        let run = replay(config(shards, pool == "replicated"));
        if let Some(prev) = &best {
            assert_eq!(prev.0, run.0, "replay is deterministic across repeats");
        }
        best = match best {
            Some(prev) if prev.3 <= run.3 => Some(prev),
            _ => Some(run),
        };
    }
    let (log, sim_seconds, completed, wall_ms, standby_mj) = best.expect("RUNS > 0");
    let mode = Mode {
        mode: format!("trace_{pool}_s{shards}"),
        scenario: "trace",
        pool,
        shards,
        samples: completed,
        wall_ms,
        sim_seconds,
        samples_per_sim_s: completed as f64 / sim_seconds,
        samples_per_wall_s: completed as f64 / (wall_ms * 1e-3),
        standby_energy_mj: standby_mj,
    };
    (mode, log)
}

/// The failover cell: stripe 0's primary lives behind a chaos proxy
/// that tears its session mid-frame partway through the campaign. The
/// run is stepped manually so promotion and rebuild-completion ticks
/// are observed exactly; returns the cell, the recovery tick count,
/// the snapshot bytes the rebuild transferred, and the response log
/// for the identity check.
fn run_failover_cell(shards: u32) -> (Mode, u64, u64, String) {
    let host = ShardHost::bind("127.0.0.1:0").expect("loopback bind");
    let upstream = host.local_addr();
    std::thread::spawn(move || {
        let _ = host.serve_forever();
    });
    let chaos = ChaosProxy::start(
        upstream,
        ChaosSpec { seed: SEED, kill_mid_frame_at: Some(11), ..ChaosSpec::default() },
    )
    .expect("proxy binds");

    let mut cfg = config(shards, true);
    cfg.replication = Some(ReplicationConfig {
        rebuild_chunk_bytes: REBUILD_CHUNK,
        ..ReplicationConfig::default()
    });
    cfg.remote_shards = vec![(0, chaos.addr().to_string())];

    let (vectors, events) = generate_trace(&trace_spec());
    let mut svc = BulkService::new(cfg).expect("valid config");
    for (name, rows) in &vectors {
        svc.create_vector(name, *rows).expect("vectors fit");
    }
    let started = Instant::now();
    let mut idx = 0;
    let mut promoted_at: Option<u64> = None;
    let mut rebuilt_at: Option<u64> = None;
    let total = events.len() as u64;
    for _ in 0..100_000u64 {
        while idx < events.len() && events[idx].at_tick <= svc.now() {
            let ev = &events[idx];
            let _ = svc.submit(ev.tenant, ev.op.clone(), ev.deadline_ticks);
            idx += 1;
        }
        svc.step();
        let replica = svc.report().replica.expect("replication configured");
        if promoted_at.is_none() && replica.failovers > 0 {
            promoted_at = Some(svc.now());
        }
        if rebuilt_at.is_none() && replica.rebuilds_completed > 0 {
            rebuilt_at = Some(svc.now());
        }
        if idx == events.len()
            && svc.responses().len() as u64 >= total
            && rebuilt_at.is_some()
        {
            break;
        }
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let promoted_at = promoted_at.expect("the chaos kill fires mid-campaign");
    let rebuilt_at = rebuilt_at.expect("the retired primary rebuilds");
    let recovery_ticks = rebuilt_at - promoted_at;

    let report = svc.report();
    let replica = report.replica.expect("replication configured");
    assert_eq!(replica.failovers, 1, "exactly one transport failover");
    assert_eq!(report.stats.transport_errors, 0, "the standby absorbed the fault");
    let log = serde_json::to_string(&svc.take_responses()).expect("log serialises");
    let mode = Mode {
        mode: format!("failover_s{shards}"),
        scenario: "failover",
        pool: "replicated",
        shards,
        samples: report.stats.completed,
        wall_ms,
        sim_seconds: report.sim_seconds,
        samples_per_sim_s: report.stats.completed as f64 / report.sim_seconds,
        samples_per_wall_s: report.stats.completed as f64 / (wall_ms * 1e-3),
        standby_energy_mj: replica.standby_energy_nj * 1e-6,
    };
    (mode, recovery_ticks, replica.rebuild_snapshot_bytes, log)
}

fn main() {
    assert!(
        telemetry::enabled(),
        "bench_pr10 must be built with --features telemetry"
    );
    header(
        "BENCH_PR10",
        "stripe replication: hot-standby overhead and deterministic failover recovery",
    );
    telemetry::reset();

    let mut modes: Vec<Mode> = Vec::new();

    // Steady-state sweep: byte-identity plus the simulated-time floor.
    let mut sim_ratio_s4 = 0.0;
    let mut wall_ratio_s4 = 0.0;
    for shards in [1u32, 2, 4] {
        let (plain, plain_log) = run_trace_cell("plain", shards);
        let (replicated, replicated_log) = run_trace_cell("replicated", shards);
        assert_eq!(
            plain_log, replicated_log,
            "s{shards}: replication must be invisible in the response log"
        );
        if shards == 4 {
            sim_ratio_s4 = replicated.sim_seconds / plain.sim_seconds;
            wall_ratio_s4 = replicated.wall_ms / plain.wall_ms;
        }
        modes.push(plain);
        modes.push(replicated);
    }

    // Failover cell: recovery within the designed tick bound. The
    // no-fault log at the same shard count doubles as the corruption
    // check: the chaos run must reproduce it byte-for-byte.
    let (fail_mode, recovery_ticks, snapshot_len, fail_log) = run_failover_cell(2);
    let (_, nofault_log) = run_trace_cell("replicated", 2);
    assert_eq!(
        fail_log, nofault_log,
        "the killed-primary run settles byte-identically to the no-fault run"
    );
    modes.push(fail_mode);

    // The bound the design guarantees: the snapshot the rebuild actually
    // transferred (snapshots are sparse, so its size depends on the
    // campaign), paced at REBUILD_CHUNK per tick, plus fixed slack.
    let recovery_bound = snapshot_len.div_ceil(REBUILD_CHUNK) + RECOVERY_SLACK;

    println!(
        "  {:<24} {:>8} {:>10} {:>10} {:>14} {:>14}",
        "mode", "samples", "wall_ms", "sim_s", "per_sim_s", "per_wall_s"
    );
    for m in &modes {
        println!(
            "  {:<24} {:>8} {:>10.2} {:>10.3e} {:>14.1} {:>14.0}",
            m.mode, m.samples, m.wall_ms, m.sim_seconds, m.samples_per_sim_s,
            m.samples_per_wall_s,
        );
    }

    // The PR 10 acceptance floors, enforced on every regeneration.
    assert!(
        sim_ratio_s4 <= 1.3,
        "replicated simulated time at 4 shards must stay within 1.3× of plain, got {sim_ratio_s4:.3}×"
    );
    assert!(
        recovery_ticks <= recovery_bound,
        "failover recovery took {recovery_ticks} ticks, bound is {recovery_bound} \
         (snapshot {snapshot_len} B at {REBUILD_CHUNK} B/tick)"
    );
    println!(
        "  floors: replicated/plain sim at s4 {sim_ratio_s4:.3}× (ceiling 1.3×), \
         wall {wall_ratio_s4:.2}× (informational), \
         recovery {recovery_ticks} ticks (bound {recovery_bound})"
    );

    let snapshot = telemetry::snapshot();
    let counters: Vec<(String, u64)> = [
        "serve.replica.failovers",
        "serve.replica.planned_failovers",
        "serve.replica.divergences",
        "serve.replica.rebuilds_started",
        "serve.replica.rebuilds",
        "serve.replica.snapshot_pulls",
        "serve.replica.snapshot_pushes",
        "serve.replica.revivals",
        "serve.submitted",
        "serve.completed",
    ]
    .into_iter()
    .map(|name| (name.to_owned(), snapshot.counter(name).unwrap_or(0)))
    .collect();
    for (name, value) in &counters {
        println!("  {name:<34} {value}");
    }

    let floors = Floors {
        replication_sim_ratio_s4: sim_ratio_s4,
        replication_wall_ratio_s4: wall_ratio_s4,
        failover_recovery_ticks: recovery_ticks,
        failover_recovery_bound: recovery_bound,
    };
    let baseline = Baseline {
        schema: "felim-bench-pr10/v1",
        seed: SEED,
        threads: felim::exec::thread_count(),
        trace_rows: TRACE_ROWS,
        trace_requests: TRACE_REQUESTS,
        rebuild_chunk_bytes: REBUILD_CHUNK,
        floors,
        telemetry: counters,
        modes,
    };

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_PR10.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serialise baseline");
    std::fs::write(&path, json + "\n").expect("write BENCH_PR10.json");
    println!("\nwrote {}", path.display());
}
