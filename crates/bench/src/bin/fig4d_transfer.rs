//! Fig 4(d) — transfer curve of the fabricated transistor:
//! on/off ratio ≈ 10⁷ and subthreshold swing ≈ 110 mV/dec.

use felim::spice::sweep::{linspace, mosfet_transfer_curve};
use felim::spice::MosfetParams;
use felim_bench::{header, record, ExperimentRecord};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct TransferResult {
    on_off_ratio: f64,
    subthreshold_swing_mv_dec: f64,
    points: Vec<(f64, f64)>,
}

fn main() {
    header("Figure 4(d)", "transfer curve of the fabricated MOSFET");
    let params = MosfetParams::fabricated_nmos();

    // DC sweep through the simulator: gate swept −0.5…2 V, drain at 1 V.
    let points =
        mosfet_transfer_curve(&params, 1.0, &linspace(-0.5, 2.0, 26)).expect("dc sweep converges");
    println!(" Vgs (V) | Id (A)");
    for (vgs, id) in points.iter().step_by(2) {
        println!("  {vgs:5.2}  | {id:.3e}");
    }

    let i_off = points.first().unwrap().1;
    let i_on = points.last().unwrap().1;
    let on_off = i_on / i_off;

    // Subthreshold swing from the steepest decade in the subthreshold
    // region (0.2–0.45 V).
    let mut ss_best = f64::INFINITY;
    for w in points.windows(2) {
        let ((v1, i1), (v2, i2)) = (w[0], w[1]);
        if v1 >= 0.15 && v2 <= 0.5 && i2 > i1 {
            let ss = (v2 - v1) / (i2.log10() - i1.log10()) * 1e3;
            ss_best = ss_best.min(ss);
        }
    }

    println!("\non/off ratio        : {on_off:.2e}   (paper: 1e7)");
    println!("subthreshold swing  : {ss_best:.1} mV/dec (paper: 110 mV/dec)");
    println!(
        "model SS (analytic) : {:.1} mV/dec",
        params.subthreshold_swing_mv_dec()
    );

    let result = TransferResult {
        on_off_ratio: on_off,
        subthreshold_swing_mv_dec: ss_best,
        points,
    };
    record(&ExperimentRecord {
        id: "fig4d",
        artifact: "Figure 4(d)",
        paper_claim: "on/off ratio 1e7, SS = 110 mV/dec",
        measured: &result,
    });

    assert!((3e6..1e8).contains(&result.on_off_ratio));
    assert!((100.0..122.0).contains(&result.subthreshold_swing_mv_dec));
    println!("\nshape check PASSED");
}
