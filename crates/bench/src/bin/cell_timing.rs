//! Sense-timing analysis from the transistor-level netlists.
//!
//! The architecture model charges one cycle per primitive (the paper's
//! uniform-latency assumption, 50 ns memory cycle). This binary checks
//! that assumption bottom-up: how long after the read pulse rises does
//! the storage node settle and the RSL current develop a usable margin?

use felim::cell::netlists::{read_testbench, run, NetlistConfig, SN, T_R};
use felim::ferro::Polarity;
use felim_bench::{header, record, ExperimentRecord};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct TimingResult {
    /// Time from read-pulse edge to 90 % of the final V_int, ns.
    v_int_settle_ns: f64,
    /// Time from read-pulse edge until the '0'/'1' current margin
    /// reaches 90 % of its plateau value, ns.
    margin_develop_ns: f64,
    /// The plateau margin itself (ratio I0/I1).
    plateau_margin: f64,
}

fn main() {
    header(
        "Cell timing",
        "how fast QNRO sensing develops (transistor level)",
    );
    let cfg = NetlistConfig::standard();
    let t0 = 50e-9; // read-pulse edge in the testbench

    // Trace both stored states through the same read.
    let mut tb0 = read_testbench(&cfg, &[Polarity::Down; 3], &[0]);
    let tr0 = run(&mut tb0, &cfg).expect("converges");
    let mut tb1 = read_testbench(&cfg, &[Polarity::Up; 3], &[0]);
    let tr1 = run(&mut tb1, &cfg).expect("converges");

    // Settle time of V_int for the stored-0 (larger swing) case.
    let v_final = tr0.voltage_at(SN, tb0.schedule.t_sense_s).unwrap();
    let settle = tr0
        .rising_crossing(SN, 0.9 * v_final)
        .expect("V_int must rise")
        - t0;

    // Margin development: I0(t)/I1(t) reaching 90 % of its plateau.
    let plateau = tr0.element_current_at(T_R, tb0.schedule.t_sense_s).unwrap()
        / tr1.element_current_at(T_R, tb1.schedule.t_sense_s).unwrap();
    let mut margin_t = f64::NAN;
    let mut t = t0;
    while t < tb0.schedule.t_sense_s {
        let i0 = tr0.element_current_at(T_R, t).unwrap();
        let i1 = tr1.element_current_at(T_R, t).unwrap().max(1e-18);
        if i0 / i1 >= 0.9 * plateau {
            margin_t = t - t0;
            break;
        }
        t += 1e-9;
    }

    let result = TimingResult {
        v_int_settle_ns: settle * 1e9,
        margin_develop_ns: margin_t * 1e9,
        plateau_margin: plateau,
    };
    println!(
        "V_int settles (90 %)   : {:>7.1} ns after the read edge",
        result.v_int_settle_ns
    );
    println!(
        "sense margin develops  : {:>7.1} ns (to 90 % of plateau)",
        result.margin_develop_ns
    );
    println!("plateau margin I0/I1   : {:>7.1}x", result.plateau_margin);
    println!();
    println!("both are far inside the 50 ns memory cycle the architecture");
    println!("model assumes — the uniform 1-cycle primitive latency holds.");

    record(&ExperimentRecord {
        id: "cell_timing",
        artifact: "Section VI latency assumption",
        paper_claim: "uniform 1-cycle latency per ACTIVATE/COPY/PRECHARGE",
        measured: &result,
    });

    assert!(result.v_int_settle_ns < 50.0, "must settle within a cycle");
    assert!(result.margin_develop_ns < 50.0);
    assert!(result.plateau_margin > 3.0);
    println!("\nshape check PASSED");
}
