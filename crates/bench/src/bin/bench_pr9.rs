//! PR 9 transport baseline: loopback-TCP remote shard pools vs
//! in-process pools, and the pipelined `RemoteShard` wire path.
//!
//! This binary requires the `telemetry` feature and is the documented
//! one-command producer of `results/BENCH_PR9.json`:
//!
//! ```text
//! FELIM_THREADS=1 cargo run --release -p felim-bench --features telemetry --bin bench_pr9
//! ```
//!
//! Two sweeps, both against a single in-process [`ShardHost`] serving
//! one fresh shard per loopback-TCP session (exactly what `felim-shardd`
//! runs):
//!
//! * **trace** — the PR 7 multi-tenant trace replayed through
//!   [`BulkService`] with every shard local and again with every shard
//!   behind the wire, at 1/2/4 shards. The serialised response log and
//!   report must be byte-identical per shard count (the PR 9 settlement
//!   contract), so the *simulated* columns are transport-invariant and
//!   the wall columns isolate the wire tax.
//! * **pipeline** — the shard-level hot path: identical op batches
//!   driven into raw [`Shard`]s and into [`RemoteShard`] sessions at
//!   pipeline depth 1 (one round trip per batch) and depth 4 (four
//!   batches in flight), at 1/2/4 shards. Outcome digests must match
//!   the local run bit-for-bit.
//!
//! Wall-clock cells take the best of three runs to shed scheduler
//! noise. The sweep asserts the PR 9 acceptance floors on every
//! regeneration: depth-4 remote throughput within 1.3× of local at
//! 4 shards, and ≥1.5× simulated scaling from 1 to 4 remote shards.

use felim::arch::batch::{RowOp, RowOpOutput};
use felim::arch::energy::LatencyModel;
use felim::arch::geometry::{MemoryGeometry, RowId};
use felim::exec::derive_seed;
use felim::serve::shard::Shard;
use felim::serve::{
    generate_trace, BulkService, ConnectRetry, RemoteShard, ServiceConfig, ServiceTier,
    ShardHost, Technology, TraceSpec,
};
use felim::telemetry;
use felim_bench::{header, results_dir};
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 0x9b9;
/// Reliability tick charged per batch, s.
const TICK_S: f64 = 1e-3;
/// Trace shape: more rows and requests than the unit-test default so the
/// wall columns measure work, not setup.
const TRACE_ROWS: u64 = 32;
const TRACE_REQUESTS: u64 = 96;
/// Pipeline sweep: batches per shard and row-ops per batch. Batches are
/// deliberately row-op-heavy (bulk-bitwise sweeps) so the cells measure
/// the wire tax against real work, not against an empty tick.
const BATCHES: u64 = 48;
const BATCH_OPS: u64 = 192;
/// Wall-clock cells keep the best of this many runs.
const RUNS: usize = 3;

/// One sweep cell.
#[derive(Debug, Serialize)]
struct Mode {
    mode: String,
    /// `trace` (full service replay) or `pipeline` (raw shard batches).
    scenario: &'static str,
    /// `local` or `remote`.
    pool: &'static str,
    shards: u32,
    /// Batches in flight per shard (1 for local and trace cells).
    depth: u32,
    /// Completed requests (trace) or executed batches (pipeline) — the
    /// gate's work-unit count.
    samples: u64,
    /// Best-of-three host wall-clock for the cell, ms.
    wall_ms: f64,
    /// Simulated time the cell spanned, s (transport-invariant).
    sim_seconds: f64,
    /// Work units per simulated second — the scaling headline.
    samples_per_sim_s: f64,
    /// Work units per wall second — the transport-tax headline.
    samples_per_wall_s: f64,
}

/// The floor block recorded next to the cells.
#[derive(Debug, Serialize)]
struct Floors {
    /// Depth-4 remote wall over local wall at 4 shards (floor ≤ 1.3).
    remote_wall_ratio_s4: f64,
    /// Remote simulated throughput at 4 shards over 1 shard (floor ≥ 1.5).
    remote_sim_scaling_1_to_4: f64,
    /// Depth-1 wall over depth-4 wall at 4 remote shards (informational).
    pipeline_speedup_d1_to_d4: f64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    schema: &'static str,
    seed: u64,
    threads: usize,
    trace_rows: u64,
    trace_requests: u64,
    batches_per_shard: u64,
    ops_per_batch: u64,
    floors: Floors,
    /// Transport telemetry counters over the whole sweep.
    telemetry: Vec<(String, u64)>,
    modes: Vec<Mode>,
}

fn trace_spec() -> TraceSpec {
    let mut spec = TraceSpec::small(SEED);
    spec.vector_rows = TRACE_ROWS;
    spec.requests = TRACE_REQUESTS;
    spec
}

fn config(shards: u32, remotes: Vec<(u32, String)>) -> ServiceConfig {
    let mut c = ServiceConfig::small(shards);
    c.tier = ServiceTier::Baseline;
    c.queue_depth = 256;
    c.tenant_quota = Some(256);
    c.seed = SEED;
    c.remote_shards = remotes;
    c
}

/// Replays the trace once; returns the serialised `(responses, report)`
/// pair plus the report's simulated/wall numbers.
fn replay(shards: u32, remotes: Vec<(u32, String)>) -> (String, String, f64, u64, f64) {
    let (vectors, events) = generate_trace(&trace_spec());
    let mut svc = BulkService::new(config(shards, remotes)).expect("valid config");
    for (name, rows) in &vectors {
        svc.create_vector(name, *rows).expect("vectors fit");
    }
    let started = Instant::now();
    svc.run_trace(&events);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let report = svc.report();
    assert_eq!(report.stats.completed, report.stats.submitted, "trace must complete");
    let report_json = serde_json::to_string(&report).expect("report serialises");
    let log = serde_json::to_string(&svc.take_responses()).expect("log serialises");
    (log, report_json, report.sim_seconds, report.stats.completed, wall_ms)
}

/// One trace cell, best-of-`RUNS` wall; also returns the (identical
/// across runs) response log and report for the byte-identity check.
fn run_trace_cell(pool: &'static str, shards: u32, addr: &str) -> (Mode, String, String) {
    let remotes = |_: ()| -> Vec<(u32, String)> {
        if pool == "remote" {
            (0..shards).map(|s| (s, addr.to_owned())).collect()
        } else {
            Vec::new()
        }
    };
    let mut best: Option<(String, String, f64, u64, f64)> = None;
    for _ in 0..RUNS {
        let run = replay(shards, remotes(()));
        if let Some(prev) = &best {
            assert_eq!(prev.0, run.0, "replay is deterministic across repeats");
        }
        best = match best {
            Some(prev) if prev.4 <= run.4 => Some(prev),
            _ => Some(run),
        };
    }
    let (log, report, sim_seconds, completed, wall_ms) = best.expect("RUNS > 0");
    let mode = Mode {
        mode: format!("trace_{pool}_s{shards}"),
        scenario: "trace",
        pool,
        shards,
        depth: 1,
        samples: completed,
        wall_ms,
        sim_seconds,
        samples_per_sim_s: completed as f64 / sim_seconds,
        samples_per_wall_s: completed as f64 / (wall_ms * 1e-3),
    };
    (mode, log, report)
}

/// Untimed warm-up: seeds every row region the timed batches read, so
/// the measured stream is pure logic traffic (ops address rows, they
/// don't carry them — the deployment the wire protocol is shaped for).
fn seed_ops(row_words: usize) -> Vec<RowOp> {
    (0..16)
        .map(|r| RowOp::Write {
            row: RowId((r / 2) * 96 + (r % 2) * 37),
            data: vec![derive_seed(SEED, r); row_words],
        })
        .collect()
}

/// The `b`-th pipeline batch: a fixed mix of bulk-bitwise row ops, all
/// inside the geometry's data region.
fn batch_ops(b: u64) -> Vec<RowOp> {
    let base = (b % 8) * 96;
    let mut ops = Vec::with_capacity(BATCH_OPS as usize);
    for i in 0..BATCH_OPS {
        let a = RowId(base + (i * 3) % 64);
        let c = RowId(base + (i * 5) % 64);
        let d = RowId(base + 64 + (i % 32));
        ops.push(match i % 4 {
            0 => RowOp::Nand { a, b: c, dst: d },
            1 => RowOp::Xor { a, b: c, dst: d },
            2 => RowOp::And { a, b: c, dst: d },
            _ => RowOp::Not { src: a, dst: d },
        });
    }
    ops
}

/// Order-independent digest of a batch stream's outcomes: the
/// settlement contract says the remote stream must reproduce the local
/// one exactly, so the sums must match bit-for-bit.
#[derive(Debug, Default, PartialEq)]
struct OutcomeDigest {
    serial_cycles: u64,
    makespan_cycles: u64,
    outputs: u64,
}

impl OutcomeDigest {
    fn fold(&mut self, outcome: &felim::serve::shard::ShardBatchOutcome) {
        self.serial_cycles += outcome.serial_cycles;
        self.makespan_cycles += outcome.makespan_cycles;
        self.outputs += outcome
            .outputs
            .iter()
            .filter(|o| matches!(o, Ok(RowOpOutput::Done | RowOpOutput::Data(_))))
            .count() as u64;
    }
}

/// One pipeline cell: `BATCHES` batches into each of `shards` shards,
/// local (`depth` ignored) or remote at the given pipeline depth.
/// Returns the cell plus the outcome digest for the identity check.
fn run_pipeline_cell(
    pool: &'static str,
    shards: u32,
    depth: u32,
    addr: &str,
) -> (Mode, OutcomeDigest) {
    // Paper-width 8 KB rows: a row op moves 1024 words, so the wire's
    // ~26-byte op descriptors are amortised the way a real bulk-bitwise
    // deployment amortises them (ops address rows, they don't carry them).
    let geometry = MemoryGeometry {
        capacity_bytes: 8 << 20,
        row_bytes: 8 << 10,
        rows_per_subarray: 64,
    };
    let row_words = geometry.row_words();
    let mut best_wall = f64::INFINITY;
    let mut digest = OutcomeDigest::default();
    for run in 0..RUNS {
        let mut d = OutcomeDigest::default();
        let seeds = seed_ops(row_words);
        let wall_ms = if pool == "local" {
            let mut pool: Vec<Shard> = (0..shards)
                .map(|_| Shard::new(Technology::Feram, geometry, None))
                .collect();
            for shard in &mut pool {
                shard.execute(&seeds, TICK_S);
            }
            let started = Instant::now();
            for b in 0..BATCHES {
                let ops = batch_ops(b);
                for shard in &mut pool {
                    d.fold(&shard.execute(&ops, TICK_S));
                }
            }
            started.elapsed().as_secs_f64() * 1e3
        } else {
            let mut pool: Vec<RemoteShard> = (0..shards)
                .map(|_| {
                    RemoteShard::connect(
                        addr,
                        Technology::Feram,
                        geometry,
                        None,
                        ConnectRetry::default(),
                    )
                    .expect("loopback handshake succeeds")
                })
                .collect();
            for shard in &mut pool {
                shard.execute(&seeds, TICK_S).expect("seed batch lands");
            }
            let started = Instant::now();
            for b in 0..BATCHES {
                let ops = batch_ops(b);
                for shard in &mut pool {
                    while shard.inflight() >= depth as usize {
                        d.fold(&shard.recv_batch().expect("reply arrives").1);
                    }
                    shard.send_batch(&ops, TICK_S).expect("batch sends");
                }
            }
            for shard in &mut pool {
                while shard.inflight() > 0 {
                    d.fold(&shard.recv_batch().expect("reply arrives").1);
                }
            }
            started.elapsed().as_secs_f64() * 1e3
        };
        if run == 0 {
            digest = d;
        } else {
            assert_eq!(digest, d, "{pool}/s{shards}/d{depth}: repeats must agree");
        }
        best_wall = best_wall.min(wall_ms);
    }
    // Simulated time is transport-invariant. Every shard executes the
    // identical batch stream, so the per-tick worst-shard makespan
    // equals any one shard's — i.e. the digest total over the pool size.
    let sim_seconds = LatencyModel::paper_default().seconds(digest.makespan_cycles / u64::from(shards));
    let mode = Mode {
        mode: format!("pipe_{pool}_s{shards}_d{depth}"),
        scenario: "pipeline",
        pool,
        shards,
        depth,
        samples: BATCHES * u64::from(shards),
        wall_ms: best_wall,
        sim_seconds,
        samples_per_sim_s: (BATCHES * u64::from(shards)) as f64 / sim_seconds,
        samples_per_wall_s: (BATCHES * u64::from(shards)) as f64 / (best_wall * 1e-3),
    };
    (mode, digest)
}

fn main() {
    assert!(
        telemetry::enabled(),
        "bench_pr9 must be built with --features telemetry"
    );
    header(
        "BENCH_PR9",
        "shard transport: loopback-TCP remote pools vs in-process, and wire pipelining",
    );
    telemetry::reset();

    // One host backs every remote session in the sweep — exactly the
    // `felim-shardd` serving loop, minus the child process.
    let host = ShardHost::bind("127.0.0.1:0").expect("loopback bind");
    let addr = host.local_addr().to_string();
    std::thread::spawn(move || {
        let _ = host.serve_forever();
    });

    let mut modes: Vec<Mode> = Vec::new();

    // Trace sweep: byte-identity plus simulated scaling.
    for shards in [1u32, 2, 4] {
        let (local, local_log, local_report) = run_trace_cell("local", shards, &addr);
        let (remote, remote_log, remote_report) = run_trace_cell("remote", shards, &addr);
        assert_eq!(
            local_log, remote_log,
            "s{shards}: remote response log must be byte-identical to local"
        );
        assert_eq!(
            local_report, remote_report,
            "s{shards}: remote report must be byte-identical to local"
        );
        modes.push(local);
        modes.push(remote);
    }

    // Pipeline sweep: the raw wire path at depth 1 and 4.
    for shards in [1u32, 2, 4] {
        let (local, local_digest) = run_pipeline_cell("local", shards, 1, &addr);
        modes.push(local);
        for depth in [1u32, 4] {
            let (remote, remote_digest) = run_pipeline_cell("remote", shards, depth, &addr);
            assert_eq!(
                local_digest, remote_digest,
                "s{shards}/d{depth}: remote outcomes must reproduce local bit-for-bit"
            );
            modes.push(remote);
        }
    }

    println!(
        "  {:<22} {:>8} {:>10} {:>10} {:>14} {:>14}",
        "mode", "samples", "wall_ms", "sim_s", "per_sim_s", "per_wall_s"
    );
    for m in &modes {
        println!(
            "  {:<22} {:>8} {:>10.2} {:>10.3e} {:>14.1} {:>14.0}",
            m.mode, m.samples, m.wall_ms, m.sim_seconds, m.samples_per_sim_s,
            m.samples_per_wall_s,
        );
    }

    let cell = |name: &str| -> &Mode {
        modes
            .iter()
            .find(|m| m.mode == name)
            .expect("sweep covers the cell")
    };
    let remote_wall_ratio_s4 = cell("pipe_remote_s4_d4").wall_ms / cell("pipe_local_s4_d1").wall_ms;
    let remote_sim_scaling_1_to_4 =
        cell("trace_remote_s4").samples_per_sim_s / cell("trace_remote_s1").samples_per_sim_s;
    let pipeline_speedup_d1_to_d4 =
        cell("pipe_remote_s4_d1").wall_ms / cell("pipe_remote_s4_d4").wall_ms;
    let floors = Floors {
        remote_wall_ratio_s4,
        remote_sim_scaling_1_to_4,
        pipeline_speedup_d1_to_d4,
    };

    // The PR 9 acceptance floors, enforced on every regeneration.
    assert!(
        remote_wall_ratio_s4 <= 1.3,
        "depth-4 remote at 4 shards must stay within 1.3× of local wall, got {remote_wall_ratio_s4:.2}×"
    );
    assert!(
        remote_sim_scaling_1_to_4 >= 1.5,
        "1→4 remote shards must scale simulated throughput ≥1.5×, got {remote_sim_scaling_1_to_4:.2}×"
    );
    println!(
        "  floors: remote/local wall at s4 {remote_wall_ratio_s4:.2}× (ceiling 1.3×), \
         sim scaling 1→4 {remote_sim_scaling_1_to_4:.2}× (floor 1.5×), \
         pipelining d1→d4 {pipeline_speedup_d1_to_d4:.2}×"
    );

    let snapshot = telemetry::snapshot();
    let counters: Vec<(String, u64)> = [
        "serve.remote.sessions",
        "serve.remote.batches_sent",
        "serve.remote.connect_retries",
        "serve.remote.transport_errors",
        "serve.submitted",
        "serve.completed",
        "arch.batch.ops",
    ]
    .into_iter()
    .map(|name| (name.to_owned(), snapshot.counter(name).unwrap_or(0)))
    .collect();
    for (name, value) in &counters {
        println!("  {name:<30} {value}");
    }

    let baseline = Baseline {
        schema: "felim-bench-pr9/v1",
        seed: SEED,
        threads: felim::exec::thread_count(),
        trace_rows: TRACE_ROWS,
        trace_requests: TRACE_REQUESTS,
        batches_per_shard: BATCHES,
        ops_per_batch: BATCH_OPS,
        floors,
        telemetry: counters,
        modes,
    };

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_PR9.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serialise baseline");
    std::fs::write(&path, json + "\n").expect("write BENCH_PR9.json");
    println!("\nwrote {}", path.display());
}
