//! PR 8 kernel-compiler baseline: fused expression kernels vs
//! op-at-a-time request streams, plus the content-addressed read cache.
//!
//! This binary requires the `telemetry` feature and is the documented
//! one-command producer of `results/BENCH_PR8.json`:
//!
//! ```text
//! FELIM_THREADS=1 cargo run --release -p felim-bench --features telemetry --bin bench_pr8
//! ```
//!
//! Three workloads, all over the same striped vector shapes:
//!
//! * **crc8** — a bit-sliced CRC-8 (poly 0x07) over eight message-bit
//!   slices. The kernel strategy ships the whole 72-statement update as
//!   one fused program: renames are free, every XOR lowers to four
//!   native NANDs over slot-interleaved scratch rows (96 sweeps that
//!   spread across subarrays), and the whole program is one batch. The
//!   per-op strategy issues the same update as 72 logical requests
//!   where every shift is a materialised copy and every XOR takes the
//!   backend's serialised 4-NAND composition.
//! * **predicate** — an iterative sticky-bitmap refresh whose previous
//!   value is kept via a rename (kernel) or an explicit copy (per-op).
//! * **read_cache** — a repeated-read campaign replayed with the digest
//!   cache on and off: identical responses, fewer simulated cycles.
//!
//! The headline metric is **simulated** throughput (programs per
//! simulated second; each virtual tick costs the slowest shard's
//! subarray-parallel makespan). The sweep asserts the PR 8 acceptance
//! floor — ≥1.3× fused-vs-per-op CRC-8 throughput at 4 shards — and the
//! cache campaign must report a nonzero hit rate.

use felim::arch::DriftSpec;
use felim::serve::{BulkService, LogicalOp, ServiceConfig, ServiceTier, TenantId};
use felim::telemetry;
use felim_bench::{header, results_dir};
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 0x9b8;
const ROWS: u64 = 16;
/// CRC-8/ATM generator polynomial, x^8 + x^2 + x + 1.
const POLY: u8 = 0x07;
/// Programs (full CRC updates / predicate refreshes) per sweep cell.
const PROGRAMS: usize = 12;
/// Scratch reservation: the CRC-8 plan peaks at 19 live slots × a
/// 16-row stripe on the 1-shard cell (304 rows), and the 17 catalog
/// vectors (272 rows) still fit under `data_rows − 384`.
const SCRATCH_ROWS: u64 = 384;

/// One sweep cell: a fixed number of programs through one strategy.
#[derive(Debug, Serialize)]
struct Mode {
    mode: String,
    workload: &'static str,
    /// `kernel` (one fused request per program) or `per_op` (one
    /// logical request per statement); `on`/`off` for the cache cells.
    strategy: &'static str,
    shards: u32,
    tier: &'static str,
    /// Completed requests (the gate's work-unit count).
    samples: u64,
    /// Whole programs those requests implemented.
    programs: u64,
    /// Host wall-clock for the cell, ms (gate bookkeeping only).
    wall_ms: f64,
    /// Simulated time the cell spanned, s.
    sim_seconds: f64,
    /// Programs per simulated second — the headline.
    programs_per_sim_s: f64,
    /// Row-level ops the kernels fused (0 for per-op cells).
    fused_ops: u64,
    cse_hits: u64,
    /// Simulated-throughput speedup vs the per-op cell of the same
    /// workload, shard count, and tier (1.0 on per-op cells).
    speedup_vs_per_op: f64,
}

/// The repeated-read campaign's cache accounting.
#[derive(Debug, Serialize)]
struct CacheSummary {
    hits: u64,
    misses: u64,
    invalidations: u64,
    hit_rate: f64,
    sim_seconds_on: f64,
    sim_seconds_off: f64,
    /// Simulated-time speedup of cache-on over cache-off.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    schema: &'static str,
    seed: u64,
    threads: usize,
    rows: u64,
    programs_per_cell: usize,
    cache: CacheSummary,
    /// Service telemetry counters over the whole sweep.
    telemetry: Vec<(String, u64)>,
    modes: Vec<Mode>,
}

fn config(shards: u32, tier: ServiceTier) -> ServiceConfig {
    let mut c = ServiceConfig::small(shards);
    c.tier = tier;
    c.queue_depth = 256;
    c.tenant_quota = Some(256);
    c.batch_window = 8;
    c.kernel_scratch_rows = SCRATCH_ROWS;
    c.seed = SEED;
    c
}

/// The bit-sliced CRC-8 update as one DSL program: for each message bit,
/// fold it into the running remainder and shift. Shifts are renames —
/// free in the fused plan, materialised copies in the per-op stream.
fn crc8_program() -> String {
    let mut lines = Vec::new();
    for i in 0..8 {
        lines.push(format!("fb = c7 ^ m{i}"));
        for k in (1..8).rev() {
            if (POLY >> k) & 1 == 1 {
                lines.push(format!("c{k} = c{} ^ fb", k - 1));
            } else {
                lines.push(format!("c{k} = c{}", k - 1));
            }
        }
        lines.push("c0 = fb".to_string());
    }
    lines.join("\n")
}

/// The same update as an op-at-a-time request stream. Copies are
/// `x OR x → dst`; the shift walks top-down so every read still sees the
/// pre-shift value.
fn crc8_requests() -> Vec<LogicalOp> {
    let copy = |src: String, dst: String| LogicalOp::Or {
        a: src.clone(),
        b: src,
        dst,
    };
    let mut ops = Vec::new();
    for i in 0..8 {
        ops.push(LogicalOp::Xor {
            a: "c7".into(),
            b: format!("m{i}"),
            dst: "fb".into(),
        });
        for k in (1..8).rev() {
            if (POLY >> k) & 1 == 1 {
                ops.push(LogicalOp::Xor {
                    a: format!("c{}", k - 1),
                    b: "fb".into(),
                    dst: format!("c{k}"),
                });
            } else {
                ops.push(copy(format!("c{}", k - 1), format!("c{k}")));
            }
        }
        ops.push(copy("fb".into(), "c0".into()));
    }
    ops
}

/// Sticky-bitmap refresh: keep rows that newly match or already matched
/// with the sticky mask, and report what changed. The kernel keeps
/// `prev` as a rename; the per-op stream must copy it out first.
const PREDICATE_PROGRAM: &str = "prev = flagged\n\
     flagged = (price & in_stock) | (flagged & sticky)\n\
     changed = prev ^ flagged";

fn predicate_requests() -> Vec<LogicalOp> {
    vec![
        LogicalOp::Or {
            a: "flagged".into(),
            b: "flagged".into(),
            dst: "prev".into(),
        },
        LogicalOp::And {
            a: "price".into(),
            b: "in_stock".into(),
            dst: "t1".into(),
        },
        LogicalOp::And {
            a: "flagged".into(),
            b: "sticky".into(),
            dst: "t2".into(),
        },
        LogicalOp::Or {
            a: "t1".into(),
            b: "t2".into(),
            dst: "flagged".into(),
        },
        LogicalOp::Xor {
            a: "prev".into(),
            b: "flagged".into(),
            dst: "changed".into(),
        },
    ]
}

/// A program workload: the fused DSL form and its op-at-a-time twin
/// over one shared vector layout.
struct Workload {
    name: &'static str,
    vectors: Vec<String>,
    bindings: Vec<(String, String)>,
    program: String,
    per_op: Vec<LogicalOp>,
}

/// Builds a service, seeds the workload's vectors with per-name
/// patterns, then runs `PROGRAMS` repetitions of one strategy and
/// reports the cell.
fn run_cell(w: &Workload, strategy: &'static str, shards: u32, tier: ServiceTier) -> Mode {
    let (workload, vectors, bindings) = (w.name, &w.vectors, &w.bindings);
    let (program, per_op) = (&w.program, &w.per_op);
    let tier_label = tier.label();
    let mut svc = BulkService::new(config(shards, tier)).expect("valid config");
    let t = TenantId(0);
    for (i, name) in vectors.iter().enumerate() {
        svc.create_vector(name, ROWS).expect("vector fits");
        svc.submit(
            t,
            LogicalOp::Write {
                dst: name.clone(),
                words: vec![felim::exec::derive_seed(SEED, i as u64)],
            },
            None,
        )
        .expect("seed write admitted");
        svc.drain();
    }
    let seeded = svc.stats().completed;

    let started = Instant::now();
    let mut fused_ops = 0u64;
    let mut cse_hits = 0u64;
    for _ in 0..PROGRAMS {
        if strategy == "kernel" {
            svc.submit(
                t,
                LogicalOp::Kernel {
                    program: program.to_owned(),
                    bindings: bindings.to_vec(),
                },
                None,
            )
            .expect("kernel admitted");
        } else {
            for op in per_op {
                svc.submit(t, op.clone(), None).expect("op admitted");
            }
        }
        svc.drain();
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let report = svc.report();
    assert_eq!(
        report.stats.completed, report.stats.submitted,
        "{workload}/{strategy}/s{shards}: every request must complete"
    );
    for r in svc.take_responses() {
        if let Ok(felim::serve::ResponsePayload::Kernel {
            fused_ops: f,
            cse_hits: c,
            ..
        }) = r.outcome
        {
            fused_ops += f;
            cse_hits += c;
        }
    }
    Mode {
        mode: format!("{workload}_{strategy}_s{shards}_{tier_label}"),
        workload,
        strategy,
        shards,
        tier: tier_label,
        samples: report.stats.completed - seeded,
        programs: PROGRAMS as u64,
        wall_ms,
        sim_seconds: report.sim_seconds,
        programs_per_sim_s: PROGRAMS as f64 / report.sim_seconds,
        fused_ops,
        cse_hits,
        speedup_vs_per_op: 1.0, // filled once the per-op twin is known
    }
}

fn crc8_workload() -> Workload {
    let mut vectors = Vec::new();
    let mut bindings = Vec::new();
    for i in 0..8 {
        for prefix in ["c", "m"] {
            let name = format!("{prefix}{i}");
            vectors.push(name.clone());
            bindings.push((name.clone(), name));
        }
    }
    vectors.push("fb".to_string()); // per-op temp; unbound in the kernel
    Workload {
        name: "crc8",
        vectors,
        bindings,
        program: crc8_program(),
        per_op: crc8_requests(),
    }
}

fn predicate_workload() -> Workload {
    let names = ["price", "in_stock", "sticky", "flagged", "prev", "changed"];
    let vectors: Vec<String> = names
        .iter()
        .map(|n| n.to_string())
        .chain(["t1".to_string(), "t2".to_string()])
        .collect();
    let bindings = names.iter().map(|n| (n.to_string(), n.to_string())).collect();
    Workload {
        name: "predicate",
        vectors,
        bindings,
        program: PREDICATE_PROGRAM.to_owned(),
        per_op: predicate_requests(),
    }
}

/// Repeated-read campaign: 4 vectors, 8 read rounds each, one
/// mid-campaign write. Returns the end-of-run report's stats and the
/// wall/sim time. Window 1 so repeats land in later batches than the
/// reads that fill the cache.
fn run_cache_cell(read_cache: bool) -> (Mode, felim::serve::ServiceReport) {
    let mut cfg = config(2, ServiceTier::Baseline);
    cfg.batch_window = 1;
    cfg.read_cache = read_cache;
    let mut svc = BulkService::new(cfg).expect("valid config");
    let t = TenantId(0);
    let names = ["q0", "q1", "q2", "q3"];
    for (i, name) in names.iter().enumerate() {
        svc.create_vector(name, ROWS).expect("fits");
        svc.submit(
            t,
            LogicalOp::Write {
                dst: (*name).into(),
                words: vec![felim::exec::derive_seed(SEED, 100 + i as u64)],
            },
            None,
        )
        .expect("admitted");
        svc.drain();
    }
    let seeded = svc.stats().completed;
    let started = Instant::now();
    for round in 0..8 {
        if round == 4 {
            svc.submit(
                t,
                LogicalOp::Write {
                    dst: "q0".into(),
                    words: vec![0xF00D],
                },
                None,
            )
            .expect("admitted");
            svc.drain();
        }
        for name in names {
            svc.submit(t, LogicalOp::Read { src: name.into() }, None)
                .expect("admitted");
            svc.drain();
        }
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let report = svc.report();
    let strategy = if read_cache { "on" } else { "off" };
    let mode = Mode {
        mode: format!("read_cache_{strategy}_s2_baseline"),
        workload: "read_cache",
        strategy,
        shards: 2,
        tier: "baseline",
        samples: report.stats.completed - seeded,
        programs: 8,
        wall_ms,
        sim_seconds: report.sim_seconds,
        programs_per_sim_s: 8.0 / report.sim_seconds,
        fused_ops: 0,
        cse_hits: 0,
        speedup_vs_per_op: 1.0,
    };
    (mode, report)
}

fn main() {
    assert!(
        telemetry::enabled(),
        "bench_pr8 must be built with --features telemetry"
    );
    header(
        "BENCH_PR8",
        "kernel compiler: fused DSL programs vs op-at-a-time, and the read-digest cache",
    );
    telemetry::reset();

    type TierFn = fn() -> ServiceTier;
    let tiers: [(&str, TierFn); 2] = [
        ("baseline", || ServiceTier::Baseline),
        ("protected", || ServiceTier::Protected {
            drift: DriftSpec::quiet(SEED),
            scrub_period_s: 1.0,
        }),
    ];

    let mut modes: Vec<Mode> = Vec::new();
    let crc8 = crc8_workload();
    for (_, tier) in &tiers {
        for shards in [1u32, 2, 4] {
            let mut pair: Vec<Mode> = ["per_op", "kernel"]
                .into_iter()
                .map(|strategy| run_cell(&crc8, strategy, shards, tier()))
                .collect();
            pair[1].speedup_vs_per_op =
                pair[1].programs_per_sim_s / pair[0].programs_per_sim_s;
            modes.append(&mut pair);
        }
    }
    let predicate = predicate_workload();
    for shards in [1u32, 2, 4] {
        let mut pair: Vec<Mode> = ["per_op", "kernel"]
            .into_iter()
            .map(|strategy| run_cell(&predicate, strategy, shards, ServiceTier::Baseline))
            .collect();
        pair[1].speedup_vs_per_op = pair[1].programs_per_sim_s / pair[0].programs_per_sim_s;
        modes.append(&mut pair);
    }

    let (mode_off, report_off) = run_cache_cell(false);
    let (mode_on, report_on) = run_cache_cell(true);
    let hits = report_on.stats.cache_hits;
    let misses = report_on.stats.cache_misses;
    let cache = CacheSummary {
        hits,
        misses,
        invalidations: report_on.stats.cache_invalidations,
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        sim_seconds_on: report_on.sim_seconds,
        sim_seconds_off: report_off.sim_seconds,
        speedup: report_off.sim_seconds / report_on.sim_seconds,
    };
    modes.push(mode_off);
    modes.push(mode_on);

    println!(
        "  {:<28} {:>8} {:>8} {:>10} {:>14} {:>9}",
        "mode", "requests", "programs", "sim_s", "prog/sim_s", "speedup"
    );
    for m in &modes {
        println!(
            "  {:<28} {:>8} {:>8} {:>10.3e} {:>14.1} {:>8.2}x",
            m.mode, m.samples, m.programs, m.sim_seconds, m.programs_per_sim_s,
            m.speedup_vs_per_op,
        );
    }

    // The PR 8 acceptance floors, enforced on every regeneration.
    for (tier_label, _) in &tiers {
        let fused = modes
            .iter()
            .find(|m| m.mode == format!("crc8_kernel_s4_{tier_label}"))
            .expect("sweep covers the cell");
        assert!(
            fused.speedup_vs_per_op > 1.3,
            "{tier_label}: fused CRC-8 at 4 shards must beat per-op by >1.3×, got {:.2}×",
            fused.speedup_vs_per_op
        );
        println!(
            "  {tier_label:<10} crc8 s4: fused vs per-op {:.2}× (floor 1.3×)",
            fused.speedup_vs_per_op
        );
    }
    assert!(cache.hits > 0, "repeated-read campaign must hit the cache");
    assert!(
        cache.speedup > 1.0,
        "cache hits must shrink simulated time, got {:.3}×",
        cache.speedup
    );
    println!(
        "  read cache: {:.0}% hit rate, {:.2}× simulated-time speedup",
        cache.hit_rate * 100.0,
        cache.speedup
    );

    let snapshot = telemetry::snapshot();
    let counters: Vec<(String, u64)> = [
        "serve.kernel.requests",
        "serve.kernel.fused_ops",
        "serve.kernel.cse_hits",
        "serve.cache.hits",
        "serve.cache.misses",
        "serve.cache.invalidations",
        "serve.submitted",
        "serve.completed",
        "arch.batch.ops",
    ]
    .into_iter()
    .map(|name| (name.to_owned(), snapshot.counter(name).unwrap_or(0)))
    .collect();
    for (name, value) in &counters {
        println!("  {name:<26} {value}");
    }

    let baseline = Baseline {
        schema: "felim-bench-pr8/v1",
        seed: SEED,
        threads: felim::exec::thread_count(),
        rows: ROWS,
        programs_per_cell: PROGRAMS,
        cache,
        telemetry: counters,
        modes,
    };

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_PR8.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serialise baseline");
    std::fs::write(&path, json + "\n").expect("write BENCH_PR8.json");
    println!("\nwrote {}", path.display());
}
