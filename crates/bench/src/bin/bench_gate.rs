//! CI throughput-regression gate.
//!
//! ```text
//! cargo run --release -p felim-bench --bin bench_gate -- \
//!     results/BENCH_PR3.json /tmp/felim-bench/BENCH_PR3.json [tolerance]
//! ```
//!
//! Recomputes the aggregate throughput (total work units / total
//! wall-clock seconds) from the committed baseline and from a fresh
//! run, and exits non-zero when the fresh number falls more than
//! `tolerance` (default 0.10, i.e. 10 %) below the baseline. Aggregates
//! are recomputed from the per-entry arrays rather than read from any
//! precomputed field, so the gate accepts every baseline schema: the
//! PR 2/PR 3 `kernels` array (`sim_commands` per entry) and the PR 4
//! `modes` array (`samples` per entry).

use std::process::ExitCode;

/// Total work units / total wall-clock seconds from a baseline's
/// `kernels` (simulated commands) or `modes` (cell transients) array.
fn aggregate_ops_per_s(path: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let json: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let entries = json
        .get("kernels")
        .or_else(|| json.get("modes"))
        .and_then(|k| k.as_array())
        .ok_or_else(|| format!("{path}: no `kernels` or `modes` array"))?;
    let mut work = 0.0;
    let mut wall_s = 0.0;
    for k in entries {
        let units = k
            .get("sim_commands")
            .or_else(|| k.get("samples"))
            .and_then(serde_json::Value::as_f64)
            .ok_or_else(|| format!("{path}: entry without `sim_commands` or `samples`"))?;
        let wall_ms = k
            .get("wall_ms")
            .and_then(serde_json::Value::as_f64)
            .ok_or_else(|| format!("{path}: entry without `wall_ms`"))?;
        work += units;
        wall_s += wall_ms * 1e-3;
    }
    if wall_s <= 0.0 {
        return Err(format!("{path}: zero total wall time"));
    }
    Ok(work / wall_s)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 || args.len() > 4 {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json> [tolerance]");
        return ExitCode::from(2);
    }
    let tolerance: f64 = match args.get(3).map(|t| t.parse()) {
        None => 0.10,
        Some(Ok(t)) => t,
        Some(Err(e)) => {
            eprintln!("bench_gate: bad tolerance {:?}: {e}", args[3]);
            return ExitCode::from(2);
        }
    };
    let (baseline, fresh) = match (aggregate_ops_per_s(&args[1]), aggregate_ops_per_s(&args[2])) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            return ExitCode::from(2);
        }
    };
    let floor = baseline * (1.0 - tolerance);
    let ratio = fresh / baseline;
    println!(
        "bench_gate: baseline {baseline:.0} ops/s, fresh {fresh:.0} ops/s \
         ({ratio:.3}x, floor {floor:.0})"
    );
    if fresh < floor {
        eprintln!(
            "bench_gate: FAIL — fresh throughput is more than {:.0}% below the committed baseline",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: OK");
    ExitCode::SUCCESS
}
