//! PR 6 reliability baseline: silent-corruption rate and energy/cycle
//! overhead of the physics-driven reliability controller, swept over
//! protection tier (ECC on/off, patrol scrub period) and QNRO disturb
//! rate at the bake-oven operating point.
//!
//! This binary requires the `telemetry` feature and is the documented
//! one-command producer of `results/BENCH_PR6.json`:
//!
//! ```text
//! FELIM_THREADS=1 cargo run --release -p felim-bench --features telemetry --bin bench_pr6
//! ```
//!
//! Every setting runs the full eight-kernel reliability campaign: each
//! kernel executes through a `ReliabilityController`, its result rows
//! dwell for 30 simulated minutes at the 390 K bake while the
//! retention/imprint/disturb processes tick, and a readback classifies
//! every row. The campaign is fully seeded, so the committed baseline
//! reproduces bit for bit.

use felim::arch::DegradationPolicy;
use felim::telemetry;
use felim::workloads::driver::{
    run_reliability_campaign, ReliabilityCampaignSpec, ReliabilityTier,
};
use felim_bench::{header, results_dir};
use serde::Serialize;

const SIM_ROWS: u64 = 8;
const SEED: u64 = 42;
const KERNEL_SEED: u64 = 7;

/// One protection setting's aggregate campaign outcome.
#[derive(Debug, Serialize)]
struct Setting {
    tier: &'static str,
    ecc: bool,
    /// Patrol period, s; `null` when the scrubber is off.
    scrub_period_s: Option<f64>,
    disturb_per_read: f64,
    rows_audited: u64,
    drift_flips: u64,
    corrected_bits: u64,
    detected_rows: u64,
    silent_rows: u64,
    /// Silently corrupted rows per audited row.
    silent_rate: f64,
    scrub_passes: u64,
    scrub_rewrites: u64,
    cycles: u64,
    energy_nj: f64,
    /// Cycle overhead vs the unprotected tier at the same disturb rate.
    cycle_overhead: f64,
    /// Energy overhead vs the unprotected tier at the same disturb rate.
    energy_overhead: f64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    schema: &'static str,
    sim_rows: u64,
    seed: u64,
    kernel_seed: u64,
    threads: usize,
    /// Five controller telemetry counters over the whole sweep.
    telemetry: Vec<(String, u64)>,
    settings: Vec<Setting>,
}

fn run_setting(
    tier: ReliabilityTier,
    scrub_period_s: Option<f64>,
    disturb_per_read: f64,
    baseline: Option<&Setting>,
) -> Setting {
    let mut spec = ReliabilityCampaignSpec::bake_oven(SEED, tier);
    spec.drift.disturb_per_read = disturb_per_read;
    if let Some(period) = scrub_period_s {
        spec.scrub_period_s = period;
    }
    let outcomes =
        run_reliability_campaign(SIM_ROWS, KERNEL_SEED, &spec, &DegradationPolicy::hardened());
    assert!(
        outcomes.iter().all(|o| o.completed),
        "{}: every kernel must complete",
        tier.name()
    );
    let sum = |f: fn(&felim::workloads::driver::ReliabilityOutcome) -> u64| -> u64 {
        outcomes.iter().map(f).sum()
    };
    let rows_audited = sum(|o| o.rows_audited);
    let silent_rows = sum(|o| o.silent_rows);
    let cycles = sum(|o| o.cycles);
    let energy_nj: f64 = outcomes.iter().map(|o| o.energy_nj).sum();
    let overhead = |value: f64, base: f64| {
        if base > 0.0 {
            value / base - 1.0
        } else {
            0.0
        }
    };
    Setting {
        tier: tier.name(),
        ecc: tier != ReliabilityTier::Unprotected,
        scrub_period_s: (tier == ReliabilityTier::Protected)
            .then(|| scrub_period_s.unwrap_or(300.0)),
        disturb_per_read,
        rows_audited,
        drift_flips: sum(|o| o.drift_flips),
        corrected_bits: sum(|o| o.corrected_bits),
        detected_rows: sum(|o| o.detected_rows),
        silent_rows,
        silent_rate: silent_rows as f64 / rows_audited.max(1) as f64,
        scrub_passes: sum(|o| o.scrub_passes),
        scrub_rewrites: sum(|o| o.scrub_rewrites),
        cycles,
        energy_nj,
        cycle_overhead: baseline
            .map(|b| overhead(cycles as f64, b.cycles as f64))
            .unwrap_or(0.0),
        energy_overhead: baseline
            .map(|b| overhead(energy_nj, b.energy_nj))
            .unwrap_or(0.0),
    }
}

fn main() {
    assert!(
        telemetry::enabled(),
        "bench_pr6 must be built with --features telemetry"
    );
    header(
        "BENCH_PR6",
        "reliability controller: silent-corruption rate and scrub/ECC overhead",
    );
    telemetry::reset();

    let mut settings = Vec::new();
    for disturb in [0.0, 1e-4] {
        let unprotected = run_setting(ReliabilityTier::Unprotected, None, disturb, None);
        let ecc_only = run_setting(ReliabilityTier::EccOnly, None, disturb, Some(&unprotected));
        let mut scrubbed: Vec<Setting> = [300.0, 600.0, 1200.0]
            .into_iter()
            .map(|period| {
                run_setting(
                    ReliabilityTier::Protected,
                    Some(period),
                    disturb,
                    Some(&unprotected),
                )
            })
            .collect();
        // The PR 6 claim, enforced on every regeneration: the full
        // controller never corrupts silently where unprotected leaks.
        assert!(
            unprotected.silent_rows > 0,
            "operating point must make the unprotected tier leak"
        );
        for s in &scrubbed {
            assert_eq!(s.silent_rows, 0, "ecc+scrub must never corrupt silently");
        }
        settings.push(unprotected);
        settings.push(ecc_only);
        settings.append(&mut scrubbed);
    }

    println!(
        "  {:<12} {:>6} {:>8} {:>8} {:>7} {:>9} {:>7} {:>7} {:>9} {:>9}",
        "tier", "scrub", "disturb", "flips", "fixed", "detected", "silent", "rate", "cyc ovhd",
        "nrg ovhd"
    );
    for s in &settings {
        println!(
            "  {:<12} {:>6} {:>8.0e} {:>8} {:>7} {:>9} {:>7} {:>7.4} {:>8.1}% {:>8.1}%",
            s.tier,
            s.scrub_period_s
                .map(|p| format!("{p:.0}"))
                .unwrap_or_else(|| "-".into()),
            s.disturb_per_read,
            s.drift_flips,
            s.corrected_bits,
            s.detected_rows,
            s.silent_rows,
            s.silent_rate,
            s.cycle_overhead * 100.0,
            s.energy_overhead * 100.0,
        );
    }

    let snapshot = telemetry::snapshot();
    let counters: Vec<(String, u64)> = [
        "arch.ecc.corrected",
        "arch.ecc.uncorrectable",
        "arch.scrub.passes",
        "arch.scrub.rewrites",
        "arch.drift.ticks",
    ]
    .into_iter()
    .map(|name| (name.to_owned(), snapshot.counter(name).unwrap_or(0)))
    .collect();
    for (name, value) in &counters {
        println!("  {name:<24} {value}");
    }

    let baseline = Baseline {
        schema: "felim-bench-pr6/v1",
        sim_rows: SIM_ROWS,
        seed: SEED,
        kernel_seed: KERNEL_SEED,
        threads: felim::exec::thread_count(),
        telemetry: counters,
        settings,
    };

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_PR6.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serialise baseline");
    std::fs::write(&path, json + "\n").expect("write BENCH_PR6.json");
    println!("\nwrote {}", path.display());
}
