//! Ablation studies A1–A5 from DESIGN.md: isolating the contribution of
//! each design choice the paper's argument rests on.

use felim::arch::{BulkBackend, CommandClass, FeramBackend, MemoryGeometry, RowId};
use felim::cell::cell2tnc::{pattern_bits, Cell2TnC, Cell2TnCParams};
use felim::cell::Bit;
use felim::workloads::driver::{run_workload, Tech};
use felim::workloads::xor_cipher::XorCipher;
use felim::AreaModel;
use felim_bench::{header, record, ExperimentRecord};
use serde::Serialize;

#[derive(Debug, Serialize, Default)]
struct AblationSummary {
    a1_refresh_energy_share: f64,
    a2_staging_cycle_share: f64,
    a4_writebacks_at_budget_4: u64,
    a4_writebacks_at_budget_1024: u64,
    a5_working_reference_window: f64,
}

fn main() {
    let mut summary = AblationSummary::default();

    header("Ablation A1", "DRAM refresh contribution (64 ms interval)");
    let dram =
        run_workload(&XorCipher, Tech::Dram, 64, 1 << 30, 42).expect("fault-free run must verify");
    let refresh_nj = dram.scaled.energy_nj(CommandClass::Refresh);
    let share = refresh_nj / dram.scaled.total_energy_nj();
    let refresh_cycles = dram.scaled.cycles(CommandClass::Refresh);
    println!("  total energy          : {:.2} mJ", dram.energy_mj);
    println!(
        "  refresh energy        : {:.2} mJ ({:.1} % of total)",
        refresh_nj * 1e-6,
        share * 100.0
    );
    println!(
        "  refresh stall cycles  : {refresh_cycles} ({:.1} % of runtime)",
        100.0 * refresh_cycles as f64 / dram.scaled.total_cycles() as f64
    );
    println!("  (FeRAM pays zero — non-volatile)");
    summary.a1_refresh_energy_share = share;

    header("Ablation A2", "operand-staging share of the DRAM AAP chain");
    // An Ambit AND is 4 AAPs; 3 of them exist only to stage operands into
    // the designated rows (destructive TRA). Measure directly.
    let mut d = felim::arch::DramBackend::tiny();
    let words = d.geometry().row_words();
    d.install_row(RowId(0), &vec![1u64; words]).unwrap();
    d.install_row(RowId(1), &vec![2u64; words]).unwrap();
    let before = d.stats().total_cycles();
    d.and(RowId(0), RowId(1), RowId(2)).unwrap();
    let total = d.stats().total_cycles() - before;
    let staging = total - 3; // the final TRA-AAP is the only "real" work
    println!("  AND cost              : {total} cycles");
    println!(
        "  staging (copies)      : {staging} cycles ({:.0} %)",
        100.0 * staging as f64 / total as f64
    );
    println!("  FeRAM in-place TBA    : 6 cycles, no staging AAPs");
    summary.a2_staging_cycle_share = staging as f64 / total as f64;

    header("Ablation A3", "capacitors per cell (n) vs density");
    let m = AreaModel::paper_28nm();
    println!("  n | vertical density (Mbit/mm²) | footprint reduction");
    for n in [1usize, 2, 3, 4, 6, 8] {
        println!(
            "  {n} | {:>12.1}                | {:>6.2}x",
            m.vertical_storage_density_bits_mm2(n) / 1e6,
            m.footprint_reduction(n)
        );
    }

    header(
        "Ablation A4",
        "QNRO disturb budget vs maintenance write-backs",
    );
    println!("  budget | write-backs | extra energy (nJ) on 4096 reads");
    for budget in [4u32, 16, 64, 256, 1024] {
        let mut f = FeramBackend::new(MemoryGeometry::tiny()).with_disturb_budget(budget);
        f.install_row(RowId(0), &vec![7u64; f.geometry().row_words()])
            .unwrap();
        let base = f.stats().total_energy_nj();
        for _ in 0..4096 {
            let _ = f.read_row(RowId(0));
        }
        let wb = f.writebacks();
        let extra = f.stats().total_energy_nj() - base - 4096.0 * 16.92;
        println!("  {budget:>6} | {wb:>11} | {extra:>10.1}");
        if budget == 4 {
            summary.a4_writebacks_at_budget_4 = wb;
        }
        if budget == 1024 {
            summary.a4_writebacks_at_budget_1024 = wb;
        }
    }

    header("Ablation A5", "sense-reference placement robustness");
    // Sweep the TBA reference across the '001'..'011' window and count
    // decision errors over all eight patterns.
    let params = Cell2TnCParams::default();
    let mut currents = Vec::new();
    for v in 0..8u8 {
        let mut cell = Cell2TnC::new(&params);
        cell.write_bits(&pattern_bits(v));
        currents.push((v, cell.sense_levels(&[0, 1, 2]).rsl_current_a));
    }
    let i001 = currents.iter().find(|(v, _)| *v == 0b001).unwrap().1;
    let i011 = currents.iter().find(|(v, _)| *v == 0b011).unwrap().1;
    println!("  window: I('011') = {i011:.3e} .. I('001') = {i001:.3e} A");
    println!("  position (log-frac) | errors / 8 patterns");
    let mut ok_span = 0usize;
    const STEPS: usize = 21;
    for k in 0..STEPS {
        let f = k as f64 / (STEPS - 1) as f64;
        // Log-interpolate between the bracketing levels and extend ±20 %.
        let reference = i011 * (i001 / i011).powf(-0.2 + 1.4 * f);
        let errors = currents
            .iter()
            .filter(|(v, i)| {
                let sensed = Bit::from_bool(*i > reference);
                sensed != Bit::from_bool(v.count_ones() <= 1)
            })
            .count();
        if errors == 0 {
            ok_span += 1;
        }
        if k % 4 == 0 {
            println!("  {:>19.2} | {errors}", -0.2 + 1.4 * f);
        }
    }
    let window = ok_span as f64 / STEPS as f64;
    println!(
        "  error-free span: {:.0} % of the swept range",
        window * 100.0
    );
    summary.a5_working_reference_window = window;

    header(
        "Ablation A6",
        "subarray-parallel scheduling of a real kernel",
    );
    // Replay an XOR-cipher command log with rows striped across
    // subarrays, at increasing concurrency.
    use felim::arch::schedule::schedule;
    let geometry = MemoryGeometry::paper_8gb();
    let mut m = FeramBackend::new(geometry).with_command_log();
    let words = m.geometry().row_words();
    let stripe = geometry.rows_per_subarray;
    let key = RowId(0);
    m.install_row(key, &vec![0x5Au64; words]).unwrap();
    for i in 0..32u64 {
        let row = RowId(1 + i * stripe); // one row per subarray
        m.install_row(row, &vec![i; words]).unwrap();
        m.xor(row, key, row).unwrap();
    }
    let latency = *m.latency_model();
    println!("  slots | makespan (cycles) | speedup");
    let mut speedup_at_16 = 0.0;
    for slots in [1usize, 4, 16, 64] {
        let r = schedule(m.command_log(), m.geometry(), &latency, slots);
        println!(
            "  {slots:>5} | {:>16} | {:>6.2}x",
            r.makespan_cycles, r.speedup
        );
        if slots == 16 {
            speedup_at_16 = r.speedup;
        }
    }
    println!("  (operands share the key row — its subarray serialises the");
    println!("   colocation reads, bounding the achievable speedup)");

    record(&ExperimentRecord {
        id: "ablations",
        artifact: "DESIGN.md A1-A5",
        paper_claim: "refresh removal, copy elimination, density scaling, disturb budget, reference robustness",
        measured: &summary,
    });

    assert!(summary.a1_refresh_energy_share > 0.01);
    assert!(summary.a2_staging_cycle_share > 0.5);
    assert!(summary.a4_writebacks_at_budget_4 > summary.a4_writebacks_at_budget_1024);
    assert!(summary.a5_working_reference_window > 0.3);
    assert!(speedup_at_16 > 1.5, "parallel scheduling must help");
    println!("\nshape check PASSED");
}
