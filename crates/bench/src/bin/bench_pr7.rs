//! PR 7 service baseline: simulated throughput and latency of the
//! `felim-serve` request service, swept over shard count × batch
//! window × reliability tier against one fixed seeded trace.
//!
//! This binary requires the `telemetry` feature and is the documented
//! one-command producer of `results/BENCH_PR7.json`:
//!
//! ```text
//! FELIM_THREADS=1 cargo run --release -p felim-bench --features telemetry --bin bench_pr7
//! ```
//!
//! The headline metric is **simulated** throughput: each virtual tick
//! costs the slowest shard's subarray-parallel makespan, so adding
//! shards shrinks simulated time for the same completed work — a
//! hardware-scaling claim, independent of host core count (CI runs on
//! one core). Wall-clock per cell is recorded for the bench gate, and
//! the sweep asserts the PR 7 acceptance floor: ≥1.5× aggregate
//! simulated throughput going from 1 to 4 shards.

use felim::serve::{
    generate_trace, BulkService, LatencySummary, ServiceConfig, ServiceTier, Technology,
    TraceSpec,
};
use felim::arch::DriftSpec;
use felim::telemetry;
use felim_bench::{header, results_dir};
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 42;

/// One sweep cell: a full trace replay at one service configuration.
#[derive(Debug, Serialize)]
struct Mode {
    mode: String,
    shards: u32,
    batch_window: usize,
    tier: &'static str,
    technology: &'static str,
    /// Completed requests (the gate's work-unit count).
    samples: u64,
    /// Host wall-clock for the replay, ms (gate bookkeeping only).
    wall_ms: f64,
    /// Simulated time the replay spanned, s.
    sim_seconds: f64,
    /// Completed requests per simulated second — the headline.
    throughput_rps: f64,
    row_ops_per_second: f64,
    latency_cycles: LatencySummary,
    rejected_overloaded: u64,
    retries: u64,
    energy_mj: f64,
    /// Simulated-throughput speedup vs the 1-shard cell of the same
    /// batch window and tier.
    speedup_vs_1_shard: f64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    schema: &'static str,
    seed: u64,
    threads: usize,
    trace: TraceSpec,
    /// Service telemetry counters over the whole sweep.
    telemetry: Vec<(String, u64)>,
    modes: Vec<Mode>,
}

fn trace_spec() -> TraceSpec {
    TraceSpec {
        tenants: 4,
        vector_rows: 64,
        requests: 256,
        per_tick: 8,
        deadline_ticks: None,
        seed: SEED,
    }
}

fn run_cell(shards: u32, batch_window: usize, tier: ServiceTier) -> Mode {
    let tier_label = tier.label();
    let config = ServiceConfig {
        shards,
        technology: Technology::Feram,
        tier,
        shard_geometry: felim::arch::MemoryGeometry::tiny(),
        queue_depth: 64,
        batch_window,
        tenant_batch_window: Vec::new(),
        tenants: 4,
        tenant_quota: None,
        max_retries: 3,
        retry_backoff_ticks: 4,
        tick_s: 1e-3,
        seed: SEED,
        kernel_scratch_rows: 64,
        read_cache: true,
        remote_shards: Vec::new(),
        remote_connect_attempts: 5,
        remote_connect_backoff_ms: 20,
    };
    let (vectors, events) = generate_trace(&trace_spec());
    let mut service = BulkService::new(config).expect("valid sweep config");
    for (name, rows) in &vectors {
        service.create_vector(name, *rows).expect("vectors fit");
    }
    let started = Instant::now();
    service.run_trace(&events);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let report = service.report();
    assert_eq!(
        report.stats.completed + report.stats.failed + report.stats.rejected_overloaded
            + report.stats.rejected_quota + report.stats.shed_deadline
            + report.stats.rejected_invalid,
        report.stats.submitted,
        "every submission must be accounted"
    );
    Mode {
        mode: format!("s{shards}_w{batch_window}_{tier_label}"),
        shards,
        batch_window,
        tier: tier_label,
        technology: report.technology,
        samples: report.stats.completed,
        wall_ms,
        sim_seconds: report.sim_seconds,
        throughput_rps: report.throughput_rps,
        row_ops_per_second: report.row_ops_per_second,
        latency_cycles: report.latency,
        rejected_overloaded: report.stats.rejected_overloaded,
        retries: report.stats.retries,
        energy_mj: report.energy_mj,
        speedup_vs_1_shard: 0.0, // filled once the 1-shard cell is known
    }
}

fn main() {
    assert!(
        telemetry::enabled(),
        "bench_pr7 must be built with --features telemetry"
    );
    header(
        "BENCH_PR7",
        "sharded bulk-bitwise service: simulated throughput/latency vs shards × batch window × tier",
    );
    telemetry::reset();

    let tiers: [(&str, fn() -> ServiceTier); 2] = [
        ("baseline", || ServiceTier::Baseline),
        ("protected", || ServiceTier::Protected {
            drift: DriftSpec::quiet(SEED),
            scrub_period_s: 1.0,
        }),
    ];
    let mut modes: Vec<Mode> = Vec::new();
    for (_, tier) in &tiers {
        for batch_window in [1usize, 8] {
            let mut group: Vec<Mode> = [1u32, 2, 4, 8]
                .into_iter()
                .map(|shards| run_cell(shards, batch_window, tier()))
                .collect();
            let base_rps = group[0].throughput_rps;
            for m in &mut group {
                m.speedup_vs_1_shard = m.throughput_rps / base_rps;
            }
            modes.append(&mut group);
        }
    }

    println!(
        "  {:<18} {:>9} {:>10} {:>12} {:>9} {:>9} {:>8}",
        "mode", "completed", "sim_s", "req/sim_s", "p50 cyc", "p99 cyc", "speedup"
    );
    for m in &modes {
        println!(
            "  {:<18} {:>9} {:>10.3e} {:>12.1} {:>9} {:>9} {:>7.2}x",
            m.mode,
            m.samples,
            m.sim_seconds,
            m.throughput_rps,
            m.latency_cycles.p50,
            m.latency_cycles.p99,
            m.speedup_vs_1_shard,
        );
    }

    // The PR 7 acceptance floor, enforced on every regeneration.
    for (tier_label, window) in [("baseline", 8usize), ("protected", 8)] {
        let find = |shards: u32| {
            modes
                .iter()
                .find(|m| m.shards == shards && m.batch_window == window && m.tier == tier_label)
                .expect("sweep covers the cell")
        };
        let speedup = find(4).throughput_rps / find(1).throughput_rps;
        assert!(
            speedup > 1.5,
            "{tier_label}/w{window}: 1→4 shards must scale >1.5×, got {speedup:.2}×"
        );
        println!("  {tier_label:<10} w{window}: 1→4 shard speedup {speedup:.2}× (floor 1.5×)");
    }

    let snapshot = telemetry::snapshot();
    let counters: Vec<(String, u64)> = [
        "serve.submitted",
        "serve.completed",
        "serve.batches",
        "serve.retries",
        "serve.rejected.overloaded",
        "exec.pool.dispatches",
        "exec.pool.tasks",
        "arch.batch.dispatches",
        "arch.batch.ops",
    ]
    .into_iter()
    .map(|name| (name.to_owned(), snapshot.counter(name).unwrap_or(0)))
    .collect();
    for (name, value) in &counters {
        println!("  {name:<24} {value}");
    }

    let baseline = Baseline {
        schema: "felim-bench-pr7/v1",
        seed: SEED,
        threads: felim::exec::thread_count(),
        trace: trace_spec(),
        telemetry: counters,
        modes,
    };

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_PR7.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serialise baseline");
    std::fs::write(&path, json + "\n").expect("write BENCH_PR7.json");
    println!("\nwrote {}", path.display());
}
