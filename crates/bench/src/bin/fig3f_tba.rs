//! Fig 3(f) — transistor-level SPICE simulation of the TBA NAND-NOR:
//! all eight initial states '000'…'111', RSL current sensed, final output
//! follows the MINORITY of the initial states.

use felim::cell::cell2tnc::pattern_bits;
use felim::cell::netlists::NetlistConfig;
use felim::cell::transients::{simulate, CellOp};
use felim::cell::Bit;
use felim_bench::{header, record, ExperimentRecord};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct TbaLevel {
    pattern: String,
    ones: u32,
    rsl_current_a: f64,
    output: String,
}

fn main() {
    header(
        "Figure 3(f)",
        "SPICE TBA NAND-NOR: all 8 states, output = MINORITY",
    );
    let cfg = NetlistConfig::standard();

    let mut levels = Vec::new();
    for v in 0..8u8 {
        let out = simulate(&cfg, &CellOp::Tba { pattern: v }).expect("transient must converge");
        levels.push((v, out.sensed_current_a));
    }
    // Reference between the '001' and '011' levels (as in Fig 4(j)).
    let i001 = levels.iter().find(|(v, _)| *v == 0b001).unwrap().1;
    let i011 = levels.iter().find(|(v, _)| *v == 0b011).unwrap().1;
    let reference = (i001 * i011).sqrt();
    println!("SA reference between '001' and '011': {reference:.3e} A\n");

    println!(" A B C | I_RSL (A)   | MIN out | expected");
    let mut rows = Vec::new();
    for (v, i) in &levels {
        let out = Bit::from_bool(*i > reference);
        let expect = Bit::from_bool(v.count_ones() <= 1);
        let b = pattern_bits(*v);
        println!(
            " {} {} {} | {:.3e} |    {}    |    {}",
            b[0], b[1], b[2], i, out, expect
        );
        assert_eq!(out, expect, "pattern {v:03b} must follow MINORITY");
        rows.push(TbaLevel {
            pattern: format!("{v:03b}"),
            ones: v.count_ones(),
            rsl_current_a: *i,
            output: out.to_string(),
        });
    }

    // Monotone ordering by popcount (the inverted-trend staircase).
    for a in &levels {
        for b in &levels {
            if a.0.count_ones() < b.0.count_ones() {
                assert!(a.1 > b.1, "{:03b} must out-drive {:03b}", a.0, b.0);
            }
        }
    }

    println!("\ncurrent is monotone decreasing in popcount (inverted trend)");
    println!("with C = 0 the output row is NAND(A, B); with C = 1, NOR(A, B)");

    record(&ExperimentRecord {
        id: "fig3f",
        artifact: "Figure 3(f)",
        paper_claim: "TBA output follows MINORITY of the initial states for all 8 combinations",
        measured: &rows,
    });
    println!("shape check PASSED");
}
