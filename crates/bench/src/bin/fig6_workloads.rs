//! Fig 6 — energy consumption (a) and execution cycles (b) for the eight
//! data-intensive workloads at 1 GB, DRAM vs 2T-nC FeRAM.
//!
//! Every workload's in-memory result is verified bit-for-bit against its
//! software reference during simulation; counts are extrapolated
//! analytically to 1 GB (primitive counts are linear in row count) and
//! DRAM refresh is applied to the extrapolated runtime.

use felim::evaluation::run_fig6;
use felim_bench::{header, record, ExperimentRecord};

fn main() {
    let sim_rows: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    header(
        "Figure 6",
        "eight workloads, 1 GB each, 8 GB / 8 KB-row memory",
    );
    println!("(simulating {sim_rows} data rows per workload, extrapolating to 1 GB)\n");

    let (rows, energy_geomean, cycle_geomean) = run_fig6(sim_rows, 1 << 30, 42);

    println!("(a) energy consumption (mJ):");
    println!(
        "  {:<24} {:>10} {:>10} {:>7}",
        "workload", "DRAM", "FeRAM", "ratio"
    );
    for r in &rows {
        println!(
            "  {:<24} {:>10.2} {:>10.2} {:>6.2}x",
            r.workload, r.dram_energy_mj, r.feram_energy_mj, r.energy_ratio
        );
    }
    println!("\n(b) execution cycles:");
    println!(
        "  {:<24} {:>12} {:>12} {:>7}",
        "workload", "DRAM", "FeRAM", "ratio"
    );
    for r in &rows {
        println!(
            "  {:<24} {:>12} {:>12} {:>6.2}x",
            r.workload, r.dram_cycles, r.feram_cycles, r.cycle_ratio
        );
    }

    println!("\ngeomean energy reduction : {energy_geomean:.2}x  (paper: 2.5x)");
    println!("geomean speedup          : {cycle_geomean:.2}x  (paper: 2x)");

    record(&ExperimentRecord {
        id: "fig6",
        artifact: "Figure 6(a,b)",
        paper_claim: "2.5x lower energy and 2x performance vs DRAM across eight workloads",
        measured: &rows,
    });

    assert!(
        (2.2..3.0).contains(&energy_geomean),
        "energy geomean {energy_geomean}"
    );
    assert!(
        (1.7..2.4).contains(&cycle_geomean),
        "cycle geomean {cycle_geomean}"
    );
    for r in &rows {
        assert!(
            r.energy_ratio > 1.0 && r.cycle_ratio > 1.0,
            "{}",
            r.workload
        );
    }
    println!("\nshape check PASSED");
}
