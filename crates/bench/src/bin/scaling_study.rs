//! Workload-size scaling study: energy and cycles vs data size for both
//! technologies, 64 MB → 4 GB. Verifies the extrapolation story (both
//! metrics are linear in size) and shows the FeRAM advantage is
//! size-independent — with the one systematic exception that DRAM's
//! refresh share *grows* with runtime, so the DRAM energy curve bends
//! upward at large sizes.

use felim::workloads::driver::{compare, geomean};
use felim::workloads::xor_cipher::XorCipher;
use felim_bench::{header, record, ExperimentRecord};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ScalePoint {
    size_mb: u64,
    dram_energy_mj: f64,
    feram_energy_mj: f64,
    energy_ratio: f64,
    cycle_ratio: f64,
}

fn main() {
    header(
        "Scaling study",
        "XOR cipher, 64 MB – 4 GB, DRAM vs 2T-nC FeRAM",
    );

    let mut points = Vec::new();
    println!(" size    | DRAM (mJ) | FeRAM (mJ) | E ratio | cyc ratio");
    for shift in [26u32, 28, 30, 32] {
        let bytes = 1u64 << shift;
        let c = compare(&XorCipher, 32, bytes, 7).expect("fault-free run must verify");
        let p = ScalePoint {
            size_mb: bytes >> 20,
            dram_energy_mj: c.dram.energy_mj,
            feram_energy_mj: c.feram.energy_mj,
            energy_ratio: c.energy_ratio(),
            cycle_ratio: c.cycle_ratio(),
        };
        println!(
            " {:>5} MB | {:>9.2} | {:>10.2} | {:>6.2}x | {:>6.2}x",
            p.size_mb, p.dram_energy_mj, p.feram_energy_mj, p.energy_ratio, p.cycle_ratio
        );
        points.push(p);
    }

    // Linearity of the FeRAM curve (no refresh): each 4× size step must
    // scale energy by ≈4×.
    for w in points.windows(2) {
        let step = w[1].feram_energy_mj / w[0].feram_energy_mj;
        assert!((step - 4.0).abs() < 0.2, "FeRAM energy must scale linearly");
    }
    // DRAM bends upward once refresh windows accumulate.
    let first = points.first().unwrap();
    let last = points.last().unwrap();
    assert!(
        last.energy_ratio >= first.energy_ratio - 0.05,
        "advantage must not shrink with size"
    );
    let e_geo = geomean(points.iter().map(|p| p.energy_ratio));
    let c_geo = geomean(points.iter().map(|p| p.cycle_ratio));
    println!("\nacross sizes: energy ratio geomean {e_geo:.2}x, cycle {c_geo:.2}x");
    println!("FeRAM scales exactly linearly; DRAM gains a growing refresh tax.");

    record(&ExperimentRecord {
        id: "scaling",
        artifact: "extrapolation validity (Section VI methodology)",
        paper_claim: "bulk-bitwise primitive counts scale linearly with workload size",
        measured: &points,
    });
    println!("\nshape check PASSED");
}
