//! # felim-bench — figure regeneration and performance benchmarks
//!
//! One binary per paper artifact (`cargo run --release -p felim-bench
//! --bin <target>`):
//!
//! | target | regenerates |
//! |---|---|
//! | `fig1_comparison` | Fig 1 — technology comparison table |
//! | `fig2_sensing` | Fig 2 — destructive vs QNRO sensing charges |
//! | `fig3d_not` | Fig 3(d) — transistor-level NOT transient |
//! | `fig3f_tba` | Fig 3(f) — transistor-level TBA NAND-NOR levels |
//! | `fig4d_transfer` | Fig 4(d) — transistor transfer curve |
//! | `fig4e_pv` | Fig 4(e) — P–V loops vs temperature |
//! | `fig4f_endurance` | Fig 4(f) — bipolar cycling endurance |
//! | `fig4gh_switching` | Fig 4(g,h) — pulse switching dynamics |
//! | `fig4ij_minority` | Fig 4(i,j) — TBA currents and MINORITY output |
//! | `sec5_area` | Section V — planar vs vertical area/density |
//! | `fig6_workloads` | Fig 6 — eight-workload DRAM vs FeRAM evaluation |
//! | `fig7_thermal` | Fig 7 — steady-state stack thermal profile |
//!
//! Each binary prints the paper's rows/series to stdout and appends a
//! machine-readable record to `results/experiments.jsonl` (used to build
//! `EXPERIMENTS.md`). Criterion benches (`cargo bench`) measure the
//! engines themselves plus the ablations listed in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::fs::{create_dir_all, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;

/// A machine-readable experiment record appended to
/// `results/experiments.jsonl`.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentRecord<'a, T: Serialize> {
    /// Experiment id (e.g. `"fig6"`).
    pub id: &'a str,
    /// Paper artifact (e.g. `"Figure 6(a,b)"`).
    pub artifact: &'a str,
    /// What the paper reports.
    pub paper_claim: &'a str,
    /// What this run measured.
    pub measured: T,
}

/// Directory where experiment records are written (workspace-relative
/// `results/`, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("FELIM_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    PathBuf::from(dir)
}

/// Appends a record to `results/experiments.jsonl`. Failures to write are
/// reported but never fatal (the stdout table is the primary artifact).
pub fn record<T: Serialize>(rec: &ExperimentRecord<'_, T>) {
    let dir = results_dir();
    if let Err(e) = create_dir_all(&dir) {
        eprintln!("note: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("experiments.jsonl");
    match OpenOptions::new().create(true).append(true).open(&path) {
        Ok(mut f) => {
            if let Ok(line) = serde_json::to_string(rec) {
                let _ = writeln!(f, "{line}");
            }
        }
        Err(e) => eprintln!("note: cannot open {}: {e}", path.display()),
    }
}

/// Prints a section header for a figure binary.
pub fn header(artifact: &str, description: &str) {
    println!("================================================================");
    println!("{artifact} — {description}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_serialisable() {
        let rec = ExperimentRecord {
            id: "test",
            artifact: "none",
            paper_claim: "n/a",
            measured: vec![1.0, 2.0],
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"id\":\"test\""));
    }

    #[test]
    fn results_dir_env_override() {
        std::env::set_var("FELIM_RESULTS_DIR", "/tmp/felim-test-results");
        assert_eq!(results_dir(), PathBuf::from("/tmp/felim-test-results"));
        std::env::remove_var("FELIM_RESULTS_DIR");
    }
}
