//! Criterion benchmarks of the cell-level primitives: device pulses,
//! QNRO reads, TBA, and writes.

use criterion::{criterion_group, criterion_main, Criterion};
use felim::cell::cell2tnc::{Cell2TnC, Cell2TnCParams};
use felim::cell::Bit;
use felim::ferro::{MfmCapacitor, MfmParams, Polarity};
use std::hint::black_box;

fn bench_device(c: &mut Criterion) {
    let params = MfmParams::fabricated();
    let mut g = c.benchmark_group("device");

    g.bench_function("write_pulse", |b| {
        let mut cap = MfmCapacitor::new(&params);
        let mut bit = Polarity::Up;
        b.iter(|| {
            cap.write(black_box(bit));
            bit = bit.flipped();
        })
    });

    g.bench_function("qnro_read_pulse", |b| {
        let mut cap = MfmCapacitor::new(&params);
        cap.write(Polarity::Down);
        b.iter(|| black_box(cap.read_pulse_charge(params.read_voltage(), 100e-9)))
    });

    g.bench_function("predict_charge", |b| {
        let cap = MfmCapacitor::new(&params);
        b.iter(|| black_box(cap.predict_charge(black_box(0.85), 10e-9)))
    });
    g.finish();
}

fn bench_cell(c: &mut Criterion) {
    let params = Cell2TnCParams::default();
    let mut g = c.benchmark_group("cell2tnc");

    g.bench_function("construct_and_calibrate", |b| {
        b.iter(|| black_box(Cell2TnC::new(&params)))
    });

    g.bench_function("qnro_read", |b| {
        let mut cell = Cell2TnC::new(&params);
        cell.write(0, Bit::Zero);
        b.iter(|| black_box(cell.qnro_read(0)))
    });

    g.bench_function("tba_minority", |b| {
        let mut cell = Cell2TnC::new(&params);
        cell.write_bits(&[Bit::One, Bit::Zero, Bit::One]);
        b.iter(|| black_box(cell.tba()))
    });

    g.bench_function("write_three_bits", |b| {
        let mut cell = Cell2TnC::new(&params);
        b.iter(|| cell.write_bits(black_box(&[Bit::One, Bit::Zero, Bit::One])))
    });
    g.finish();
}

criterion_group!(benches, bench_device, bench_cell);
criterion_main!(benches);
