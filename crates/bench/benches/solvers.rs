//! Criterion benchmarks of the two numerical engines: the MNA transient
//! simulator and the thermal steady-state solver.

use criterion::{criterion_group, criterion_main, Criterion};
use felim::cell::netlists::{read_testbench, run, NetlistConfig};
use felim::ferro::Polarity;
use felim::spice::{Circuit, Element, TransientSpec, Waveform};
use felim::thermal::{solve_steady_state, PowerMap, Stack};
use std::hint::black_box;

fn bench_spice(c: &mut Criterion) {
    let mut g = c.benchmark_group("spice");
    g.sample_size(20);

    g.bench_function("rc_transient_1000_steps", |b| {
        b.iter(|| {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let out = ckt.node("out");
            ckt.add_vsource("V1", a, Circuit::GND, Waveform::step(1.0, 0.0));
            ckt.add("R1", Element::resistor(a, out, 1e3));
            ckt.add("C1", Element::capacitor(out, Circuit::GND, 1e-9));
            black_box(ckt.transient(&TransientSpec::new(5e-6, 5e-9)).unwrap())
        })
    });

    g.bench_function("cell_qnro_read_transient", |b| {
        let cfg = NetlistConfig::fast();
        b.iter(|| {
            let mut tb = read_testbench(&cfg, &[Polarity::Down; 3], &[0]);
            black_box(run(&mut tb, &cfg).unwrap())
        })
    });
    g.finish();
}

fn bench_thermal(c: &mut Criterion) {
    let mut g = c.benchmark_group("thermal");
    g.sample_size(20);
    let stack = Stack::feram_on_compute_die(5);
    for grid in [16usize, 32] {
        let mut power = PowerMap::zeros(&stack, grid, grid);
        power.add_uniform_layer(stack.compute_layer(), 28.0);
        g.bench_function(format!("steady_state_{grid}x{grid}x12"), |b| {
            b.iter(|| black_box(solve_steady_state(&stack, &power, 300.0)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_spice, bench_thermal);
criterion_main!(benches);
