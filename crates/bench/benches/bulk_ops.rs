//! Criterion benchmarks of the architecture-level row primitives on both
//! backends (simulator throughput, rows/second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use felim::arch::{BulkBackend, DramBackend, FeramBackend, MemoryGeometry, RowId};
use std::hint::black_box;

fn backends() -> Vec<(&'static str, Box<dyn BulkBackend>)> {
    vec![
        (
            "feram",
            Box::new(FeramBackend::new(MemoryGeometry::paper_8gb())),
        ),
        (
            "dram",
            Box::new(DramBackend::new(MemoryGeometry::paper_8gb())),
        ),
    ]
}

fn bench_row_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("row_ops");
    for (name, mut backend) in backends() {
        let words = backend.geometry().row_words();
        backend.install_row(RowId(0), &vec![0xDEAD_BEEF_u64; words]).unwrap();
        backend.install_row(RowId(1), &vec![0x1234_5678_u64; words]).unwrap();
        g.throughput(Throughput::Bytes((words * 8) as u64));

        g.bench_with_input(BenchmarkId::new("nand", name), &(), |b, _| {
            b.iter(|| backend.nand(black_box(RowId(0)), RowId(1), RowId(2)))
        });
        g.bench_with_input(BenchmarkId::new("xor", name), &(), |b, _| {
            b.iter(|| backend.xor(black_box(RowId(0)), RowId(1), RowId(3)))
        });
        g.bench_with_input(BenchmarkId::new("not", name), &(), |b, _| {
            b.iter(|| backend.not(black_box(RowId(0)), RowId(4)))
        });
        g.bench_with_input(BenchmarkId::new("copy", name), &(), |b, _| {
            b.iter(|| backend.copy(black_box(RowId(0)), RowId(5)))
        });
    }
    g.finish();
}

fn bench_row_store(c: &mut Criterion) {
    use felim::arch::engine::{minority_words, RowStore};
    let mut g = c.benchmark_group("row_store");
    let geometry = MemoryGeometry::paper_8gb();
    let mut store = RowStore::new(geometry);
    let words = geometry.row_words();
    store.write(RowId(0), &vec![0xAAAA_u64; words]).unwrap();
    store.write(RowId(1), &vec![0x5555_u64; words]).unwrap();
    store.write(RowId(2), &vec![0xF0F0_u64; words]).unwrap();
    g.throughput(Throughput::Bytes((words * 8) as u64));
    g.bench_function("combine3_minority_8kb", |b| {
        b.iter(|| {
            store.combine3(
                black_box(RowId(0)),
                RowId(1),
                RowId(2),
                RowId(3),
                minority_words,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_row_ops, bench_row_store);
criterion_main!(benches);
