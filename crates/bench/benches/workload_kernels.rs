//! Criterion benchmarks of the eight workload kernels (simulation +
//! verification throughput on the FeRAM backend).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use felim::arch::{FeramBackend, MemoryGeometry};
use felim::workloads::all_workloads;
use std::hint::black_box;

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    g.sample_size(10);
    for w in all_workloads() {
        g.bench_with_input(BenchmarkId::new("feram_16rows", w.name()), &(), |b, _| {
            b.iter(|| {
                let mut m = FeramBackend::new(MemoryGeometry::tiny());
                black_box(w.execute(&mut m, 16, 42))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
