//! End-to-end evaluation drivers for the paper's two system-level
//! results: the Fig 6 workload comparison and the Fig 7 thermal analysis.

use felim_arch::CommandClass;
use felim_ferro::{MfmParams, TemperatureModel};
use felim_thermal::{solve_steady_state, PowerMap, Stack, TemperatureField};
use felim_workloads::driver::{compare, geomean, Comparison};
use felim_workloads::{all_workloads, Workload};
use serde::{Deserialize, Serialize};

/// One row of the Fig 6 result table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Workload name.
    pub workload: String,
    /// DRAM energy at 1 GB, mJ.
    pub dram_energy_mj: f64,
    /// FeRAM energy at 1 GB, mJ.
    pub feram_energy_mj: f64,
    /// DRAM execution cycles at 1 GB.
    pub dram_cycles: u64,
    /// FeRAM execution cycles at 1 GB.
    pub feram_cycles: u64,
    /// DRAM/FeRAM energy ratio.
    pub energy_ratio: f64,
    /// DRAM/FeRAM cycle ratio.
    pub cycle_ratio: f64,
}

impl From<&Comparison> for Fig6Row {
    fn from(c: &Comparison) -> Self {
        Self {
            workload: c.workload.clone(),
            dram_energy_mj: c.dram.energy_mj,
            feram_energy_mj: c.feram.energy_mj,
            dram_cycles: c.dram.scaled.total_cycles(),
            feram_cycles: c.feram.scaled.total_cycles(),
            energy_ratio: c.energy_ratio(),
            cycle_ratio: c.cycle_ratio(),
        }
    }
}

/// Runs the full Fig 6 evaluation: all eight workloads, both
/// technologies, extrapolated to `workload_bytes` (the paper uses 1 GB),
/// simulating `sim_rows` rows per workload. The eight workloads are
/// fully independent simulations, so they fan out over the scoped
/// thread pool (`FELIM_THREADS` bounds the workers); every row depends
/// only on `(workload, sim_rows, workload_bytes, seed)` and rows come
/// back in Fig 6 order, so the result is bit-identical for any worker
/// count. Returns the rows plus the geometric-mean ratios
/// `(energy, cycles)`.
pub fn run_fig6(sim_rows: u64, workload_bytes: u64, seed: u64) -> (Vec<Fig6Row>, f64, f64) {
    let _span = felim_telemetry::span("fig6");
    let workloads = all_workloads();
    let rows: Vec<Fig6Row> = felim_exec::parallel_map(&workloads, |_, w| {
        let c = compare(w.as_ref(), sim_rows, workload_bytes, seed)
            .expect("fig6 workload must verify on a fault-free backend");
        Fig6Row::from(&c)
    });
    let ge = geomean(rows.iter().map(|r| r.energy_ratio));
    let gc = geomean(rows.iter().map(|r| r.cycle_ratio));
    (rows, ge, gc)
}

/// Result of the Fig 7 thermal analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Peak stack temperature, K.
    pub peak_k: f64,
    /// Peak temperature inside the memory layers, K.
    pub memory_peak_k: f64,
    /// Mean temperature per layer (bottom to top), K.
    pub layer_means_k: Vec<f64>,
    /// Memory self-power applied, W.
    pub memory_power_w: f64,
    /// Is the ferroelectric stable at the peak temperature (Pr retained
    /// above 90 % of its room-temperature value)?
    pub ferroelectric_stable: bool,
    /// Polarization scale factor at the peak temperature.
    pub ps_scale_at_peak: f64,
}

/// Runs the Fig 7 thermal scenario: a 5-layer vertical 2T-nC FeRAM die on
/// a 28 W compute die, with the memory self-heating taken from an actual
/// workload's simulated power (the paper uses the bitmap index query).
///
/// The workload's extrapolated energy/runtime gives the memory power,
/// spread over the active subarray footprint; the compute die injects its
/// idle power uniformly. The ferroelectric stability check closes the
/// loop back to the device model.
pub fn run_fig7(workload: &dyn Workload, grid: usize) -> Fig7Result {
    let _span = felim_telemetry::span("fig7");
    // Memory activity power from the FeRAM run of the workload.
    let result = felim_workloads::driver::run_workload(
        workload,
        felim_workloads::driver::Tech::Feram,
        64,
        1 << 30,
        42,
    )
    .expect("fig7 workload must verify on a fault-free backend");
    let memory_power_w = result.scaled.total_energy_nj() * 1e-9 / result.runtime_s.max(1e-9);

    let stack = Stack::feram_on_compute_die(5);
    let mut power = PowerMap::zeros(&stack, grid, grid);
    power.add_uniform_layer(stack.compute_layer(), 28.0);
    // The 1 GB working set occupies a quarter of the 8 GB stack (the
    // active-subarray footprint at subarray granularity).
    power.add_memory_activity(&stack, memory_power_w, 0.25);
    let field = solve_steady_state(&stack, &power, felim_thermal::AMBIENT_K);

    summarise_thermal(&stack, &field, memory_power_w)
}

fn summarise_thermal(stack: &Stack, field: &TemperatureField, memory_power_w: f64) -> Fig7Result {
    let peak_k = field.peak_kelvin();
    let memory_peak_k = stack
        .memory_layers()
        .iter()
        .map(|&l| field.layer_peak_kelvin(l))
        .fold(f64::MIN, f64::max);
    let layer_means_k = (0..stack.layer_count())
        .map(|l| field.layer_mean_kelvin(l))
        .collect();
    let temp_model = TemperatureModel::from_params(&MfmParams::fabricated());
    Fig7Result {
        peak_k,
        memory_peak_k,
        layer_means_k,
        memory_power_w,
        ferroelectric_stable: temp_model.is_stable_at(memory_peak_k),
        ps_scale_at_peak: temp_model.ps_scale(memory_peak_k),
    }
}

/// Convenience: total refresh share of a DRAM result (ablation A1).
pub fn refresh_energy_share(row: &felim_workloads::driver::WorkloadResult) -> f64 {
    row.scaled.energy_nj(CommandClass::Refresh) / row.scaled.total_energy_nj()
}

#[cfg(test)]
mod tests {
    use super::*;
    use felim_workloads::bitmap_index::BitmapIndex;
    use felim_workloads::xor_cipher::XorCipher;

    #[test]
    fn fig6_reproduces_the_headline_ratios() {
        // The paper: ~2.5× lower energy, ~2× higher performance.
        let (rows, ge, gc) = run_fig6(32, 1 << 30, 7);
        assert_eq!(rows.len(), 8);
        assert!(
            (2.2..3.0).contains(&ge),
            "geomean energy ratio {ge} outside the paper's band"
        );
        assert!(
            (1.7..2.4).contains(&gc),
            "geomean cycle ratio {gc} outside the paper's band"
        );
        for r in &rows {
            assert!(
                r.energy_ratio > 1.0,
                "{}: FeRAM must win energy",
                r.workload
            );
            assert!(r.cycle_ratio > 1.0, "{}: FeRAM must win cycles", r.workload);
        }
    }

    #[test]
    fn fig7_peak_matches_paper_and_stays_stable() {
        let r = run_fig7(&BitmapIndex, 32);
        // Paper: 351.88 K peak during the bitmap index query.
        assert!(
            (348.0..356.0).contains(&r.peak_k),
            "peak {} K vs paper 351.88 K",
            r.peak_k
        );
        assert!(
            r.ferroelectric_stable,
            "Pr must be retained at {}",
            r.memory_peak_k
        );
        assert!(r.ps_scale_at_peak > 0.9);
        // Memory sits above the compute die — cooler than the junction
        // but well above ambient.
        assert!(r.memory_peak_k <= r.peak_k);
        assert!(r.memory_peak_k > 330.0);
    }

    #[test]
    fn fig7_profile_consistent_across_workloads() {
        // "The thermal profile is consistent across all evaluated
        // workloads" — memory self-power is tiny next to the 28 W die.
        let a = run_fig7(&BitmapIndex, 16);
        let b = run_fig7(&XorCipher, 16);
        assert!((a.peak_k - b.peak_k).abs() < 2.0);
    }

    #[test]
    fn refresh_share_is_meaningful_but_not_dominant() {
        let r = felim_workloads::driver::run_workload(
            &XorCipher,
            felim_workloads::driver::Tech::Dram,
            32,
            1 << 30,
            7,
        )
        .unwrap();
        let share = refresh_energy_share(&r);
        assert!(share > 0.01 && share < 0.5, "refresh share {share}");
    }
}
