//! # felim — single-cell universal logic-in-memory using 2T-nC FeRAM
//!
//! A full-stack, from-scratch reproduction of *"Single-Cell Universal
//! Logic-in-Memory Using 2T-nC FeRAM: An Area and Energy-Efficient
//! Approach for Bulk Bitwise Computation"* (SOCC 2025): device physics →
//! circuit simulation → cell operations → memory architecture → workload
//! evaluation → 3-D integration and thermal analysis.
//!
//! ## The idea, in one paragraph
//!
//! A 2T-nC FeRAM gain cell stores `n` bits in ferroelectric capacitors
//! sharing one storage node. Its quasi-nondestructive readout (QNRO)
//! produces a *high* current for a stored `0` and a *low* current for a
//! stored `1` — the sense amplifier output is inherently the logical NOT,
//! with no extra circuitry. Activating three capacitors at once (TBA)
//! makes the storage-node voltage monotone in the number of stored zeros,
//! so one reference comparison computes the MINORITY function — which,
//! with a control bit, is NAND or NOR: universal logic in a single cell.
//! Scaled across rows this yields bulk-bitwise compute that beats
//! Ambit-style DRAM by ~2× in performance and ~2.5× in energy, stacks
//! vertically for 4.18× footprint reduction, and stays ferroelectrically
//! stable on top of a 28 W compute die (peak ≈ 352 K).
//!
//! ## Crate map
//!
//! | layer | crate (re-exported as) | what it provides |
//! |---|---|---|
//! | device | [`ferro`] | multi-domain MFM capacitor physics |
//! | circuit | [`spice`] | MNA transient simulator, MOSFETs, netlists |
//! | cell | [`cell`] | 2T-nC / DRAM / 1T-1C FeRAM cells + LiM ops |
//! | architecture | [`arch`] | Ambit-DRAM vs ACP-FeRAM PiM simulator |
//! | applications | [`workloads`] | the eight Fig 6 workloads, verified |
//! | thermal | [`thermal`] | HotSpot-class steady-state solver |
//! | this crate | [`lim`], [`area`], [`compare`], [`evaluation`] | the byte-level `LimArray` API, the Section V area/density model, the Fig 1 comparison, and the Fig 6/Fig 7 evaluation drivers |
//!
//! ## Quickstart — universal logic in one cell
//!
//! ```
//! use felim::cell::{Bit, ops::{logic_in_cell, LogicOp}};
//! use felim::cell::cell2tnc::{Cell2TnC, Cell2TnCParams};
//!
//! let mut cell = Cell2TnC::new(&Cell2TnCParams::default());
//! for (a, b) in [(Bit::Zero, Bit::Zero), (Bit::One, Bit::One)] {
//!     let nand = logic_in_cell(&mut cell, LogicOp::Nand, a, b);
//!     assert_eq!(nand, LogicOp::Nand.eval(a, b));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod compare;
pub mod evaluation;
pub mod lim;

/// Architecture simulator (re-export of `felim-arch`).
pub use felim_arch as arch;
/// Cell library (re-export of `felim-cell`).
pub use felim_cell as cell;
/// Deterministic parallel execution engine (re-export of `felim-exec`).
pub use felim_exec as exec;
/// Device-physics substrate (re-export of `felim-ferro`).
pub use felim_ferro as ferro;
/// Multi-tenant bulk-bitwise request service (re-export of
/// `felim-serve`): sharded backends, batching, backpressure.
pub use felim_serve as serve;
/// Circuit-simulation substrate (re-export of `felim-spice`).
pub use felim_spice as spice;
/// Observability layer (re-export of `felim-telemetry`). All metrics
/// compile to no-ops unless the workspace `telemetry` feature is on.
pub use felim_telemetry as telemetry;
/// Thermal solver (re-export of `felim-thermal`).
pub use felim_thermal as thermal;
/// Workload suite (re-export of `felim-workloads`).
pub use felim_workloads as workloads;

pub use area::AreaModel;
pub use compare::{technology_comparison, TechSummary};
pub use evaluation::{run_fig6, run_fig7, Fig6Row, Fig7Result};
pub use lim::{LimArray, LimError, Region};
