//! Section V: planar vs vertical 3-D integration area and density.
//!
//! Reported numbers (28 nm node, refs \[15\] and \[11\] of the paper):
//!
//! * planar 2T-1C FeRAM unit cell ≈ 30 F², each extra FE capacitor ≈ 1 F²,
//! * the paper's planar 2T-3C estimate scales the whole cell: ≈ 90 F²,
//! * the vertical 2T-3C string occupies ≈ 130 × 130 nm² regardless of `n`
//!   (capacitors stack in the BEOL between T_R and T_W),
//! * ⇒ footprint reduction ≈ 4.18× at n = 3,
//! * Section VII adds 50 % peripheral-circuitry overhead for power/area
//!   budgeting at subarray granularity.

use serde::{Deserialize, Serialize};

/// Area/density model for 2T-nC cells at a given technology node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Feature size F in nm (the paper evaluates F = 28 nm).
    pub feature_nm: f64,
    /// Planar 2T-1C base cell area in F².
    pub planar_2t1c_f2: f64,
    /// Side length of the vertical 2T-nC string footprint, in nm.
    pub vertical_side_nm: f64,
    /// Peripheral circuitry overhead fraction (0.5 = +50 %).
    pub peripheral_overhead: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::paper_28nm()
    }
}

impl AreaModel {
    /// The paper's 28 nm-node parameters.
    pub fn paper_28nm() -> Self {
        Self {
            feature_nm: 28.0,
            planar_2t1c_f2: 30.0,
            vertical_side_nm: 130.0,
            peripheral_overhead: 0.5,
        }
    }

    /// Planar 2T-nC cell area in F² (the paper's linear whole-cell
    /// scaling: `n`× the 2T-1C cell).
    pub fn planar_cell_f2(&self, n_caps: usize) -> f64 {
        self.planar_2t1c_f2 * n_caps as f64
    }

    /// Planar 2T-nC cell area in nm².
    pub fn planar_cell_nm2(&self, n_caps: usize) -> f64 {
        self.planar_cell_f2(n_caps) * self.feature_nm * self.feature_nm
    }

    /// Vertical 2T-nC string footprint in nm² (independent of `n` —
    /// capacitors stack in the BEOL).
    pub fn vertical_cell_nm2(&self) -> f64 {
        self.vertical_side_nm * self.vertical_side_nm
    }

    /// Footprint reduction of the vertical string vs the planar cell.
    ///
    /// ```
    /// let m = felim::AreaModel::paper_28nm();
    /// let r = m.footprint_reduction(3);
    /// assert!((r - 4.18).abs() < 0.02, "paper reports 4.18x, got {r}");
    /// ```
    pub fn footprint_reduction(&self, n_caps: usize) -> f64 {
        self.planar_cell_nm2(n_caps) / self.vertical_cell_nm2()
    }

    /// Storage density in bits/mm² for a vertical 2T-nC array
    /// (one bit per capacitor), including peripheral overhead.
    pub fn vertical_storage_density_bits_mm2(&self, n_caps: usize) -> f64 {
        let cell_mm2 = self.vertical_cell_nm2() * 1e-12 * (1.0 + self.peripheral_overhead);
        n_caps as f64 / cell_mm2
    }

    /// Planar storage density in bits/mm², including peripheral overhead.
    pub fn planar_storage_density_bits_mm2(&self, n_caps: usize) -> f64 {
        let cell_mm2 = self.planar_cell_nm2(n_caps) * 1e-12 * (1.0 + self.peripheral_overhead);
        n_caps as f64 / cell_mm2
    }

    /// LiM compute density: TBA-capable cells per mm² (each vertical
    /// string is one MINORITY gate).
    pub fn vertical_compute_density_cells_mm2(&self) -> f64 {
        1.0 / (self.vertical_cell_nm2() * 1e-12 * (1.0 + self.peripheral_overhead))
    }

    /// Die area (mm²) needed for `bytes` of storage in a vertical array
    /// with `n_caps` per cell and `layers` stacked memory dies.
    pub fn vertical_die_area_mm2(&self, bytes: u64, n_caps: usize, layers: usize) -> f64 {
        let bits = bytes as f64 * 8.0;
        bits / (self.vertical_storage_density_bits_mm2(n_caps) * layers as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> AreaModel {
        AreaModel::paper_28nm()
    }

    #[test]
    fn planar_areas_match_section_v() {
        let m = m();
        assert_eq!(m.planar_cell_f2(1), 30.0);
        assert_eq!(m.planar_cell_f2(3), 90.0);
        // 90 F² at F = 28 nm = 70 560 nm².
        assert!((m.planar_cell_nm2(3) - 70_560.0).abs() < 1.0);
    }

    #[test]
    fn vertical_footprint_and_reduction() {
        let m = m();
        assert_eq!(m.vertical_cell_nm2(), 16_900.0);
        let r = m.footprint_reduction(3);
        assert!((r - 4.175).abs() < 0.01, "paper: 4.18x, got {r}");
    }

    #[test]
    fn reduction_grows_with_n() {
        let m = m();
        // The vertical footprint is n-independent, so more capacitors
        // per cell mean a larger win over planar.
        assert!(m.footprint_reduction(6) > 2.0 * m.footprint_reduction(3) * 0.99);
    }

    #[test]
    fn densities_are_consistent() {
        let m = m();
        let v = m.vertical_storage_density_bits_mm2(3);
        let p = m.planar_storage_density_bits_mm2(3);
        assert!((v / p - m.footprint_reduction(3)).abs() < 1e-9);
        // ~118 Mb/mm² vertical at n = 3 with 50 % periphery.
        assert!((v / 1e6 - 118.3).abs() < 1.0, "v = {} Mb/mm²", v / 1e6);
    }

    #[test]
    fn die_area_for_2gb_stack() {
        let m = m();
        // The paper's Fig 7 memory die: 2 GB over 5 layers.
        let area = m.vertical_die_area_mm2(2 << 30, 3, 5);
        assert!(area > 10.0 && area < 60.0, "2 GB stack die = {area} mm²");
    }

    #[test]
    fn compute_density_matches_cell_footprint() {
        let m = m();
        let d = m.vertical_compute_density_cells_mm2();
        let expect = 1.0 / (16_900.0 * 1e-12 * 1.5);
        assert!((d - expect).abs() < 1.0);
    }
}
