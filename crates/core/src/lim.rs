//! `LimArray` — the byte-level public API for bulk logic-in-memory.
//!
//! Wraps the row-level [`felim_arch::BulkBackend`] machinery in the
//! interface a software stack would actually program against: allocate
//! byte regions, load data, issue region-wide bitwise operations, read
//! results, inspect cost. Regions are whole-row aligned internally; the
//! API hides rows entirely.
//!
//! ```
//! use felim::lim::LimArray;
//!
//! # fn main() -> Result<(), felim::lim::LimError> {
//! let mut lim = LimArray::feram_tiny();
//! let a = lim.alloc(4096)?;
//! let b = lim.alloc(4096)?;
//! let out = lim.alloc(4096)?;
//! lim.write(a, &vec![0b1100_1100u8; 4096])?;
//! lim.write(b, &vec![0b1010_1010u8; 4096])?;
//! lim.xor(a, b, out)?;
//! assert!(lim.read(out)?.iter().all(|&x| x == 0b0110_0110));
//! # Ok(())
//! # }
//! ```

use felim_arch::{
    ArchError, BulkBackend, DramBackend, ExecStats, FeramBackend, MemoryGeometry, RowId,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A byte region inside a [`LimArray`] (whole rows, opaque handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Region {
    first_row: u64,
    rows: u64,
    bytes: u64,
}

impl Region {
    /// Usable length in bytes.
    pub fn len(&self) -> u64 {
        self.bytes
    }

    /// Is the region empty?
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }
}

/// Errors from the byte-level LiM API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LimError {
    /// The array is out of rows.
    OutOfMemory {
        /// Rows requested.
        requested_rows: u64,
        /// Rows remaining.
        available_rows: u64,
    },
    /// A buffer length does not match the region it targets.
    LengthMismatch {
        /// Region length in bytes.
        region_bytes: u64,
        /// Supplied buffer length in bytes.
        buffer_bytes: u64,
    },
    /// Two regions participating in one operation differ in size.
    RegionSizeMismatch {
        /// First region length.
        a_bytes: u64,
        /// Second region length.
        b_bytes: u64,
    },
    /// The underlying memory reported a fault (out-of-range row,
    /// uncorrectable write, exhausted spares, …).
    Arch(ArchError),
}

impl From<ArchError> for LimError {
    fn from(e: ArchError) -> Self {
        LimError::Arch(e)
    }
}

impl fmt::Display for LimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimError::OutOfMemory {
                requested_rows,
                available_rows,
            } => write!(
                f,
                "out of memory: requested {requested_rows} rows, {available_rows} available"
            ),
            LimError::LengthMismatch {
                region_bytes,
                buffer_bytes,
            } => write!(
                f,
                "buffer length {buffer_bytes} does not match region length {region_bytes}"
            ),
            LimError::RegionSizeMismatch { a_bytes, b_bytes } => {
                write!(f, "region sizes differ: {a_bytes} vs {b_bytes}")
            }
            LimError::Arch(e) => write!(f, "memory fault: {e}"),
        }
    }
}

impl std::error::Error for LimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LimError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

/// A logic-in-memory array with a byte-level interface.
pub struct LimArray {
    backend: Box<dyn BulkBackend>,
    next_row: u64,
    /// Rows at the top reserved by the backend for compute/scratch.
    reserved_top_rows: u64,
}

impl fmt::Debug for LimArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LimArray")
            .field("tech", &self.backend.tech_name())
            .field("next_row", &self.next_row)
            .finish()
    }
}

impl LimArray {
    /// A 2T-nC FeRAM array over the paper's 8 GB geometry.
    pub fn feram_8gb() -> Self {
        Self::from_backend(Box::new(FeramBackend::default_8gb()))
    }

    /// A small FeRAM array for tests and examples (1 MB).
    pub fn feram_tiny() -> Self {
        Self::from_backend(Box::new(FeramBackend::new(MemoryGeometry::tiny())))
    }

    /// A DRAM (Ambit) array over the paper's 8 GB geometry.
    pub fn dram_8gb() -> Self {
        Self::from_backend(Box::new(DramBackend::default_8gb()))
    }

    /// A small DRAM array for tests and examples (1 MB).
    pub fn dram_tiny() -> Self {
        Self::from_backend(Box::new(DramBackend::new(MemoryGeometry::tiny())))
    }

    /// Wraps an arbitrary backend.
    pub fn from_backend(backend: Box<dyn BulkBackend>) -> Self {
        Self {
            backend,
            next_row: 0,
            reserved_top_rows: 16,
        }
    }

    /// Technology name of the underlying backend.
    pub fn tech_name(&self) -> &'static str {
        self.backend.tech_name()
    }

    /// Row size in bytes (allocation granularity).
    pub fn row_bytes(&self) -> u64 {
        self.backend.geometry().row_bytes
    }

    /// Remaining allocatable bytes.
    pub fn available_bytes(&self) -> u64 {
        let total = self.backend.geometry().total_rows() - self.reserved_top_rows;
        (total - self.next_row) * self.row_bytes()
    }

    /// Allocates a region of at least `bytes` (rounded up to whole rows).
    ///
    /// # Errors
    ///
    /// [`LimError::OutOfMemory`] when the array is exhausted.
    pub fn alloc(&mut self, bytes: u64) -> Result<Region, LimError> {
        let rows = self.backend.geometry().rows_for_bytes(bytes).max(1);
        let limit = self.backend.geometry().total_rows() - self.reserved_top_rows;
        if self.next_row + rows > limit {
            return Err(LimError::OutOfMemory {
                requested_rows: rows,
                available_rows: limit - self.next_row,
            });
        }
        let region = Region {
            first_row: self.next_row,
            rows,
            bytes,
        };
        self.next_row += rows;
        Ok(region)
    }

    fn check_len(&self, region: Region, buffer_bytes: u64) -> Result<(), LimError> {
        if region.bytes != buffer_bytes {
            return Err(LimError::LengthMismatch {
                region_bytes: region.bytes,
                buffer_bytes,
            });
        }
        Ok(())
    }

    fn check_same_size(a: Region, b: Region) -> Result<(), LimError> {
        if a.bytes != b.bytes {
            return Err(LimError::RegionSizeMismatch {
                a_bytes: a.bytes,
                b_bytes: b.bytes,
            });
        }
        Ok(())
    }

    fn row_words(&self) -> usize {
        self.backend.geometry().row_words()
    }

    /// Writes `data` into the region (charged as host row writes).
    ///
    /// # Errors
    ///
    /// [`LimError::LengthMismatch`] if `data.len() != region.len()`.
    pub fn write(&mut self, region: Region, data: &[u8]) -> Result<(), LimError> {
        self.check_len(region, data.len() as u64)?;
        self.for_each_row_data(region, data, |backend, row, words| {
            backend.write_row(row, words)
        })
    }

    /// Installs pre-resident data (no cost — see
    /// [`BulkBackend::install_row`]).
    ///
    /// # Errors
    ///
    /// [`LimError::LengthMismatch`] if `data.len() != region.len()`.
    pub fn install(&mut self, region: Region, data: &[u8]) -> Result<(), LimError> {
        self.check_len(region, data.len() as u64)?;
        self.for_each_row_data(region, data, |backend, row, words| {
            backend.install_row(row, words)
        })
    }

    fn for_each_row_data(
        &mut self,
        region: Region,
        data: &[u8],
        mut f: impl FnMut(&mut dyn BulkBackend, RowId, &[u64]) -> Result<(), ArchError>,
    ) -> Result<(), LimError> {
        let row_bytes = self.row_bytes() as usize;
        let row_words = self.row_words();
        for r in 0..region.rows {
            let start = (r as usize) * row_bytes;
            let end = (start + row_bytes).min(data.len());
            let mut words = vec![0u64; row_words];
            for (i, chunk_byte) in data[start..end].iter().enumerate() {
                words[i / 8] |= (*chunk_byte as u64) << (8 * (i % 8));
            }
            f(self.backend.as_mut(), RowId(region.first_row + r), &words)?;
        }
        Ok(())
    }

    /// Reads the region back as bytes.
    ///
    /// # Errors
    ///
    /// [`LimError::Arch`] if the underlying memory faults.
    pub fn read(&mut self, region: Region) -> Result<Vec<u8>, LimError> {
        let row_bytes = self.row_bytes() as usize;
        let mut out = Vec::with_capacity(region.bytes as usize);
        for r in 0..region.rows {
            let words = self.backend.read_row(RowId(region.first_row + r))?;
            for i in 0..row_bytes {
                if out.len() == region.bytes as usize {
                    break;
                }
                out.push(((words[i / 8] >> (8 * (i % 8))) & 0xFF) as u8);
            }
        }
        Ok(out)
    }

    /// Region-wide `dst = a AND b`.
    ///
    /// # Errors
    ///
    /// [`LimError::RegionSizeMismatch`] unless all regions are equal-sized.
    pub fn and(&mut self, a: Region, b: Region, dst: Region) -> Result<(), LimError> {
        self.binary_op(a, b, dst, |m, x, y, d| m.and(x, y, d))
    }

    /// Region-wide `dst = a OR b`.
    ///
    /// # Errors
    ///
    /// As for [`LimArray::and`].
    pub fn or(&mut self, a: Region, b: Region, dst: Region) -> Result<(), LimError> {
        self.binary_op(a, b, dst, |m, x, y, d| m.or(x, y, d))
    }

    /// Region-wide `dst = a XOR b`.
    ///
    /// # Errors
    ///
    /// As for [`LimArray::and`].
    pub fn xor(&mut self, a: Region, b: Region, dst: Region) -> Result<(), LimError> {
        self.binary_op(a, b, dst, |m, x, y, d| m.xor(x, y, d))
    }

    /// Region-wide `dst = NOT(a AND b)`.
    ///
    /// # Errors
    ///
    /// As for [`LimArray::and`].
    pub fn nand(&mut self, a: Region, b: Region, dst: Region) -> Result<(), LimError> {
        self.binary_op(a, b, dst, |m, x, y, d| m.nand(x, y, d))
    }

    /// Region-wide `dst = NOT(a OR b)`.
    ///
    /// # Errors
    ///
    /// As for [`LimArray::and`].
    pub fn nor(&mut self, a: Region, b: Region, dst: Region) -> Result<(), LimError> {
        self.binary_op(a, b, dst, |m, x, y, d| m.nor(x, y, d))
    }

    /// Region-wide `dst = NOT src`.
    ///
    /// # Errors
    ///
    /// [`LimError::RegionSizeMismatch`] unless both regions are equal.
    pub fn not(&mut self, src: Region, dst: Region) -> Result<(), LimError> {
        Self::check_same_size(src, dst)?;
        for r in 0..src.rows {
            self.backend
                .not(RowId(src.first_row + r), RowId(dst.first_row + r))?;
        }
        Ok(())
    }

    /// Region copy.
    ///
    /// # Errors
    ///
    /// [`LimError::RegionSizeMismatch`] unless both regions are equal.
    pub fn copy(&mut self, src: Region, dst: Region) -> Result<(), LimError> {
        Self::check_same_size(src, dst)?;
        for r in 0..src.rows {
            self.backend
                .copy(RowId(src.first_row + r), RowId(dst.first_row + r))?;
        }
        Ok(())
    }

    fn binary_op(
        &mut self,
        a: Region,
        b: Region,
        dst: Region,
        op: impl Fn(&mut dyn BulkBackend, RowId, RowId, RowId) -> Result<(), ArchError>,
    ) -> Result<(), LimError> {
        Self::check_same_size(a, b)?;
        Self::check_same_size(a, dst)?;
        for r in 0..a.rows {
            op(
                self.backend.as_mut(),
                RowId(a.first_row + r),
                RowId(b.first_row + r),
                RowId(dst.first_row + r),
            )?;
        }
        Ok(())
    }

    /// Cost statistics accumulated so far.
    pub fn stats(&self) -> &ExecStats {
        self.backend.stats()
    }

    /// Finalises background costs (DRAM refresh) and returns the stats.
    pub fn finish(&mut self) -> ExecStats {
        self.backend.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize, f: impl Fn(usize) -> u8) -> Vec<u8> {
        (0..len).map(f).collect()
    }

    #[test]
    fn write_read_roundtrip_across_rows() {
        let mut lim = LimArray::feram_tiny();
        // 2.5 rows worth of data (rows are 1 KiB in the tiny geometry).
        let bytes = 2560usize;
        let region = lim.alloc(bytes as u64).unwrap();
        let data = pattern(bytes, |i| (i * 7 + 3) as u8);
        lim.write(region, &data).unwrap();
        assert_eq!(lim.read(region).unwrap(), data);
    }

    #[test]
    fn all_ops_match_byte_oracle() {
        for mut lim in [LimArray::feram_tiny(), LimArray::dram_tiny()] {
            let len = 1024usize;
            let a = lim.alloc(len as u64).unwrap();
            let b = lim.alloc(len as u64).unwrap();
            let d = lim.alloc(len as u64).unwrap();
            let av = pattern(len, |i| (i * 31) as u8);
            let bv = pattern(len, |i| (i * 17 + 5) as u8);
            lim.install(a, &av).unwrap();
            lim.install(b, &bv).unwrap();

            lim.and(a, b, d).unwrap();
            assert!(lim
                .read(d)
                .unwrap()
                .iter()
                .zip(av.iter().zip(&bv))
                .all(|(&got, (&x, &y))| got == x & y));
            lim.or(a, b, d).unwrap();
            assert!(lim
                .read(d)
                .unwrap()
                .iter()
                .zip(av.iter().zip(&bv))
                .all(|(&got, (&x, &y))| got == x | y));
            lim.xor(a, b, d).unwrap();
            assert!(lim
                .read(d)
                .unwrap()
                .iter()
                .zip(av.iter().zip(&bv))
                .all(|(&got, (&x, &y))| got == x ^ y));
            lim.nand(a, b, d).unwrap();
            assert!(lim
                .read(d)
                .unwrap()
                .iter()
                .zip(av.iter().zip(&bv))
                .all(|(&got, (&x, &y))| got == !(x & y)));
            lim.nor(a, b, d).unwrap();
            assert!(lim
                .read(d)
                .unwrap()
                .iter()
                .zip(av.iter().zip(&bv))
                .all(|(&got, (&x, &y))| got == !(x | y)));
            lim.not(a, d).unwrap();
            assert!(lim
                .read(d)
                .unwrap()
                .iter()
                .zip(&av)
                .all(|(&got, &x)| got == !x));
            lim.copy(a, d).unwrap();
            assert_eq!(lim.read(d).unwrap(), av);
        }
    }

    #[test]
    fn feram_cheaper_than_dram_through_the_api() {
        let run = |mut lim: LimArray| {
            let a = lim.alloc(2048).unwrap();
            let b = lim.alloc(2048).unwrap();
            let d = lim.alloc(2048).unwrap();
            lim.install(a, &vec![1u8; 2048]).unwrap();
            lim.install(b, &vec![2u8; 2048]).unwrap();
            lim.xor(a, b, d).unwrap();
            lim.finish().total_energy_nj()
        };
        let feram = run(LimArray::feram_tiny());
        let dram = run(LimArray::dram_tiny());
        assert!(dram > 2.0 * feram, "{dram} vs {feram}");
    }

    #[test]
    fn allocation_exhaustion_is_reported() {
        let mut lim = LimArray::feram_tiny();
        // Tiny array: 1024 rows, 16 reserved.
        let available = lim.available_bytes();
        assert!(lim.alloc(available).is_ok());
        let err = lim.alloc(1).unwrap_err();
        assert!(matches!(err, LimError::OutOfMemory { .. }));
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn length_and_size_mismatches_are_rejected() {
        let mut lim = LimArray::feram_tiny();
        let a = lim.alloc(1024).unwrap();
        let b = lim.alloc(2048).unwrap();
        assert!(matches!(
            lim.write(a, &[0u8; 100]),
            Err(LimError::LengthMismatch { .. })
        ));
        let d = lim.alloc(1024).unwrap();
        assert!(matches!(
            lim.and(a, b, d),
            Err(LimError::RegionSizeMismatch { .. })
        ));
        assert!(matches!(
            lim.not(a, b),
            Err(LimError::RegionSizeMismatch { .. })
        ));
    }

    #[test]
    fn backend_faults_surface_as_lim_errors() {
        use std::error::Error;
        let arch_err = ArchError::RowOutOfRange { row: 99, rows: 10 };
        let lim_err: LimError = arch_err.clone().into();
        assert!(matches!(lim_err, LimError::Arch(_)));
        assert!(lim_err.to_string().contains("memory fault"));
        assert_eq!(lim_err.source().unwrap().to_string(), arch_err.to_string());
    }

    #[test]
    fn partial_row_regions_read_exact_length() {
        let mut lim = LimArray::feram_tiny();
        let r = lim.alloc(100).unwrap();
        assert_eq!(r.len(), 100);
        assert!(!r.is_empty());
        lim.write(r, &pattern(100, |i| i as u8)).unwrap();
        let back = lim.read(r).unwrap();
        assert_eq!(back.len(), 100);
        assert_eq!(back[99], 99);
    }
}
