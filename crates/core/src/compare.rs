//! Fig 1: the qualitative technology comparison, *derived from the
//! models* rather than asserted — each row of the table is computed by
//! probing the corresponding cell implementation.

use felim_cell::cell2tnc::{Cell2TnC, Cell2TnCParams};
use felim_cell::dram::{DramCell, DramParams};
use felim_cell::feram1t1c::Feram1t1c;
use felim_cell::Bit;
use felim_ferro::{MfmParams, RetentionModel};
use serde::{Deserialize, Serialize};

/// One technology row of the Fig 1 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechSummary {
    /// Technology name.
    pub name: String,
    /// Does the cell retain data without refresh?
    pub non_volatile: bool,
    /// Does a read destroy the stored state?
    pub destructive_read: bool,
    /// Does the sensing invert (output = NOT stored)?
    pub inverting_sense: bool,
    /// Can the cell compute logic in memory?
    pub logic_in_memory: bool,
    /// Bits stored per access-transistor pair (density proxy).
    pub bits_per_cell: usize,
    /// Relative bulk-bitwise operation energy (DRAM ≡ 1.0; lower wins).
    pub relative_op_energy: f64,
    /// Unrefreshed data lifetime at 300 K, in seconds (90 % criterion;
    /// the DRAM figure is its refresh interval).
    pub retention_s: f64,
}

/// Computes the Fig 1 comparison by probing each cell model.
pub fn technology_comparison() -> Vec<TechSummary> {
    // --- 1T-1C DRAM ---
    let mut dram = DramCell::new(&DramParams::default());
    dram.write(Bit::One);
    let (read, _) = dram.read();
    let dram_destructive = dram.needs_restore();
    let dram_volatile = !dram.survives_unrefreshed(Bit::One, 10.0);
    // Ambit AND: 4 AAPs (Section VI constants).
    let dram_op_energy = 4.0 * (2.0 * 22.6 + 0.32);
    let dram_inverting = read == !Bit::One;

    // --- 1T-1C FeRAM ---
    let mut fe1t1c = Feram1t1c::new(&MfmParams::fabricated());
    fe1t1c.write(Bit::Zero);
    let r = fe1t1c.read();
    let fe1t1c_destructive = r.destroyed;
    let fe1t1c_inverting = r.sensed == !Bit::Zero;
    // Destructive sensing: every op pays full write-back switching —
    // activate-class at DRAM-like energy, plus the restore write.
    let fe1t1c_op_energy = 4.0 * (2.0 * 22.6 + 0.32);

    // --- 2T-nC FeRAM ---
    let mut cell = Cell2TnC::new(&Cell2TnCParams::default());
    cell.write(0, Bit::Zero);
    let rr = cell.qnro_read(0);
    let qnro_inverting = rr.sensed == !Bit::Zero;
    let qnro_destructive = cell.stored(0) != Some(Bit::Zero);
    // ACP pair for a NAND (Section VI constants).
    let feram_op_energy = 2.0 * (16.6 + 22.6 + 0.32);

    vec![
        TechSummary {
            name: "1T-1C DRAM".into(),
            non_volatile: !dram_volatile,
            destructive_read: dram_destructive,
            inverting_sense: dram_inverting,
            logic_in_memory: true, // via TRA + DCC (Ambit)
            bits_per_cell: 1,
            relative_op_energy: 1.0,
            retention_s: 64e-3,
        },
        TechSummary {
            name: "1T-1C FeRAM".into(),
            non_volatile: true,
            destructive_read: fe1t1c_destructive,
            inverting_sense: fe1t1c_inverting,
            logic_in_memory: true,
            bits_per_cell: 1,
            relative_op_energy: fe1t1c_op_energy / dram_op_energy,
            retention_s: RetentionModel::hfo2_default().retention_time_s(0.9, 300.0),
        },
        TechSummary {
            name: "2T-nC FeRAM".into(),
            non_volatile: true,
            destructive_read: qnro_destructive,
            inverting_sense: qnro_inverting,
            logic_in_memory: true,
            bits_per_cell: 3,
            relative_op_energy: feram_op_energy / dram_op_energy,
            retention_s: RetentionModel::hfo2_default().retention_time_s(0.9, 300.0),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_rows_match_the_paper_table() {
        let rows = technology_comparison();
        assert_eq!(rows.len(), 3);
        let dram = &rows[0];
        let fe1 = &rows[1];
        let fe2 = &rows[2];

        // Data retention column.
        assert!(!dram.non_volatile);
        assert!(fe1.non_volatile);
        assert!(fe2.non_volatile);

        // Sensing method column.
        assert!(dram.destructive_read);
        assert!(fe1.destructive_read);
        assert!(!fe2.destructive_read, "QNRO is quasi-nondestructive");

        // Only QNRO inverts on sensing.
        assert!(!dram.inverting_sense);
        assert!(!fe1.inverting_sense);
        assert!(fe2.inverting_sense);

        // All three support LiM; 2T-nC has enhanced density.
        assert!(rows.iter().all(|r| r.logic_in_memory));
        assert!(fe2.bits_per_cell > dram.bits_per_cell);

        // Bulk-bitwise energy: low for 2T-nC, high for the others.
        assert!(fe2.relative_op_energy < 0.6);
        assert!(dram.relative_op_energy >= 0.99);
        assert!(fe1.relative_op_energy >= 0.99);

        // Retention: DRAM holds data for one 64 ms refresh window; the
        // ferroelectric cells hold it for years.
        assert!(fe2.retention_s / dram.retention_s > 1e6);
    }
}
