//! Dumps the Fig 6 table (cycles, energy, geomeans) for the golden seed,
//! in the exact layout `tests/cost_regression.rs` pins. Run after any
//! deliberate cost-model change to regenerate the golden constants.

use felim::evaluation::run_fig6;

fn main() {
    let gb: u64 = 1 << 30;
    let (rows, e_geo, c_geo) = run_fig6(64, gb, 42);
    println!("// (name, dram_cycles, feram_cycles)");
    for r in &rows {
        println!("(\"{}\", {}, {}),", r.workload, r.dram_cycles, r.feram_cycles);
    }
    println!("// (dram_energy_mj, feram_energy_mj)");
    for r in &rows {
        println!("({:.2}, {:.2}),", r.dram_energy_mj, r.feram_energy_mj);
    }
    println!("// geomeans: energy {e_geo:.4}  cycles {c_geo:.4}");
}
