#!/usr/bin/env bash
# Checks that every intra-repo markdown link target exists.
#
#   ./scripts/check_links.sh docs/HANDBOOK.md README.md ...
#
# For each `[text](target)` in the given files, targets that are not
# absolute URLs (http/https/mailto) or pure in-page anchors must resolve
# to a file or directory, relative to the linking file's directory (or
# to the repo root as a fallback, for links written root-relative).
# Exits non-zero listing every dead link.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
status=0

for file in "$@"; do
  if [ ! -f "$root/$file" ]; then
    echo "check_links: no such file: $file" >&2
    status=1
    continue
  fi
  dir="$(dirname "$root/$file")"
  # Extract link targets: [...](target), dropping any #fragment suffix.
  grep -o '\[[^]]*\]([^)]*)' "$root/$file" | sed 's/.*(\(.*\))/\1/' |
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$root/$path" ]; then
      echo "$file: dead link -> $target"
    fi
  done > /tmp/check_links_out.$$ || true
  if [ -s /tmp/check_links_out.$$ ]; then
    cat /tmp/check_links_out.$$
    status=1
  fi
  rm -f /tmp/check_links_out.$$
done

if [ "$status" -eq 0 ]; then
  echo "check_links: all intra-repo links resolve"
fi
exit "$status"
