//! Quickstart: universal logic in a single 2T-nC FeRAM cell.
//!
//! Demonstrates the paper's core claims at the cell level:
//! QNRO sensing inverts (free NOT), and triple-bit activation computes
//! MINORITY — NAND with control bit 0, NOR with control bit 1.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Built with `--features felim/telemetry` it also dumps a JSON report
//! of everything the instrumented stack recorded (spans, counters,
//! histograms) — see the telemetry quickstart in README.md.

use felim::cell::cell2tnc::{pattern_bits, Cell2TnC, Cell2TnCParams};
use felim::cell::ops::{logic_in_cell, not_in_cell, LogicOp};
use felim::cell::Bit;
use felim::telemetry;

fn main() {
    let _span = telemetry::span("quickstart");
    let params = Cell2TnCParams::default();
    let mut cell = Cell2TnC::new(&params);

    println!("== QNRO inverting read (bitwise NOT, no extra circuitry) ==");
    for input in [Bit::Zero, Bit::One] {
        let output = not_in_cell(&mut cell, 0, input);
        let survived = cell.stored(0) == Some(input);
        println!("  stored {input} -> sensed {output}   (state preserved after read: {survived})");
    }

    println!();
    println!("== TBA NAND / NOR via the MINORITY function ==");
    for op in [LogicOp::Nand, LogicOp::Nor] {
        println!("  {op} (control bit C = {}):", op.control_bit());
        for (a, b) in [
            (Bit::Zero, Bit::Zero),
            (Bit::Zero, Bit::One),
            (Bit::One, Bit::Zero),
            (Bit::One, Bit::One),
        ] {
            let out = logic_in_cell(&mut cell, op, a, b);
            assert_eq!(out, op.eval(a, b), "cell must match boolean truth");
            println!("    {a} {op} {b} = {out}");
        }
    }

    println!();
    println!("== All eight TBA states (Fig 3(e,f)): RSL current vs pattern ==");
    println!("  A B C | V_int (V) | I_RSL (A)   | MIN");
    for v in 0..8u8 {
        let mut c = Cell2TnC::new(&params);
        c.write_bits(&pattern_bits(v));
        let r = c.tba();
        let bits = pattern_bits(v);
        println!(
            "  {} {} {} |  {:.4}   | {:.3e} |  {}",
            bits[0], bits[1], bits[2], r.levels.v_int, r.levels.rsl_current_a, r.sensed
        );
    }
    println!();
    println!("High current <=> minority of ones: one reference comparison");
    println!("between the '001' and '011' levels implements universal logic.");

    // With the telemetry feature on, a quick Monte-Carlo margin study
    // populates the registry and the whole report dumps as JSON. In the
    // default (no-op) build the snapshot is empty and nothing prints.
    _span.end();
    if telemetry::enabled() {
        let _ = felim::cell::monte_carlo_margin(
            &params,
            felim::ferro::VariationSpec::typical(),
            0.04,
            200,
            42,
        );
        println!();
        println!("== telemetry report (--features felim/telemetry) ==");
        println!("{}", telemetry::snapshot().to_json());
    }
}
