//! Text-netlist playground: the 2T-nC QNRO read expressed as a classic
//! SPICE deck, parsed and simulated — no Rust circuit-building API
//! needed. Compares the stored-'0' and stored-'1' read responses.
//!
//! Run with: `cargo run --release --example netlist_playground`

use felim::ferro::Polarity;
use felim::spice::parse_netlist;

const DECK: &str = "\
* 2T-nC QNRO read testbench (text form)
VWBL0 wbl0 0 PULSE(0 0.55 50n 1n 1n 200n 0)
VRBL  rbl  0 DC 0.7
VRSL  rsl  0 DC 0
C1    sn   0 3f
M1    rbl  sn rsl NMOS
XFE0  wbl0 sn FECAP SCALED
.ic v(sn)=0
.tran 5n 400n
.end
";

fn main() {
    println!("{DECK}");

    let mut results = Vec::new();
    for state in [Polarity::Down, Polarity::Up] {
        let parsed = parse_netlist(DECK).expect("deck parses");
        let spec = parsed.transient.expect("deck has .tran");
        let mut ckt = parsed.circuit;
        ckt.fe_capacitor_mut("XFE0").unwrap().write_ideal(state);

        let trace = ckt.transient(&spec).expect("transient converges");
        let v_sn = trace.voltage_at("sn", 200e-9).unwrap();
        let i_rsl = trace.element_current_at("M1", 200e-9).unwrap();
        println!("stored {state}: V(sn) = {v_sn:.4} V, I(RSL) = {i_rsl:.3e} A");
        results.push(i_rsl);
    }

    let ratio = results[0] / results[1];
    println!("\nread-current contrast I('0')/I('1') = {ratio:.1}x");
    println!("(high current for '0' — the inverting QNRO sense, from a text deck)");
    assert!(ratio > 3.0);
}
