//! Thermal profile of the 3-D FeRAM-on-compute-die stack (Fig 7).
//!
//! Builds the (n+2)-layer vertical 2T-nC FeRAM stack on a 28 W edge-TPU
//! class compute die, applies the bitmap-index-query memory activity,
//! solves the steady state, prints the per-layer profile, and closes the
//! loop with the ferroelectric stability check.
//!
//! Run with: `cargo run --release --example stacked_thermal`

use felim::evaluation::run_fig7;
use felim::thermal::{solve_transient, PowerMap, Stack};
use felim::workloads::bitmap_index::BitmapIndex;

fn main() {
    println!("3-D SoC: 5-layer vertical 2T-nC FeRAM on a 28 W compute die");
    println!("ambient 300 K, natural-convection package, subarray-granular power\n");

    let r = run_fig7(&BitmapIndex, 32);

    println!(
        "memory self-power from bitmap index query: {:.3} W",
        r.memory_power_w
    );
    println!(
        "steady-state peak temperature: {:.2} K (paper: 351.88 K)\n",
        r.peak_k
    );

    println!("layer profile (bottom -> top):");
    let labels = [
        "compute-die",
        "tim",
        "feram-l0",
        "bond-0",
        "feram-l1",
        "bond-1",
        "feram-l2",
        "bond-2",
        "feram-l3",
        "bond-3",
        "feram-l4",
        "spreader",
    ];
    for (i, t) in r.layer_means_k.iter().enumerate() {
        let name = labels.get(i).copied().unwrap_or("layer");
        let bar_len = ((t - 300.0) * 1.2) as usize;
        let bar: String = std::iter::repeat_n('#', bar_len).collect();
        println!("  {name:<12} {t:7.2} K  {bar}");
    }

    // How fast does the stack get there? (transient heating)
    let stack = Stack::feram_on_compute_die(5);
    let mut power = PowerMap::zeros(&stack, 16, 16);
    power.add_uniform_layer(stack.compute_layer(), 28.0);
    let transient = solve_transient(&stack, &power, 300.0, 3.0, 0.02, 25);
    println!();
    println!("transient heating from a cold start:");
    for p in transient.trajectory.iter().take(5) {
        println!("  t = {:5.2} s : peak {:7.2} K", p.time_s, p.peak_k);
    }
    if let Some(tau) = transient.tau_63_s {
        println!("  thermal time constant (63 % of steady rise): {tau:.2} s");
    }

    println!();
    println!("memory peak: {:.2} K", r.memory_peak_k);
    println!(
        "ferroelectric polarization retained: {:.1} % of the 300 K value",
        r.ps_scale_at_peak * 100.0
    );
    println!(
        "ferroelectric stability at operating point: {}",
        if r.ferroelectric_stable {
            "CONFIRMED"
        } else {
            "VIOLATED"
        }
    );
}
