//! Lane-parallel arithmetic in memory: 8192 six-bit additions at once.
//!
//! Goes beyond the paper's pure-bitwise workloads to show the bulk engine
//! is computationally complete for arithmetic: a bit-sliced ripple-carry
//! adder built entirely from TBA NAND/NOR primitives adds one integer per
//! bit-lane of the row, across every lane simultaneously.
//!
//! Run with: `cargo run --release --example inmem_adder`

use felim::arch::{BulkBackend, FeramBackend, MemoryGeometry, RowId};
use felim::workloads::bitserial::{add_lane_vectors, LaneVector};

fn main() {
    let mut mem = FeramBackend::new(MemoryGeometry::tiny());
    let lanes = mem.geometry().row_words() * 64;
    println!("lane-parallel adder: {lanes} independent 6-bit additions per op\n");

    let a = LaneVector::new((10..16).map(RowId).collect());
    let b = LaneVector::new((20..26).map(RowId).collect());
    let sum = LaneVector::new((30..37).map(RowId).collect());

    // Per-lane operands: a ramp against a pseudo-random pattern.
    let av: Vec<u64> = (0..lanes as u64).map(|i| i % 64).collect();
    let bv: Vec<u64> = (0..lanes as u64).map(|i| (i * 37 + 11) % 64).collect();
    a.load(&mut mem, &av).unwrap();
    b.load(&mut mem, &bv).unwrap();

    let before = mem.stats().clone();
    let work = [RowId(40), RowId(41), RowId(42), RowId(43)];
    add_lane_vectors(&mut mem, &a, &b, &sum, &work).unwrap();
    let cycles = mem.stats().total_cycles() - before.total_cycles();
    let energy = (mem.stats().total_energy_nj() - before.total_energy_nj()) * 1e-6;

    let sv = sum.read(&mut mem).unwrap();
    for lane in 0..lanes {
        assert_eq!(sv[lane], av[lane] + bv[lane], "lane {lane}");
    }
    println!("all {lanes} sums verified against scalar arithmetic");
    println!("cost: {cycles} cycles, {energy:.4} mJ for the whole batch");
    println!(
        "      = {:.4} cycles and {:.2} pJ per addition",
        cycles as f64 / lanes as f64,
        energy * 1e9 / lanes as f64
    );
    println!("\nsample lanes:");
    for lane in [0usize, 100, 1000, lanes - 1] {
        println!(
            "  lane {lane:>5}: {:>2} + {:>2} = {:>2}",
            av[lane], bv[lane], sv[lane]
        );
    }
}
