//! Reliability corner report for a 2T-nC FeRAM deployment.
//!
//! Pulls together the four reliability models — endurance, retention,
//! device variation / sense margin, and QNRO disturb/wear — into the
//! summary a memory architect would want before taping out.
//!
//! Run with: `cargo run --release --example reliability_report`

use felim::arch::{DegradationPolicy, FaultSpec, FeramBackend, MemoryGeometry};
use felim::cell::cell2tnc::Cell2TnCParams;
use felim::cell::margin::monte_carlo_margin;
use felim::ferro::{EnduranceRun, MfmParams, RetentionModel, VariationSpec};
use felim::workloads::driver::{campaign_silent_corruptions, run_fault_campaign};
use felim::workloads::xor_cipher::XorCipher;
use felim::workloads::Workload;

fn main() {
    println!("=== 2T-nC FeRAM reliability corner report ===\n");
    let params = MfmParams::fabricated();

    // 1. Endurance (Fig 4(f) model).
    let run = EnduranceRun::new(&params);
    let results = run.run(&EnduranceRun::log_checkpoints(8));
    let limit = run.endurance_limit(&results).unwrap_or(0.0);
    println!("[endurance]");
    println!(
        "  write-cycle limit (sense floor {} µC/cm²): 10^{:.1}",
        run.sense_floor_uc_cm2,
        limit.log10()
    );

    // 2. Retention, across the thermal operating range.
    let ret = RetentionModel::hfo2_default();
    println!("\n[retention] (time to 50 % Pr)");
    for t in [300.0, 352.0, 390.0] {
        let days = ret.retention_time_s(0.5, t) / 86400.0;
        if days > 365.0 {
            println!("  {t:5.1} K : {:>8.1} years", days / 365.25);
        } else {
            println!("  {t:5.1} K : {days:>8.1} days");
        }
    }

    // 3. Sense-margin yield under device variation + SA offset.
    println!("\n[sense margin] (Monte-Carlo, 60 cells, global reference)");
    for (label, var, offset) in [
        ("typical corner          ", VariationSpec::typical(), 0.0),
        ("typical + SA offset     ", VariationSpec::typical(), 0.05),
        (
            "pessimistic + SA offset ",
            VariationSpec::pessimistic(),
            0.05,
        ),
    ] {
        let r = monte_carlo_margin(&Cell2TnCParams::default(), var, offset, 60, 99);
        println!(
            "  {label}: TBA yield {:>5.1} %, NOT yield {:>5.1} %, worst sep {:.2}x",
            r.tba_yield * 100.0,
            r.not_yield * 100.0,
            r.worst_level_separation
        );
    }

    // 4. Wear and disturb on a real workload.
    let mut mem = FeramBackend::new(MemoryGeometry::tiny());
    XorCipher.execute(&mut mem, 64, 5).unwrap();
    let wear = mem.wear().report();
    println!("\n[wear/disturb] (XOR cipher kernel, 64 rows)");
    println!("  rows written            : {}", wear.rows_written);
    println!("  hottest row writes      : {}", wear.max_row_writes);
    match wear.repeatable_runs {
        Some(runs) => println!(
            "  kernel repeatable       : {runs:.1e} times before 10^6-cycle budget"
        ),
        None => println!("  kernel repeatable       : unbounded (no writes recorded)"),
    }
    println!("  QNRO maintenance writes : {}", mem.writebacks());

    // 5. Fault-injection campaign: bit-flips + sense faults + wear
    //    exhaustion on every kernel, under the hardened policy.
    let spec = FaultSpec {
        seed: 42,
        write_bitflip_rate: 5e-5,
        read_bitflip_rate: 5e-5,
        sense_fault_rate: 2e-4,
        wear_budget: 2_000,
    };
    let outcomes = run_fault_campaign(8, 7, &spec, &DegradationPolicy::hardened());
    println!("\n[fault campaign] (hardened policy, seed 42)");
    println!("  kernel                 injected corrected detected silent");
    for o in &outcomes {
        println!(
            "  {:<22} {:>8} {:>9} {:>8} {:>6}{}",
            o.workload,
            o.injected_faults,
            o.corrected_faults,
            o.detected_faults,
            o.silent_corruptions,
            if o.completed { "" } else { "  (aborted, reported)" }
        );
    }
    let silent = campaign_silent_corruptions(&outcomes);
    println!("  silent corruptions across the campaign: {silent}");

    // A final consistency check across the models.
    assert!(limit >= 1e6);
    assert!(ret.retention_time_s(0.5, 352.0) > 86400.0);
    assert!(wear.repeatable_runs.is_some_and(|runs| runs > 1e3));
    assert_eq!(silent, 0, "a fault escaped the hardened policy");
    println!("\nAll reliability corners pass the paper's operating envelope.");
}
