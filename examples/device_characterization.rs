//! Device characterisation of the fabricated MFM capacitor (Fig 4).
//!
//! Reproduces the Section IV measurement suite on the synthetic device:
//! P–V loops across temperature, bipolar-cycling endurance, and the
//! pulse-switching dynamics map.
//!
//! Run with: `cargo run --release --example device_characterization`

use felim::ferro::{first_order_reversal_curves, EnduranceRun, MfmParams, PulseSweep, PvLoop};

fn main() {
    let params = MfmParams::fabricated();

    println!("== P–V hysteresis loops, 300–390 K (Fig 4(e)) ==");
    println!("  T (K) | Pr (µC/cm²) | Vc (V)");
    for t in [300.0, 330.0, 360.0, 390.0] {
        let l = PvLoop::trace_default(&params, t, 3.0);
        println!(
            "  {t:5.0} |   {:6.2}    | {:.3}",
            l.remanent_polarization(),
            l.coercive_voltage()
        );
    }
    println!("  -> Vc decreases with temperature, Pr nearly constant\n");

    println!("== Bipolar-cycling endurance (Fig 4(f)) ==");
    let run = EnduranceRun::new(&params);
    let results = run.run(&EnduranceRun::log_checkpoints(7));
    println!("  cycles | Pr+ (µC/cm²) | Pr- (µC/cm²)");
    for r in &results {
        println!(
            "  10^{:.0}  |   {:6.2}     |  {:7.2}",
            r.cycles.log10(),
            r.pr_pos_uc_cm2,
            r.pr_neg_uc_cm2
        );
    }
    let limit = run.endurance_limit(&results).unwrap_or(0.0);
    println!(
        "  -> endurance limit >= 10^{:.0} cycles (paper: >= 10^6)\n",
        limit.log10()
    );

    println!("== Pulse-switching dynamics (Fig 4(g,h)) ==");
    let sweep = PulseSweep::new(&params);
    println!("  |V| (V) | 50% switching time");
    for mv in [1500, 2000, 2500, 3000] {
        let v = mv as f64 / 1000.0;
        match sweep.time_to_switch(v, 0.5) {
            Some(t) => println!("  {v:5.1}   | {:9.1} ns", t * 1e9),
            None => println!("  {v:5.1}   | (does not switch)"),
        }
    }
    println!("  -> switches well under 300 ns at ±3 V\n");

    println!("== First-order reversal curves (switching distribution) ==");
    let curves = first_order_reversal_curves(&params, 300.0, 3.0, &[0.8, 1.4, 2.0, 3.0], 60, 1e-3);
    println!("  reversal V | P at reversal | P back at -3 V");
    for c in &curves {
        println!(
            "  {:9.1}  | {:+9.2}     | {:+9.2}   (µC/cm²)",
            c.reversal_v,
            c.descending[0].polarization_uc_cm2,
            c.descending.last().unwrap().polarization_uc_cm2
        );
    }
    println!(
        "  -> partial reversal below Vc, full switching well above
"
    );

    println!("== Switched-fraction map at ±3 V ==");
    println!("  width (ns) | positive | negative");
    for w_ns in [10.0, 30.0, 100.0, 300.0, 1000.0] {
        let p = sweep.single(3.0, w_ns * 1e-9).switched_fraction;
        let n = sweep.single(-3.0, w_ns * 1e-9).switched_fraction;
        println!("  {w_ns:9.0}  |  {p:.3}   |  {n:.3}");
    }
}
