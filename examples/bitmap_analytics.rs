//! Bitmap-index analytics on bulk-bitwise memory.
//!
//! Runs the paper's bitmap index query workload — the predicate
//! `(a AND b) OR (c AND NOT d)` over bitmap-index columns — at 1 GB scale
//! on both the Ambit-DRAM and the 2T-nC FeRAM backends, and prints the
//! energy/performance comparison with per-command breakdowns.
//!
//! Run with: `cargo run --release --example bitmap_analytics`

use felim::arch::{BulkBackend, CommandClass, FeramBackend, MemoryGeometry, RowId};
use felim::workloads::bitmap_index::BitmapIndex;
use felim::workloads::data::DataGen;
use felim::workloads::driver::{compare, Tech};
use felim::workloads::query::Predicate;
use std::collections::BTreeMap;

fn main() {
    let gb = 1u64 << 30;
    println!("Bitmap index query, 1 GB of index columns, 8 GB / 8 KB-row memory");
    println!("(simulating 64 rows functionally, extrapolating analytically)\n");

    let c = compare(&BitmapIndex, 64, gb, 2025).expect("fault-free run must verify");

    for result in [&c.dram, &c.feram] {
        let name = match result.tech {
            Tech::Dram => "1T-1C DRAM (Ambit AAP)",
            Tech::Feram => "2T-nC FeRAM (ACP/TBA)",
        };
        println!("== {name} ==");
        println!("  energy : {:>10.2} mJ", result.energy_mj);
        println!("  cycles : {:>10}", result.scaled.total_cycles());
        println!("  runtime: {:>10.1} ms", result.runtime_s * 1e3);
        for class in CommandClass::ALL {
            let e = result.scaled.energy_nj(class) * 1e-6;
            if e > 0.0 {
                println!("    {class:<10} {e:>10.2} mJ");
            }
        }
        println!();
    }

    println!(
        "FeRAM advantage: {:.2}x lower energy, {:.2}x fewer cycles",
        c.energy_ratio(),
        c.cycle_ratio()
    );
    println!("(every simulated row was verified bit-for-bit against software)");

    // The same query, written the way a query engine would emit it.
    let expr = "(in_stock & on_sale) | (clearance & !recalled)";
    println!(
        "
== predicate compiler ==
WHERE {expr}"
    );
    let predicate = Predicate::parse(expr).expect("valid predicate");
    let mut mem = FeramBackend::new(MemoryGeometry::tiny());
    let words = mem.geometry().row_words();
    let mut gen = DataGen::new(1, words);
    let mut columns = BTreeMap::new();
    for (i, name) in predicate.columns().into_iter().enumerate() {
        let row = RowId(i as u64);
        mem.install_row(row, &gen.sparse_row(0.3)).unwrap();
        columns.insert(name, row);
    }
    let dst = RowId(10);
    predicate.execute(&mut mem, &columns, RowId(20), dst).unwrap();
    let hits: u32 = mem
        .read_row(dst)
        .unwrap()
        .iter()
        .map(|w| w.count_ones())
        .sum();
    println!(
        "compiled to {} row ops; {} of {} records match",
        predicate.op_count(),
        hits,
        words * 64
    );
}
