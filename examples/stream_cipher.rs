//! In-memory XOR stream cipher.
//!
//! Encrypts a buffer entirely inside the 2T-nC FeRAM array: the key row
//! is XORed against every plaintext row using only in-place TBA NAND
//! operations (XOR = four NANDs), then decrypts and checks the roundtrip.
//!
//! Run with: `cargo run --release --example stream_cipher`

use felim::arch::{BulkBackend, FeramBackend, RowId};
use felim::workloads::data::DataGen;

fn main() {
    let mut mem = FeramBackend::default_8gb();
    let words = mem.geometry().row_words();
    let rows = 32u64;

    let mut gen = DataGen::new(7, words);
    let key = gen.row();
    let plaintext: Vec<Vec<u64>> = (0..rows).map(|_| gen.row()).collect();

    let key_row = RowId(0);
    mem.install_row(key_row, &key).unwrap();
    for (i, p) in plaintext.iter().enumerate() {
        mem.install_row(RowId(1 + i as u64), p).unwrap();
    }

    // Encrypt: C_i = P_i XOR K (in place, plaintext overwritten).
    for i in 0..rows {
        let r = RowId(1 + i);
        mem.xor(r, key_row, r).unwrap();
    }
    let encrypt_stats = mem.stats().clone();
    println!(
        "encrypted {} rows ({} KiB) in {} cycles, {:.3} mJ",
        rows,
        rows * words as u64 * 8 / 1024,
        encrypt_stats.total_cycles(),
        encrypt_stats.total_energy_mj()
    );

    // Ciphertext must differ from plaintext…
    let cipher0 = mem.read_row(RowId(1)).unwrap();
    assert_ne!(cipher0, plaintext[0]);
    assert_eq!(cipher0[0], plaintext[0][0] ^ key[0]);

    // Decrypt: P_i = C_i XOR K.
    for i in 0..rows {
        let r = RowId(1 + i);
        mem.xor(r, key_row, r).unwrap();
    }

    // …and the roundtrip must restore every row exactly.
    for (i, p) in plaintext.iter().enumerate() {
        let got = mem.read_row(RowId(1 + i as u64)).unwrap();
        assert_eq!(&got, p, "roundtrip failed at row {i}");
    }
    println!("decrypted and verified all {rows} rows bit-for-bit");
    println!(
        "QNRO maintenance write-backs during the run: {}",
        mem.writebacks()
    );
    println!("\nfinal stats:\n{}", mem.finish());
}
